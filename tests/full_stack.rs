//! Integration tests spanning the whole stack: drives, file managers,
//! Cheops, PFS and the mining workload working together.

use nasd::cheops::CheopsConnect;
use nasd::cheops::{CheopsManager, Redundancy};
use nasd::fm::FmConnect;
use nasd::fm::{AfsClient, DriveFleet, NasdAfs, NasdNfs};
use nasd::mining::parallel::parallel_frequent_items;
use nasd::mining::{apriori, TransactionGenerator, TransactionReader};
use nasd::net::Connector;
use nasd::object::DriveConfig;
use nasd::pfs::PfsCluster;
use nasd::proto::{PartitionId, Rights};
use std::sync::Arc;

fn fleet(n: usize) -> Arc<DriveFleet> {
    Arc::new(DriveFleet::spawn_memory(n, DriveConfig::small(), PartitionId(1), 64 << 20).unwrap())
}

#[test]
fn nfs_many_concurrent_clients() {
    let fleet = fleet(4);
    let (fm, _h) = NasdNfs::new(Arc::clone(&fleet)).unwrap().spawn();

    let mut joins = Vec::new();
    for t in 0..6u64 {
        let fm = fm.clone();
        let fleet = Arc::clone(&fleet);
        joins.push(std::thread::spawn(move || {
            let client = Connector::new().nfs(fm, fleet).unwrap();
            let dir = format!("/worker{t}");
            client.mkdir(&dir, 0o755, t as u32).unwrap();
            for i in 0..10 {
                let path = format!("{dir}/f{i}");
                let mut f = client.create(&path, 0o644, t as u32).unwrap();
                let payload = vec![(t * 16 + i) as u8; 3_000];
                client.write(&mut f, 0, &payload).unwrap();
            }
            // Verify everything this worker wrote.
            for i in 0..10 {
                let path = format!("{dir}/f{i}");
                let mut f = client.open(&path, false).unwrap();
                let data = client.read(&mut f, 0, 3_000).unwrap();
                assert!(data.to_vec().iter().all(|&b| b == (t * 16 + i) as u8));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // A fresh client over the same manager sees the merged namespace.
    let client = Connector::new().nfs(fm, Arc::clone(&fleet)).unwrap();
    let root_entries = client.readdir("/").unwrap();
    assert_eq!(root_entries.len(), 6);
}

#[test]
fn nfs_namespace_shared_between_connections() {
    let fleet = fleet(2);
    let (fm, _h) = NasdNfs::new(Arc::clone(&fleet)).unwrap().spawn();
    let a = Connector::new()
        .nfs(fm.clone(), Arc::clone(&fleet))
        .unwrap();
    let b = Connector::new().nfs(fm, Arc::clone(&fleet)).unwrap();

    a.mkdir("/shared", 0o755, 0).unwrap();
    let mut f = a.create("/shared/x", 0o644, 0).unwrap();
    a.write(&mut f, 0, b"written by a").unwrap();

    let mut g = b.open("/shared/x", false).unwrap();
    assert_eq!(b.read(&mut g, 0, 12).unwrap(), b"written by a");
}

#[test]
fn afs_and_nfs_style_consistency_models_differ() {
    // AFS: callback-based invalidation notifies cached readers; NFS-style
    // clients simply refetch. Exercise the AFS side's guarantee.
    let fleet = fleet(2);
    let (afs, _h) = NasdAfs::new(Arc::clone(&fleet), 8 << 20).unwrap().spawn();
    let writer = Connector::new()
        .afs(1, afs.clone(), Arc::clone(&fleet))
        .unwrap();
    let readers: Vec<AfsClient> = (2..6)
        .map(|i| {
            Connector::new()
                .afs(i, afs.clone(), Arc::clone(&fleet))
                .unwrap()
        })
        .collect();

    let fh = writer.create(writer.root(), "hot").unwrap();
    writer.write_file(fh, b"gen-0").unwrap();
    for r in &readers {
        assert_eq!(&r.read_file(fh).unwrap()[..], b"gen-0");
    }
    writer.write_file(fh, b"gen-1").unwrap();
    for r in &readers {
        let events = r.poll_callbacks();
        assert_eq!(events.len(), 1, "each cached reader gets one break");
        assert_eq!(&r.read_file(fh).unwrap()[..], b"gen-1");
    }
}

#[test]
fn cheops_object_survives_manager_restart_equivalent() {
    // The capability set, once fetched, works without the manager — the
    // core asynchronous-oversight property at the Cheops level.
    let fleet = fleet(3);
    let (mgr, handle) = CheopsManager::new(Arc::clone(&fleet)).spawn();
    let client = Connector::new().cheops(1, mgr, Arc::clone(&fleet));
    let id = client.create(3, 32 * 1024, Redundancy::None).unwrap();
    let file = client.open(id, Rights::ALL).unwrap();
    client.write(&file, 0, &vec![9u8; 500_000]).unwrap();

    // Stop the manager; the open file keeps working.
    drop(handle);
    let back = client.read(&file, 100_000, 1_000).unwrap();
    assert!(back.to_vec().iter().all(|&b| b == 9));
}

#[test]
fn pfs_mining_pipeline_end_to_end() {
    let request = 64 * 1024u64;
    let cluster =
        Arc::new(PfsCluster::spawn_with_config(3, request, DriveConfig::small()).unwrap());
    let data = TransactionGenerator::new(5).generate_bytes(3 << 20, request as usize);
    let loader = cluster.client(0);
    let f = loader.create("/txns", 3).unwrap();
    loader.write_at(&f, 0, &data).unwrap();

    let got = parallel_frequent_items(&cluster, "/txns", 3, 256 * 1024, request).unwrap();

    let txns: Vec<_> = TransactionReader::new(&data, request as usize).collect();
    let (want, n) = apriori::count_1_itemsets(&txns);
    assert_eq!(got.transactions, n);
    assert_eq!(got.counts, want);
    assert_eq!(got.bytes_read, data.len() as u64);
}

#[test]
fn quota_pressure_surfaces_cleanly_through_the_stack() {
    // Fill a small partition through the NFS port until the drive runs
    // out of quota; the error must propagate as a clean FmError.
    let fleet = Arc::new(
        DriveFleet::spawn_memory(1, DriveConfig::small(), PartitionId(1), 600 * 1024).unwrap(),
    );
    let (fm, _h) = NasdNfs::new(Arc::clone(&fleet)).unwrap().spawn();
    let client = Connector::new().nfs(fm, Arc::clone(&fleet)).unwrap();

    let mut wrote = 0u64;
    let mut failed = false;
    for i in 0..64 {
        let mut f = match client.create(&format!("/fill{i}"), 0o644, 0) {
            Ok(f) => f,
            Err(_) => {
                failed = true;
                break;
            }
        };
        match client.write(&mut f, 0, &vec![0u8; 64 * 1024]) {
            Ok(n) => wrote += n,
            Err(e) => {
                // Clean error, not a panic or corruption.
                let msg = e.to_string();
                assert!(msg.contains("no space") || msg.contains("quota"), "{msg}");
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "quota never enforced after writing {wrote} bytes");
    assert!(wrote > 0, "nothing written before quota hit");
}
