//! End-to-end transport tests: the drive wire protocol over real
//! sockets (UDS — no ports to fight over in CI) must be
//! indistinguishable from the in-process transport, byte for byte,
//! fault for fault.

use bytes::Bytes;
use nasd::fm::{serve_drive_socket, spawn_drive, DriveEndpoint};
use nasd::net::{BindAddr, Connector, FaultConfig, FaultPlan};
use nasd::object::NasdDrive;
use nasd::proto::{ByteRange, PartitionId, RequestBody, Rights, Version};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

const P: PartitionId = PartitionId(1);

/// Provision a partition and one object on `ep`, returning a
/// full-rights capability over it.
fn provision(ep: &DriveEndpoint) -> nasd::proto::Capability {
    ep.admin(RequestBody::CreatePartition {
        partition: P,
        quota: 16 << 20,
    })
    .unwrap();
    let obj = ep.create_object(P, 0, None, 1_000).unwrap();
    ep.mint(P, obj, Version(0), Rights::ALL, ByteRange::FULL, 1_000)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| u8::try_from(i * 31 % 251).unwrap())
        .collect()
}

/// The acceptance gate: identical drives reached in-proc and over UDS
/// produce byte-identical data on every read, and warm cached reads
/// copy zero payload bytes on the server's send side.
#[test]
fn socket_drive_matches_in_proc_byte_for_byte() {
    let clock = Arc::new(AtomicU64::new(1));
    let (in_proc, _handle) = spawn_drive(NasdDrive::builder(7).build(), Arc::clone(&clock));
    let (server, socket) = serve_drive_socket(
        NasdDrive::builder(7).build(),
        Arc::clone(&clock),
        &BindAddr::uds_temp("e2e"),
        2,
        &Connector::new(),
    )
    .unwrap();

    let payload = pattern(64 * 1024);
    let cap_a = provision(&in_proc);
    let cap_b = provision(&socket);
    assert_eq!(
        in_proc
            .write(&cap_a, 0, Bytes::from(payload.clone()))
            .unwrap(),
        socket
            .write(&cap_b, 0, Bytes::from(payload.clone()))
            .unwrap(),
    );

    for (offset, len) in [
        (0u64, 64 * 1024u64),
        (0, 1),
        (4_096, 8_192),
        (65_535, 1),
        (100, 0),
    ] {
        let a = in_proc.read(&cap_a, offset, len).unwrap().to_vec();
        let b = socket.read(&cap_b, offset, len).unwrap().to_vec();
        assert_eq!(a, b, "read({offset}, {len}) differs across transports");
        let lo = usize::try_from(offset).unwrap();
        let hi = lo + usize::try_from(len).unwrap();
        assert_eq!(
            a,
            payload[lo..hi],
            "read({offset}, {len}) differs from written data"
        );
    }

    // Warm cached reads: the payload rides from drive cache to the wire
    // as shared segments; the server-side ledger must not move.
    socket.read(&cap_b, 0, 64 * 1024).unwrap();
    let before = server.stats().send_copies.value();
    for _ in 0..8 {
        let back = socket.read(&cap_b, 0, 64 * 1024).unwrap();
        assert_eq!(back.to_vec(), payload);
    }
    assert_eq!(
        server.stats().send_copies.value(),
        before,
        "warm cached reads must copy zero payload bytes on the send side"
    );
    server.shutdown();
}

/// Concurrent clients banging on one socket server: every write is
/// readable back intact, across threads sharing the pooled endpoint.
#[test]
fn concurrent_clients_share_one_socket_server() {
    let clock = Arc::new(AtomicU64::new(1));
    let (server, ep) = serve_drive_socket(
        NasdDrive::builder(9).build(),
        Arc::clone(&clock),
        &BindAddr::uds_temp("concurrent"),
        4,
        &Connector::new().pool(2),
    )
    .unwrap();
    ep.admin(RequestBody::CreatePartition {
        partition: P,
        quota: 16 << 20,
    })
    .unwrap();

    let ep = Arc::new(ep);
    let mut joins = Vec::new();
    for t in 0..4u8 {
        let ep = Arc::clone(&ep);
        joins.push(std::thread::spawn(move || {
            let obj = ep.create_object(P, 0, None, 1_000).unwrap();
            let cap = ep.mint(P, obj, Version(0), Rights::ALL, ByteRange::FULL, 1_000);
            let payload = vec![t + 1; 8_192];
            assert_eq!(
                ep.write(&cap, 0, Bytes::from(payload.clone())).unwrap(),
                8_192
            );
            let back = ep.read(&cap, 0, 8_192).unwrap();
            assert_eq!(back.to_vec(), payload, "worker {t}");
        }));
    }
    for j in joins {
        j.join().expect("socket worker panicked");
    }
    assert!(
        server.stats().frames_in.value() >= 12,
        "expected all requests framed"
    );
    server.shutdown();
}

/// Seeded chaos over the real socket: with message-level faults on the
/// dialed channel, the endpoint's retry discipline still lands every
/// acknowledged write, and the data reads back intact afterwards.
#[test]
fn seeded_faults_over_uds_still_converge() {
    for seed in [0xdead_0001u64, 0xdead_0002, 0xdead_0003] {
        let clock = Arc::new(AtomicU64::new(1));
        let plan = FaultPlan::new(seed);
        let config = FaultConfig {
            drop: 0.15,
            duplicate: 0.1,
            delay: 0.15,
            max_delay: Duration::from_micros(300),
            drop_reply: 0.15,
        };
        let (server, ep) = serve_drive_socket(
            NasdDrive::builder(3).build(),
            Arc::clone(&clock),
            &BindAddr::uds_temp("chaos"),
            2,
            &Connector::new().faults(plan.channel(3, config)),
        )
        .unwrap();
        let cap = provision(&ep);
        let payload = pattern(16 * 1024);
        assert_eq!(
            ep.write(&cap, 0, Bytes::from(payload.clone())).unwrap(),
            16 * 1024,
            "seed {seed:#x}"
        );
        let back = ep.read(&cap, 0, 16 * 1024).unwrap();
        assert_eq!(back.to_vec(), payload, "seed {seed:#x}");
        assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");
        server.shutdown();
    }
}
