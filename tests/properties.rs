//! Property-based tests (proptest) of the core data structures and
//! invariants: wire-format roundtrips, allocator conservation, object
//! store vs a reference model, striping address math, and the replay
//! window vs a naive oracle.

use nasd::disk::MemDisk;
use nasd::object::{Allocator, Extent, IoTrace, ObjectStore, ReplayWindow};
use nasd::proto::wire::{WireDecode, WireEncode};
use nasd::proto::{ByteRange, Nonce, ObjectAttributes, ObjectId, PartitionId, Rights, Version};
use proptest::prelude::*;
use std::collections::HashSet;

// ----------------------------------------------------------------- wire

proptest! {
    #[test]
    fn byte_range_roundtrips(start in 0u64..1_000_000, len in 0u64..1_000_000) {
        let r = ByteRange::new(start, start + len);
        prop_assert_eq!(ByteRange::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn nonce_roundtrips(client: u64, counter: u64) {
        let n = Nonce::new(client, counter);
        prop_assert_eq!(Nonce::from_wire(&n.to_wire()).unwrap(), n);
    }

    #[test]
    fn rights_roundtrip(bits in 0u16..=0xff) {
        let r = Rights::from_bits(bits).unwrap();
        prop_assert_eq!(Rights::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn attributes_roundtrip(
        size: u64,
        prealloc: u64,
        times in proptest::array::uniform4(0u64..1 << 40),
        version: u64,
        cluster in proptest::option::of(0u64..1 << 30),
        fill: u8,
    ) {
        let mut a = ObjectAttributes {
            size,
            preallocated: prealloc,
            create_time: times[0],
            data_modify_time: times[1],
            attr_modify_time: times[2],
            access_time: times[3],
            version: Version(version),
            cluster_with: cluster.map(ObjectId),
            ..ObjectAttributes::default()
        };
        a.fs_specific.fill(fill);
        prop_assert_eq!(ObjectAttributes::from_wire(&a.to_wire()).unwrap(), a);
    }

    /// Arbitrary bytes never panic the decoders — they error cleanly.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ObjectAttributes::from_wire(&bytes);
        let _ = ByteRange::from_wire(&bytes);
        let _ = nasd::proto::RequestBody::from_wire(&bytes);
        let _ = nasd::proto::CapabilityPublic::from_wire(&bytes);
    }
}

// ------------------------------------------------------------ allocator

proptest! {
    /// Any sequence of allocations and frees conserves blocks, never
    /// hands out overlapping extents, and coalescing restores a single
    /// run when everything is freed.
    #[test]
    fn allocator_conserves_and_never_overlaps(
        ops in proptest::collection::vec((1u64..64, any::<bool>()), 1..120)
    ) {
        let total = 4_096u64;
        let mut a = Allocator::new(total);
        let mut live: Vec<Extent> = Vec::new();
        for (len, free_one) in ops {
            if free_one && !live.is_empty() {
                let e = live.swap_remove(0);
                a.free(e);
            } else if let Some(e) = a.allocate(len, None) {
                prop_assert_eq!(e.len, len);
                // No overlap with any live extent.
                for other in &live {
                    prop_assert!(e.end() <= other.start || other.end() <= e.start,
                        "overlap: {:?} vs {:?}", e, other);
                }
                live.push(e);
            }
            let held: u64 = live.iter().map(|e| e.len).sum();
            prop_assert_eq!(a.free_blocks() + held, total);
        }
        for e in live.drain(..) {
            a.free(e);
        }
        prop_assert_eq!(a.free_blocks(), total);
        prop_assert_eq!(a.free_runs(), 1, "full coalescing");
    }
}

// ---------------------------------------------------------- object store

// The object store behaves like a flat byte array: arbitrary writes and
// reads agree with a `Vec<u8>` reference model.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn object_store_matches_reference_model(
        writes in proptest::collection::vec(
            (0u64..200_000, 1usize..30_000, any::<u8>()),
            1..20
        )
    ) {
        let mut store = ObjectStore::new(MemDisk::new(8_192, 8_192), 64);
        let p = PartitionId(1);
        store.create_partition(p, 1 << 30).unwrap();
        let mut t = IoTrace::default();
        let obj = store.create_object(p, 0, None, 0, &mut t).unwrap();

        let mut model: Vec<u8> = Vec::new();
        for (offset, len, byte) in writes {
            let data = vec![byte; len];
            store.write(p, obj, offset, &data, 0, &mut t).unwrap();
            let end = offset as usize + len;
            if model.len() < end {
                model.resize(end, 0);
            }
            model[offset as usize..end].fill(byte);
        }
        // Whole-object read matches.
        let got = store.read(p, obj, 0, model.len() as u64, 0, &mut t).unwrap();
        prop_assert_eq!(got.to_vec(), model.clone());
        // Size matches.
        prop_assert_eq!(
            store.get_attr(p, obj, 0).unwrap().size,
            model.len() as u64
        );
    }

    /// Snapshots are immutable under subsequent writes to the original.
    #[test]
    fn snapshot_isolation(
        base in proptest::collection::vec(any::<u8>(), 1..40_000),
        overwrites in proptest::collection::vec((0u64..40_000, 1usize..5_000), 1..6)
    ) {
        let mut store = ObjectStore::new(MemDisk::new(8_192, 8_192), 64);
        let p = PartitionId(1);
        store.create_partition(p, 1 << 30).unwrap();
        let mut t = IoTrace::default();
        let obj = store.create_object(p, 0, None, 0, &mut t).unwrap();
        store.write(p, obj, 0, &base, 0, &mut t).unwrap();
        let snap = store.snapshot(p, obj, 1, &mut t).unwrap();

        for (offset, len) in overwrites {
            store.write(p, obj, offset, &vec![0xEE; len], 2, &mut t).unwrap();
        }
        let frozen = store.read(p, snap, 0, base.len() as u64, 3, &mut t).unwrap();
        prop_assert_eq!(frozen.to_vec(), base);
    }
}

// ------------------------------------------------------------- striping

proptest! {
    /// Cheops address math: scattering a buffer through `split` and
    /// gathering it back is the identity, for any geometry.
    #[test]
    fn cheops_split_gather_identity(
        width in 1usize..9,
        su in 1u64..100_000,
        offset in 0u64..1_000_000,
        len in 1usize..200_000,
    ) {
        use nasd::cheops::{Column, Component, Layout, Redundancy};
        use nasd::proto::DriveId;
        let layout = Layout {
            stripe_unit: su,
            columns: (0..width).map(|i| Column {
                primary: Component {
                    drive: DriveId(i as u64),
                    partition: PartitionId(1),
                    object: ObjectId(1),
                },
                mirror: None,
            }).collect(),
            redundancy: Redundancy::None,
            parity: None,
        };
        let runs = layout.split(offset, len as u64);
        // Exactly covers the request in buffer space.
        let total: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, len as u64);
        let mut covered: Vec<(u64, u64)> = runs.iter()
            .map(|r| (r.buf_offset, r.buf_offset + r.len)).collect();
        covered.sort_unstable();
        let mut expect = 0;
        for (s, e) in covered {
            prop_assert_eq!(s, expect);
            expect = e;
        }
        // No two runs on the same column overlap in local space.
        for (i, a) in runs.iter().enumerate() {
            for b in runs.iter().skip(i + 1) {
                if a.column == b.column {
                    prop_assert!(
                        a.local_offset + a.len <= b.local_offset
                            || b.local_offset + b.len <= a.local_offset
                    );
                }
            }
        }
    }
}

// -------------------------------------------------------- replay window

proptest! {
    /// The sliding replay window never accepts a duplicate, and accepts
    /// everything a naive infinite-memory oracle accepts within the
    /// window width.
    #[test]
    fn replay_window_sound(counters in proptest::collection::vec(1u64..500, 1..200)) {
        let mut w = ReplayWindow::default();
        let mut seen = HashSet::new();
        let mut highest = 0u64;
        for c in counters {
            let accepted = w.accept(c);
            if accepted {
                prop_assert!(!seen.contains(&c), "duplicate {c} accepted");
                seen.insert(c);
            } else {
                // Rejections are either duplicates or out of window.
                let out_of_window = highest >= ReplayWindow::WIDTH
                    && c <= highest - ReplayWindow::WIDTH;
                prop_assert!(
                    seen.contains(&c) || out_of_window,
                    "fresh in-window counter {c} rejected (highest {highest})"
                );
            }
            highest = highest.max(c);
        }
    }
}

// ----------------------------------------------------------------- FFS

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// FFS files match a reference model through write/read/persist.
    #[test]
    fn ffs_matches_reference_model(
        writes in proptest::collection::vec(
            (0u64..150_000, 1usize..20_000, any::<u8>()),
            1..10
        )
    ) {
        use nasd::ffs::Ffs;
        let mut fs = Ffs::format(MemDisk::new(8_192, 8_192), 64).unwrap();
        let ino = fs.create("/f").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (offset, len, byte) in writes {
            fs.write(ino, offset, &vec![byte; len]).unwrap();
            let end = offset as usize + len;
            if model.len() < end {
                model.resize(end, 0);
            }
            model[offset as usize..end].fill(byte);
        }
        let got = fs.read(ino, 0, model.len() as u64).unwrap();
        prop_assert_eq!(&got[..], &model[..]);
        prop_assert_eq!(fs.stat(ino).unwrap().size, model.len() as u64);
    }
}
