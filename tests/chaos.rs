//! Seeded chaos suite: deterministic fault injection across the whole
//! RPC/drive stack.
//!
//! Every scenario derives its misbehaviour from a [`FaultPlan`] seed:
//! message drops, duplications, delays and lost replies on the drive
//! channels, Busy bounces and slow I/O inside the drives, and hard
//! crash/restart of a drive's service thread mid-workload. The
//! invariants checked are the ones that matter for a storage system:
//!
//! * no acknowledged write is ever lost,
//! * no panic escapes a worker,
//! * errors surface cleanly once retries exhaust, and
//! * the injected-fault trace is bit-for-bit reproducible per seed.

use nasd::cheops::CheopsConnect;
use nasd::cheops::{CheopsManager, Redundancy, RepairPhase};
use nasd::fm::FmConnect;
use nasd::fm::{AfsClient, DriveFleet, FmError, NasdAfs, NasdNfs};
use nasd::mgmt::{MgmtConfig, NasdMgmt};
use nasd::mining::parallel::parallel_frequent_items;
use nasd::mining::{apriori, TransactionGenerator, TransactionReader};
use nasd::net::{Channel, Connector};
use nasd::net::{FaultConfig, FaultEvent, FaultPlan, RetryPolicy};
use nasd::object::{DriveConfig, DriveFaultConfig};
use nasd::pfs::PfsCluster;
use nasd::proto::{ByteRange, PartitionId, Rights, Version};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Three distinct seeds; every scenario below runs (or can run) under
/// each of them, and the determinism test proves each yields a stable
/// fault schedule.
const SEEDS: [u64; 3] = [0x00C0_FFEE, 7, 0xFEED_FACE];

const P1: PartitionId = PartitionId(1);

/// A retry policy tuned for chaos runs: patient enough to ride out
/// bursts of injected losses, with short per-call timeouts so lost
/// messages don't stall the suite.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        timeout: Duration::from_millis(30),
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(3),
    }
}

fn fnv(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One deterministic single-client workload against a faulty fleet:
/// returns the realized fault trace and a digest of everything read
/// back. Run twice with the same seed, both must match exactly.
fn seeded_endpoint_run(seed: u64) -> (Vec<FaultEvent>, u64) {
    let fleet = DriveFleet::spawn_faulty(
        2,
        DriveConfig::small(),
        P1,
        64 << 20,
        Some((seed, DriveFaultConfig::moderate())),
    )
    .unwrap();
    for ep in fleet.endpoints() {
        ep.set_retry(chaos_retry());
    }
    let plan = FaultPlan::new(seed);
    plan.set_enabled(false);
    fleet.set_faults(&plan, FaultConfig::lossy(0.6));
    plan.set_enabled(true);

    let ep = Arc::clone(fleet.endpoint(0));
    let oid = ep.create_object(P1, 0, None, 1 << 40).unwrap();
    let cap = ep.mint(P1, oid, Version(0), Rights::ALL, ByteRange::FULL, 1 << 40);

    let mut offsets = Vec::new();
    let mut at = 0u64;
    for i in 0..32u64 {
        let len = (i * 97) % 1_500 + 1;
        let fill = (i ^ seed) as u8;
        let data = bytes::Bytes::from(vec![fill; len as usize]);
        let wrote = ep.write(&cap, at, data).unwrap();
        assert_eq!(wrote, len, "short write at record {i}");
        offsets.push((at, len, fill));
        at += len;
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for &(off, len, fill) in &offsets {
        let back = ep.read(&cap, off, len).unwrap();
        assert_eq!(back.len() as u64, len);
        assert!(
            back.to_vec().iter().all(|&b| b == fill),
            "corrupt record at {off}"
        );
        digest = fnv(&back.flatten(), digest);
    }
    plan.set_enabled(false);
    let trace = plan.trace();
    fleet.shutdown();
    (trace, digest)
}

/// Same seed ⇒ identical fault schedule and identical data; different
/// seeds ⇒ different schedules. This is the reproducibility contract
/// every other scenario leans on when debugging a failure.
#[test]
fn fault_schedule_is_reproducible_per_seed() {
    let mut traces = Vec::new();
    for &seed in &SEEDS {
        let (t1, d1) = seeded_endpoint_run(seed);
        let (t2, d2) = seeded_endpoint_run(seed);
        assert!(!t1.is_empty(), "seed {seed:#x} injected no faults");
        assert_eq!(t1, t2, "seed {seed:#x}: fault trace not reproducible");
        assert_eq!(d1, d2, "seed {seed:#x}: data digest not reproducible");
        traces.push(t1);
    }
    assert_ne!(traces[0], traces[1], "distinct seeds gave identical traces");
    assert_ne!(traces[1], traces[2], "distinct seeds gave identical traces");
}

/// Every fault the plan realizes is mirrored into an attached
/// [`nasd::obs::TraceSink`] as a structured event, so a chaos run can be
/// inspected with the same tooling as ordinary request traces.
#[test]
fn injected_faults_appear_as_trace_events() {
    use nasd::obs::TraceSink;

    let seed = SEEDS[0];
    let fleet = DriveFleet::spawn_faulty(
        2,
        DriveConfig::small(),
        P1,
        64 << 20,
        Some((seed, DriveFaultConfig::moderate())),
    )
    .unwrap();
    for ep in fleet.endpoints() {
        ep.set_retry(chaos_retry());
    }
    let plan = FaultPlan::new(seed);
    plan.set_enabled(false);
    let sink = TraceSink::new(4_096);
    plan.set_sink(Arc::clone(&sink));
    fleet.set_faults(&plan, FaultConfig::lossy(0.6));
    plan.set_enabled(true);

    let ep = Arc::clone(fleet.endpoint(0));
    let oid = ep.create_object(P1, 0, None, 1 << 40).unwrap();
    let cap = ep.mint(P1, oid, Version(0), Rights::ALL, ByteRange::FULL, 1 << 40);
    for i in 0..16u64 {
        let data = bytes::Bytes::from(vec![i as u8; 512]);
        ep.write(&cap, i * 512, data).unwrap();
    }
    plan.set_enabled(false);
    let faults = plan.trace();
    fleet.shutdown();

    assert!(!faults.is_empty(), "seed {seed:#x} injected no faults");
    let events = sink.events();
    assert_eq!(
        faults.len(),
        events.len(),
        "every realized fault must produce exactly one trace event"
    );
    for (fault, event) in faults.iter().zip(events.iter()) {
        assert_eq!(event.op, "rpc");
        assert_eq!(event.phase, "fault");
        assert_eq!(
            event.drive, fault.target,
            "trace event targets the faulted channel"
        );
        assert_eq!(
            event.request, fault.seq,
            "trace event carries the message sequence"
        );
        assert_eq!(event.detail, format!("{:?}", fault.action));
    }
}

/// Concurrent NFS workload with lossy drive channels, Busy/slow drive
/// faults, and a delayed (but loss-free: the manager protocol is not
/// idempotent) manager channel. All acked writes must read back.
#[test]
fn nfs_workload_survives_seeded_chaos() {
    for &seed in &SEEDS {
        let fleet = Arc::new(
            DriveFleet::spawn_faulty(
                3,
                DriveConfig::small(),
                P1,
                64 << 20,
                Some((seed, DriveFaultConfig::moderate())),
            )
            .unwrap(),
        );
        for ep in fleet.endpoints() {
            ep.set_retry(chaos_retry());
        }
        let plan = FaultPlan::new(seed);
        plan.set_enabled(false);
        fleet.set_faults(&plan, FaultConfig::lossy(0.4));
        let (fm, _h) = NasdNfs::new(Arc::clone(&fleet)).unwrap().spawn();
        let fm = fm.with_faults(plan.channel(
            1_000,
            FaultConfig::delay_only(0.3, Duration::from_micros(400)),
        ));
        plan.set_enabled(true);

        let mut joins = Vec::new();
        for t in 0..3u64 {
            let fm = fm.clone();
            let fleet = Arc::clone(&fleet);
            joins.push(std::thread::spawn(move || {
                let client = Connector::new().nfs(fm, fleet).unwrap();
                let dir = format!("/w{t}");
                client.mkdir(&dir, 0o755, t as u32).unwrap();
                for i in 0..4u64 {
                    let path = format!("{dir}/f{i}");
                    let mut f = client.create(&path, 0o644, t as u32).unwrap();
                    let payload = vec![(t * 16 + i + 1) as u8; 2_048];
                    assert_eq!(client.write(&mut f, 0, &payload).unwrap(), 2_048);
                    // Read back inside the storm: acked ⇒ readable.
                    let back = client.read(&mut f, 0, 2_048).unwrap();
                    assert_eq!(back, payload, "worker {t} file {i}");
                }
            }));
        }
        for j in joins {
            j.join().expect("worker panicked under chaos");
        }
        plan.set_enabled(false);
        assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");

        // Calm weather: a fresh client over the same manager must see
        // every file every worker acked, intact.
        let client = Connector::new().nfs(fm, Arc::clone(&fleet)).unwrap();
        assert_eq!(client.readdir("/").unwrap().len(), 3);
        for t in 0..3u64 {
            for i in 0..4u64 {
                let mut f = client.open(&format!("/w{t}/f{i}"), false).unwrap();
                let back = client.read(&mut f, 0, 2_048).unwrap();
                assert!(
                    back.to_vec().iter().all(|&b| b == (t * 16 + i + 1) as u8),
                    "acked write lost: worker {t} file {i} under seed {seed:#x}"
                );
            }
        }
    }
}

/// AFS whole-file caching plus callback invalidation under heavy drive
/// channel faults: every generation must propagate exactly one break
/// per cached reader, and reads must never observe torn data.
#[test]
fn afs_callbacks_survive_seeded_chaos() {
    for &seed in &SEEDS {
        let fleet = Arc::new(
            DriveFleet::spawn_faulty(
                2,
                DriveConfig::small(),
                P1,
                64 << 20,
                Some((seed, DriveFaultConfig::moderate())),
            )
            .unwrap(),
        );
        for ep in fleet.endpoints() {
            ep.set_retry(chaos_retry());
        }
        let plan = FaultPlan::new(seed);
        plan.set_enabled(false);
        fleet.set_faults(&plan, FaultConfig::lossy(1.0));
        let (afs, _h) = NasdAfs::new(Arc::clone(&fleet), 8 << 20).unwrap().spawn();
        let afs = afs.with_faults(plan.channel(
            2_000,
            FaultConfig::delay_only(0.25, Duration::from_micros(400)),
        ));
        let writer = Connector::new()
            .afs(1, afs.clone(), Arc::clone(&fleet))
            .unwrap();
        let readers: Vec<AfsClient> = (2..5)
            .map(|i| {
                Connector::new()
                    .afs(i, afs.clone(), Arc::clone(&fleet))
                    .unwrap()
            })
            .collect();
        plan.set_enabled(true);

        let fh = writer.create(writer.root(), "hot").unwrap();
        for generation in 0..3u32 {
            let body = format!("generation-{generation}");
            writer.write_file(fh, body.as_bytes()).unwrap();
            for r in &readers {
                if generation > 0 {
                    let events = r.poll_callbacks();
                    assert_eq!(
                        events.len(),
                        1,
                        "seed {seed:#x} gen {generation}: expected one break"
                    );
                }
                assert_eq!(
                    &r.read_file(fh).unwrap()[..],
                    body.as_bytes(),
                    "seed {seed:#x} gen {generation}: stale or torn read"
                );
            }
        }
        plan.set_enabled(false);
        assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");
    }
}

/// The headline crash scenario: a writer hammers drive 0 while the
/// harness power-cuts it mid-workload and restarts it from its persist
/// layer, all under a lossy, seeded network. Every write the client saw
/// acknowledged must be present afterwards — `durable_writes` makes the
/// ack a durability promise, and the restart must honor it.
#[test]
fn acked_writes_survive_drive_crash_and_restart() {
    for &seed in &SEEDS {
        let fleet = Arc::new(
            DriveFleet::spawn_faulty(
                2,
                DriveConfig::small().durable(),
                P1,
                64 << 20,
                Some((seed, DriveFaultConfig::moderate())),
            )
            .unwrap(),
        );
        // Patient enough to span the outage window.
        let patient = RetryPolicy {
            max_attempts: 64,
            timeout: Duration::from_millis(25),
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        };
        for ep in fleet.endpoints() {
            ep.set_retry(patient);
        }
        let plan = FaultPlan::new(seed);
        plan.set_enabled(false);
        fleet.set_faults(&plan, FaultConfig::lossy(0.3));

        let ep = Arc::clone(fleet.endpoint(0));
        let oid = ep.create_object(P1, 0, None, 1 << 40).unwrap();
        let cap = ep.mint(P1, oid, Version(0), Rights::ALL, ByteRange::FULL, 1 << 40);
        plan.set_enabled(true);

        const RECORDS: u64 = 96;
        const RECORD_LEN: u64 = 512;
        let reached_crash_point = Arc::new(AtomicBool::new(false));
        let writer = {
            let ep = Arc::clone(&ep);
            let cap = cap.clone();
            let reached = Arc::clone(&reached_crash_point);
            std::thread::spawn(move || {
                let mut acked = Vec::new();
                for i in 0..RECORDS {
                    let fill = (i + 1) as u8;
                    let data = bytes::Bytes::from(vec![fill; RECORD_LEN as usize]);
                    let n = ep
                        .write(&cap, i * RECORD_LEN, data)
                        .unwrap_or_else(|e| panic!("write {i} failed under chaos: {e}"));
                    assert_eq!(n, RECORD_LEN);
                    acked.push((i * RECORD_LEN, fill));
                    if i == RECORDS / 4 {
                        reached.store(true, Ordering::SeqCst);
                    }
                }
                acked
            })
        };

        // Power-cut drive 0 once the writer is mid-workload, hold it
        // down briefly, then restart it from the persisted media.
        while !reached_crash_point.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        fleet.crash(0);
        assert!(!fleet.is_up(0), "crash did not take the drive down");
        std::thread::sleep(Duration::from_millis(20));
        fleet
            .restart(0)
            .expect("restart from persisted media failed");
        assert!(fleet.is_up(0));

        let acked = writer.join().expect("writer panicked under chaos");
        assert_eq!(
            acked.len() as u64,
            RECORDS,
            "seed {seed:#x}: writes went unacked"
        );
        plan.set_enabled(false);

        // Every acked record must be readable, intact, after the storm.
        for &(off, fill) in &acked {
            let back = ep.read(&cap, off, RECORD_LEN).unwrap();
            assert!(
                back.len() as u64 == RECORD_LEN && back.to_vec().iter().all(|&b| b == fill),
                "seed {seed:#x}: acked write at offset {off} lost across crash"
            );
        }
        assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");
    }
}

/// Mirrored Cheops file: reads keep succeeding (via the mirror) while a
/// column's primary drive is down, and after the restart the file keeps
/// accepting writes. Exercises the client-side degraded paths under a
/// seeded lossy network.
#[test]
fn cheops_mirrored_file_survives_column_crash() {
    let seed = SEEDS[0];
    let fleet = Arc::new(
        DriveFleet::spawn_faulty(3, DriveConfig::small().durable(), P1, 64 << 20, None).unwrap(),
    );
    // Snappy: a crashed drive should fail over to the mirror quickly.
    let quick = RetryPolicy {
        max_attempts: 4,
        timeout: Duration::from_millis(15),
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
    };
    for ep in fleet.endpoints() {
        ep.set_retry(quick);
    }
    let (mgr, _mh) = CheopsManager::new(Arc::clone(&fleet)).spawn();
    let client = Connector::new().cheops(1, mgr, Arc::clone(&fleet));
    let id = client.create(2, 64 * 1024, Redundancy::Mirrored).unwrap();
    let file = client.open(id, Rights::ALL).unwrap();
    let data: Vec<u8> = (0..400_000usize).map(|i| (i * 31 % 251) as u8).collect();
    client.write(&file, 0, &data).unwrap();

    let plan = FaultPlan::new(seed);
    plan.set_enabled(false);
    fleet.set_faults(&plan, FaultConfig::lossy(0.3));
    plan.set_enabled(true);

    // Column 0's primary lives on drive index 0; its mirror on index 1.
    fleet.crash(0);
    let back = client.read(&file, 0, data.len() as u64).unwrap();
    assert_eq!(back, &data[..], "degraded read diverged from acked data");

    fleet.restart(0).expect("restart failed");
    let tail = vec![0xABu8; 10_000];
    client.write(&file, data.len() as u64, &tail).unwrap();
    plan.set_enabled(false);

    let back = client
        .read(&file, data.len() as u64, tail.len() as u64)
        .unwrap();
    assert_eq!(back, tail, "post-restart write lost");
    assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");
}

/// One full crash → detect → rebuild → resume lifecycle for a parity
/// stripe, as a function of the seed alone. With `chaos` set, the run
/// injects seeded channel faults, crashes a column's drive mid-workload
/// (degraded readers hammering throughout), waits for nasd-mgmt to
/// reconstruct it onto the hot spare, then restarts traffic against the
/// rebuilt layout. Without it, the identical logical workload runs on a
/// healthy fleet. Both return the file's final bytes.
fn rebuild_scenario(seed: u64, chaos: bool) -> Vec<u8> {
    const TOTAL: u64 = 192 * 1024;
    let fleet = Arc::new(
        DriveFleet::spawn_faulty(
            5,
            DriveConfig::small(),
            P1,
            64 << 20,
            chaos.then_some((seed, DriveFaultConfig::moderate())),
        )
        .unwrap(),
    );
    for ep in fleet.endpoints() {
        ep.set_retry(chaos_retry());
    }
    let plan = FaultPlan::new(seed);
    plan.set_enabled(false);
    if chaos {
        fleet.set_faults(&plan, FaultConfig::lossy(0.3));
    }
    let (mgr, _mh) = CheopsManager::new(Arc::clone(&fleet)).spawn();
    let client = Connector::new().cheops(1, mgr.clone(), Arc::clone(&fleet));
    // 3 data columns (drive idx 0..=2) + parity (idx 3); idx 4 is spare.
    let id = client.create(3, 32 * 1024, Redundancy::Parity).unwrap();
    let file = client.open(id, Rights::ALL).unwrap();
    plan.set_enabled(true);

    let phase1: Vec<u8> = (0..TOTAL)
        .map(|i| (i.wrapping_mul(31).wrapping_add(seed) % 251) as u8)
        .collect();
    client.write(&file, 0, &phase1).unwrap();

    if chaos {
        // Readers keep hammering across the crash: degraded reads must
        // stay byte-exact while the column is reconstructed behind them.
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let client = Connector::new().cheops(2, mgr.clone(), Arc::clone(&fleet));
            let stop = Arc::clone(&stop);
            let phase1 = phase1.clone();
            std::thread::spawn(move || {
                let file = client.open(id, Rights::READ).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let off = (i * 13_313) % (TOTAL - 8_192);
                    let back = client.read(&file, off, 8_192).unwrap();
                    assert_eq!(
                        back,
                        &phase1[off as usize..off as usize + 8_192],
                        "degraded read diverged at offset {off}"
                    );
                    i += 1;
                }
                i
            })
        };

        let failed = fleet.endpoint(1).id();
        let spare = fleet.endpoint(4).id();
        fleet.crash(1);
        let mgmt = NasdMgmt::new(
            Arc::clone(&fleet),
            Channel::in_proc(mgr),
            vec![spare],
            MgmtConfig::standard().probe_timeout(Duration::from_millis(30)),
        );
        // Detection needs `failure_threshold` silent sweeps; rebuilds
        // interrupted by injected faults resume on the next cycle.
        let mut rebuilt = false;
        for _ in 0..12 {
            let report = mgmt.check_once().unwrap();
            assert!(
                !report.rebuilt.iter().any(|(d, _)| *d != failed),
                "seed {seed:#x}: a live drive was falsely rebuilt: {report:?}"
            );
            if mgmt
                .repairs()
                .unwrap()
                .iter()
                .any(|r| r.drive == failed && r.phase == RepairPhase::Rebuilt)
            {
                rebuilt = true;
                break;
            }
        }
        assert!(rebuilt, "seed {seed:#x}: rebuild did not complete");
        stop.store(true, Ordering::SeqCst);
        let reads = reader.join().expect("reader panicked across the rebuild");
        assert!(reads > 0, "reader made no progress");
    }

    // Traffic restarts: a fresh open picks up the (possibly swapped)
    // layout, and the parity write path must be consistent again.
    let file = client.open(id, Rights::ALL).unwrap();
    for i in 0..6u64 {
        let off = seed.wrapping_mul(2_654_435_761).wrapping_add(i * 7_919) % (TOTAL - 4_096);
        let len = 1_024 + (i * 613) % 3_072;
        let fill = ((seed ^ (i * 11)) % 255) as u8 + 1;
        client.write(&file, off, &vec![fill; len as usize]).unwrap();
    }
    let back = client.read(&file, 0, TOTAL).unwrap();
    if chaos {
        plan.set_enabled(false);
        assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");
    }
    back.to_vec()
}

/// The nasd-mgmt headline scenario, per seed: crash a parity column's
/// drive under seeded chaos with readers in flight, let nasd-mgmt detect
/// it and reconstruct onto the hot spare, restart write traffic, and
/// require the file's final bytes to be identical to the same logical
/// workload on a fleet that never failed.
#[test]
fn rebuilt_stripe_reads_byte_identical_to_fault_free_run() {
    for &seed in &SEEDS {
        let clean = rebuild_scenario(seed, false);
        let stormy = rebuild_scenario(seed, true);
        assert_eq!(
            clean.len(),
            stormy.len(),
            "seed {seed:#x}: rebuilt file changed size"
        );
        assert!(
            clean == stormy,
            "seed {seed:#x}: rebuilt file diverged from the fault-free run"
        );
    }
}

/// The full PFS + data-mining pipeline under a lossy fleet: the
/// parallel frequent-items scan must agree exactly with a clean
/// in-memory Apriori pass over the same transactions.
#[test]
fn pfs_mining_pipeline_agrees_under_chaos() {
    let seed = SEEDS[1];
    let request = 64 * 1024u64;
    let cluster =
        Arc::new(PfsCluster::spawn_with_config(3, request, DriveConfig::small()).unwrap());
    let data = TransactionGenerator::new(5).generate_bytes(1 << 20, request as usize);
    let loader = cluster.client(0);
    let f = loader.create("/txns", 3).unwrap();
    loader.write_at(&f, 0, &data).unwrap();

    for ep in cluster.fleet().endpoints() {
        ep.set_retry(chaos_retry());
    }
    let plan = FaultPlan::new(seed);
    plan.set_enabled(false);
    cluster.fleet().set_faults(&plan, FaultConfig::lossy(0.4));
    plan.set_enabled(true);

    let got = parallel_frequent_items(&cluster, "/txns", 3, 256 * 1024, request).unwrap();
    plan.set_enabled(false);

    let txns: Vec<_> = TransactionReader::new(&data, request as usize).collect();
    let (want, n) = apriori::count_1_itemsets(&txns);
    assert_eq!(
        got.transactions, n,
        "transaction count diverged under chaos"
    );
    assert_eq!(got.counts, want, "item counts diverged under chaos");
    assert_eq!(got.bytes_read, data.len() as u64);
    assert!(!plan.trace().is_empty(), "seed {seed:#x} injected nothing");
}

/// After the manager is shut down, NFS clients get a clean error — no
/// hang, no panic.
#[test]
fn nfs_client_fails_cleanly_after_manager_shutdown() {
    let fleet = Arc::new(DriveFleet::spawn_memory(2, DriveConfig::small(), P1, 64 << 20).unwrap());
    let (fm, handle) = NasdNfs::new(Arc::clone(&fleet)).unwrap().spawn();
    let client = Connector::new().nfs(fm, Arc::clone(&fleet)).unwrap();
    client.mkdir("/d", 0o755, 0).unwrap();
    handle.shutdown();
    let err = client.readdir("/").expect_err("manager is gone");
    assert!(
        matches!(err, FmError::Transport | FmError::Unavailable { .. }),
        "expected a disconnection-style error, got {err}"
    );
}

/// Same contract for AFS: once the manager is gone, operations that
/// need it fail fast with a clean error.
#[test]
fn afs_client_fails_cleanly_after_manager_shutdown() {
    let fleet = Arc::new(DriveFleet::spawn_memory(2, DriveConfig::small(), P1, 64 << 20).unwrap());
    let (afs, handle) = NasdAfs::new(Arc::clone(&fleet), 8 << 20).unwrap().spawn();
    let client = Connector::new().afs(1, afs, Arc::clone(&fleet)).unwrap();
    let fh = client.create(client.root(), "a").unwrap();
    client.write_file(fh, b"payload").unwrap();
    handle.shutdown();
    let err = client
        .create(client.root(), "b")
        .expect_err("manager is gone");
    assert!(
        matches!(err, FmError::Transport | FmError::Unavailable { .. }),
        "expected a disconnection-style error, got {err}"
    );
}

/// Cheops: manager loss breaks control operations cleanly, and with
/// every drive down the data path errors out in bounded time instead of
/// hanging.
#[test]
fn cheops_client_fails_cleanly_when_services_die() {
    let fleet = Arc::new(DriveFleet::spawn_memory(2, DriveConfig::small(), P1, 64 << 20).unwrap());
    for ep in fleet.endpoints() {
        ep.set_retry(RetryPolicy {
            max_attempts: 3,
            timeout: Duration::from_millis(10),
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        });
    }
    let (mgr, handle) = CheopsManager::new(Arc::clone(&fleet)).spawn();
    let client = Connector::new().cheops(1, mgr, Arc::clone(&fleet));
    let id = client.create(1, 64 * 1024, Redundancy::None).unwrap();
    let file = client.open(id, Rights::ALL).unwrap();
    client.write(&file, 0, &[7u8; 4_096]).unwrap();

    handle.shutdown();
    let err = client
        .create(1, 64 * 1024, Redundancy::None)
        .expect_err("manager is gone");
    assert!(
        matches!(err, FmError::Transport | FmError::Unavailable { .. }),
        "expected a disconnection-style error, got {err}"
    );

    // The data path survives manager loss (asynchronous oversight) ...
    assert_eq!(client.read(&file, 0, 4_096).unwrap().len(), 4_096);

    // ... but with every drive down it must fail cleanly, not hang.
    fleet.crash(0);
    fleet.crash(1);
    let err = client.read(&file, 0, 4_096).expect_err("drives are gone");
    assert!(
        matches!(
            err,
            FmError::Transport | FmError::Unavailable { .. } | FmError::Drive(_)
        ),
        "expected a clean drive-unavailable error, got {err}"
    );
}

// ===================================================================
// Crash-point recovery sweep
// ===================================================================
//
// The exhaustive durability harness for the drive's on-disk layout and
// write-ahead log: run a seeded mixed workload against a durable drive,
// learn how many device writes the whole run performs, then re-run it
// killing the power at *every* possible write — once dropping the
// crash-point write whole, once landing it torn (a seeded partial
// sector). After each crash the media is remounted and the recovered
// drive must contain exactly the acknowledged state (or acknowledged
// state plus the one in-flight operation, which may have committed
// without its ack escaping), with full structural invariants and a
// byte-identical second remount.

mod crash_sweep {
    use super::{fnv, P1, SEEDS};
    use bytes::Bytes;
    use nasd::disk::{CrashDisk, MemDisk, SharedDisk};
    use nasd::object::{DriveConfig, NasdDrive, StoreError, FIRST_DYNAMIC_OBJECT};
    use nasd::proto::{
        NasdStatus, ObjectId, ReplyBody, RequestBody, Rights, SetAttrMask, FS_SPECIFIC_ATTR_LEN,
    };
    use std::collections::BTreeMap;
    use std::io::Write as _;

    const DRIVE_NO: u64 = 9;

    /// Small geometry so one full sweep stays fast: every device write
    /// of the workload gets its own crash run.
    fn sweep_config() -> DriveConfig {
        DriveConfig {
            block_size: 512,
            capacity_blocks: 2_048,
            cache_blocks: 32,
            security_enabled: true,
            durable_writes: true,
        }
    }

    fn mix(seed: u64, i: u64) -> u64 {
        let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One step of the seeded workload script. Object references are by
    /// id so the script is a pure function of the seed — independent of
    /// how far a crashed run got.
    #[derive(Clone, Debug)]
    enum SweepOp {
        CreatePartition {
            quota: u64,
        },
        Create {
            preallocate: u64,
        },
        Write {
            o: ObjectId,
            offset: u64,
            len: u64,
            fill: u8,
        },
        Resize {
            o: ObjectId,
            new_size: u64,
        },
        SetAttr {
            o: ObjectId,
            tag: u8,
        },
        Snapshot {
            o: ObjectId,
        },
        Remove {
            o: ObjectId,
        },
    }

    /// What the client believes the drive holds: only state whose ack it
    /// has seen. `None` contents model "partition not created yet".
    #[derive(Clone, Debug, Default, PartialEq)]
    struct Shadow {
        partition: bool,
        /// Object contents and the fs_specific tag byte, per object.
        objects: BTreeMap<ObjectId, (Vec<u8>, u8)>,
        next_oid: u64,
    }

    impl Shadow {
        fn apply(&mut self, op: &SweepOp) {
            match *op {
                SweepOp::CreatePartition { .. } => self.partition = true,
                SweepOp::Create { .. } => {
                    self.objects
                        .insert(ObjectId(self.next_oid), (Vec::new(), 0));
                    self.next_oid += 1;
                }
                SweepOp::Write {
                    o,
                    offset,
                    len,
                    fill,
                } => {
                    let (data, _) = self.objects.get_mut(&o).expect("script bug: write target");
                    let end = (offset + len) as usize;
                    if data.len() < end {
                        data.resize(end, 0);
                    }
                    data[offset as usize..end].fill(fill);
                }
                SweepOp::Resize { o, new_size } => {
                    let (data, _) = self.objects.get_mut(&o).expect("script bug: resize target");
                    data.resize(new_size as usize, 0);
                }
                SweepOp::SetAttr { o, tag } => {
                    self.objects
                        .get_mut(&o)
                        .expect("script bug: setattr target")
                        .1 = tag;
                }
                SweepOp::Snapshot { o } => {
                    let src = self
                        .objects
                        .get(&o)
                        .expect("script bug: snapshot src")
                        .clone();
                    self.objects.insert(ObjectId(self.next_oid), src);
                    self.next_oid += 1;
                }
                SweepOp::Remove { o } => {
                    self.objects.remove(&o).expect("script bug: remove target");
                }
            }
        }
    }

    /// Generate the seeded mixed workload: a fixed prologue that builds
    /// some state, then seeded ops over the live object set.
    fn script(seed: u64) -> Vec<SweepOp> {
        let mut ops = vec![SweepOp::CreatePartition { quota: 1 << 20 }];
        let mut live: Vec<ObjectId> = Vec::new();
        let mut next = FIRST_DYNAMIC_OBJECT;
        let create = |live: &mut Vec<ObjectId>, next: &mut u64, preallocate: u64| {
            live.push(ObjectId(*next));
            *next += 1;
            SweepOp::Create { preallocate }
        };
        ops.push(create(&mut live, &mut next, 0));
        ops.push(SweepOp::Write {
            o: live[0],
            offset: 0,
            len: 700,
            fill: 0xA1,
        });
        ops.push(create(&mut live, &mut next, 2_048));
        for i in 0..14u64 {
            let r = mix(seed, i);
            let op = match r % 8 {
                0 => create(&mut live, &mut next, (r >> 8) % 1_024),
                1 if live.len() > 1 => {
                    // Remove a mid-list object so ids stay non-contiguous.
                    let victim = live.remove((r as usize >> 8) % live.len());
                    SweepOp::Remove { o: victim }
                }
                2 => {
                    let o = live[(r as usize >> 8) % live.len()];
                    SweepOp::Resize {
                        o,
                        new_size: (r >> 16) % 3_000,
                    }
                }
                3 => {
                    let o = live[(r as usize >> 8) % live.len()];
                    SweepOp::SetAttr {
                        o,
                        tag: (r >> 16) as u8 | 1,
                    }
                }
                4 if live.len() < 6 => {
                    let o = live[(r as usize >> 8) % live.len()];
                    live.push(ObjectId(next));
                    next += 1;
                    SweepOp::Snapshot { o }
                }
                _ => {
                    let o = live[(r as usize >> 8) % live.len()];
                    SweepOp::Write {
                        o,
                        offset: (r >> 16) % 2_500,
                        len: (r >> 32) % 1_400 + 1,
                        fill: (r >> 56) as u8 | 1,
                    }
                }
            };
            ops.push(op);
        }
        ops
    }

    /// Execute one op through the drive's full signed request path.
    fn perform(
        drive: &mut NasdDrive<CrashDisk<SharedDisk>>,
        op: &SweepOp,
        predicted_oid: u64,
    ) -> Result<(), NasdStatus> {
        match *op {
            SweepOp::CreatePartition { quota } => drive.admin_create_partition(P1, quota),
            SweepOp::Create { preallocate } => {
                let id = drive.admin_create_object(P1, preallocate)?;
                assert_eq!(id.0, predicted_oid, "object names must be deterministic");
                Ok(())
            }
            SweepOp::Write {
                o,
                offset,
                len,
                fill,
            } => {
                let cap = drive.issue_capability(P1, o, Rights::ALL, 3_600);
                let c = drive.client(cap);
                let n = c.write(drive, offset, &vec![fill; len as usize])?;
                assert_eq!(n, len, "short write acked");
                Ok(())
            }
            SweepOp::Resize { o, new_size } => {
                let cap = drive.issue_capability(P1, o, Rights::ALL, 3_600);
                let c = drive.client(cap);
                let req = c.build(
                    RequestBody::Resize {
                        partition: P1,
                        object: o,
                        new_size,
                    },
                    Bytes::new(),
                );
                let (reply, _) = drive.handle(&req);
                reply.status.is_ok().then_some(()).ok_or(reply.status)
            }
            SweepOp::SetAttr { o, tag } => {
                let cap = drive.issue_capability(P1, o, Rights::ALL, 3_600);
                let c = drive.client(cap);
                let mut fs = Box::new([0u8; FS_SPECIFIC_ATTR_LEN]);
                fs[0] = tag;
                let req = c.build(
                    RequestBody::SetAttr {
                        partition: P1,
                        object: o,
                        mask: SetAttrMask::fs_specific_only(),
                        fs_specific: fs,
                        preallocated: 0,
                        cluster_with: None,
                    },
                    Bytes::new(),
                );
                let (reply, _) = drive.handle(&req);
                reply.status.is_ok().then_some(()).ok_or(reply.status)
            }
            SweepOp::Snapshot { o } => {
                let cap = drive.issue_capability(P1, o, Rights::ALL, 3_600);
                let c = drive.client(cap);
                let req = c.build(
                    RequestBody::Snapshot {
                        partition: P1,
                        object: o,
                    },
                    Bytes::new(),
                );
                let (reply, _) = drive.handle(&req);
                match (reply.status, reply.body) {
                    (NasdStatus::Ok, ReplyBody::Created(id)) => {
                        assert_eq!(id.0, predicted_oid, "snapshot names must be deterministic");
                        Ok(())
                    }
                    (s, _) => Err(s),
                }
            }
            SweepOp::Remove { o } => {
                let cap = drive.issue_capability(P1, o, Rights::ALL, 3_600);
                let c = drive.client(cap);
                let req = c.build(
                    RequestBody::Remove {
                        partition: P1,
                        object: o,
                    },
                    Bytes::new(),
                );
                let (reply, _) = drive.handle(&req);
                reply.status.is_ok().then_some(()).ok_or(reply.status)
            }
        }
    }

    /// Run the script until the first failure (the crash). Returns the
    /// acked shadow and, when a crash interrupted an op, the shadow as
    /// it would look had that in-flight op committed.
    fn run_workload(
        drive: &mut NasdDrive<CrashDisk<SharedDisk>>,
        ops: &[SweepOp],
    ) -> (Shadow, Option<Shadow>, usize) {
        let mut acked = Shadow {
            partition: false,
            objects: BTreeMap::new(),
            next_oid: FIRST_DYNAMIC_OBJECT,
        };
        for (i, op) in ops.iter().enumerate() {
            let mut next = acked.clone();
            next.apply(op);
            match perform(drive, op, acked.next_oid) {
                Ok(()) => acked = next,
                Err(_) => return (acked, Some(next), i),
            }
        }
        (acked, None, ops.len())
    }

    /// Check that a reopened drive holds exactly `want`. Returns a
    /// description of the first divergence, if any.
    fn diff_state(drive: &mut NasdDrive<SharedDisk>, want: &Shadow) -> Option<String> {
        let listed = drive.store().list_objects(P1);
        if !want.partition {
            return match listed {
                Err(StoreError::NoSuchPartition(_)) => None,
                other => Some(format!("partition should not exist, got {other:?}")),
            };
        }
        let listed = match listed {
            Ok(ids) => ids,
            Err(e) => return Some(format!("partition lost: {e}")),
        };
        let expect: Vec<ObjectId> = want.objects.keys().copied().collect();
        if listed != expect {
            return Some(format!("object set {listed:?}, want {expect:?}"));
        }
        for (&o, (data, tag)) in &want.objects {
            let cap = drive.issue_capability(P1, o, Rights::READ | Rights::GETATTR, 3_600);
            let c = drive.client(cap);
            // Over-read by one byte: proves the recovered size too.
            let back = match c.read(drive, 0, data.len() as u64 + 1) {
                Ok(rope) => rope.flatten(),
                Err(e) => return Some(format!("object {o:?} unreadable: {e:?}")),
            };
            if back[..] != data[..] {
                let at = back
                    .iter()
                    .zip(data.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(data.len().min(back.len()));
                return Some(format!(
                    "object {o:?} diverges at byte {at} (len {} vs {})",
                    back.len(),
                    data.len()
                ));
            }
            let attrs = match c.get_attr(drive) {
                Ok(a) => a,
                Err(e) => return Some(format!("object {o:?} attrs unreadable: {e:?}")),
            };
            if attrs.fs_specific[0] != *tag {
                return Some(format!(
                    "object {o:?} fs_specific {} != {tag}",
                    attrs.fs_specific[0]
                ));
            }
        }
        None
    }

    /// Digest a recovered drive's full logical state, for the
    /// double-remount stability check.
    fn state_digest(drive: &mut NasdDrive<SharedDisk>) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let Ok(ids) = drive.store().list_objects(P1) else {
            return h;
        };
        for o in ids {
            let cap = drive.issue_capability(P1, o, Rights::READ | Rights::GETATTR, 3_600);
            let c = drive.client(cap);
            h = fnv(&o.0.to_be_bytes(), h);
            let back = c
                .read(drive, 0, 1 << 20)
                .expect("recovered object readable");
            h = fnv(&back.flatten(), h);
            let attrs = c.get_attr(drive).expect("recovered attrs readable");
            h = fnv(&attrs.fs_specific[..], h);
        }
        h
    }

    /// On failure, persist everything needed to replay the crash by hand
    /// and return the path for the panic message.
    fn dump_trace(seed: u64, budget: u64, torn: bool, ops: &[SweepOp], detail: &str) -> String {
        let dir = std::path::Path::new("target/recovery-traces");
        std::fs::create_dir_all(dir).expect("create trace dir");
        let path = dir.join(format!(
            "seed-{seed:#x}-n{budget}{}.txt",
            if torn { "-torn" } else { "" }
        ));
        let mut f = std::fs::File::create(&path).expect("create trace file");
        writeln!(f, "seed: {seed:#x}").unwrap();
        writeln!(f, "crash budget (writes allowed): {budget}").unwrap();
        writeln!(f, "torn final sector: {torn}").unwrap();
        writeln!(f, "failure: {detail}").unwrap();
        writeln!(f, "workload script:").unwrap();
        for (i, op) in ops.iter().enumerate() {
            writeln!(f, "  {i:3}: {op:?}").unwrap();
        }
        path.display().to_string()
    }

    /// One crash run: arm the disk to fail at write `budget`, run the
    /// workload, remount, and verify no acked state was lost.
    fn crash_run(seed: u64, ops: &[SweepOp], budget: u64, torn: bool) {
        let media = SharedDisk::new(MemDisk::new(
            sweep_config().block_size,
            sweep_config().capacity_blocks,
        ));
        let mut disk = CrashDisk::new(media.clone(), seed);
        disk.arm(budget, torn);
        let mut drive = NasdDrive::builder(DRIVE_NO)
            .config(sweep_config())
            .build_on(disk);
        let (acked, inflight, failed_at) = run_workload(&mut drive, ops);
        assert!(
            drive.store().cache().device().tripped(),
            "budget {budget} never tripped — sweep bound is stale"
        );
        drop(drive);

        let fail = |detail: String| -> ! {
            let path = dump_trace(seed, budget, torn, ops, &detail);
            panic!(
                "seed {seed:#x} crash at write {budget} (torn={torn}, op {failed_at}): \
                 {detail}\n  trace: {path}"
            );
        };

        let mut reopened = match NasdDrive::builder(DRIVE_NO)
            .config(sweep_config())
            .open(media.clone())
        {
            Ok(d) => d,
            Err(StoreError::NotFormatted) => {
                // Legal only if nothing was ever acknowledged: the crash
                // beat the very first commit (which formats the device).
                if acked
                    != (Shadow {
                        partition: false,
                        objects: BTreeMap::new(),
                        next_oid: FIRST_DYNAMIC_OBJECT,
                    })
                {
                    fail(format!("device unformatted but ops were acked: {acked:?}"));
                }
                return;
            }
            Err(e) => fail(format!("remount failed: {e}")),
        };

        if let Some(d) = diff_state(&mut reopened, &acked) {
            // The in-flight op may have become durable without its ack
            // escaping the drive — that is the other legal outcome.
            match &inflight {
                Some(committed) => {
                    if let Some(d2) = diff_state(&mut reopened, committed) {
                        fail(format!(
                            "matches neither acked state ({d}) nor acked+in-flight ({d2})"
                        ));
                    }
                }
                None => fail(format!("acked state lost: {d}")),
            }
        }
        let digest = state_digest(&mut reopened);
        drop(reopened);

        // Replay must be idempotent at the system level: remounting the
        // same media again yields the identical logical state.
        let mut second = NasdDrive::builder(DRIVE_NO)
            .config(sweep_config())
            .open(media)
            .unwrap_or_else(|e| fail(format!("second remount failed: {e}")));
        let second_digest = state_digest(&mut second);
        if digest != second_digest {
            fail(format!(
                "double-remount digest diverged: {digest:#x} != {second_digest:#x}"
            ));
        }
    }

    /// Fault-free pass: learns the total device write count and proves
    /// the workload script acks end-to-end, and that the final state
    /// matches the shadow exactly.
    fn count_writes(seed: u64, ops: &[SweepOp]) -> u64 {
        let media = SharedDisk::new(MemDisk::new(
            sweep_config().block_size,
            sweep_config().capacity_blocks,
        ));
        let disk = CrashDisk::new(media.clone(), seed);
        let mut drive = NasdDrive::builder(DRIVE_NO)
            .config(sweep_config())
            .build_on(disk);
        let (acked, inflight, _) = run_workload(&mut drive, ops);
        assert!(inflight.is_none(), "fault-free run must ack every op");
        let writes = drive.store().cache().device().writes_completed();
        assert!(writes > 0, "workload performed no durable writes");
        drop(drive);
        let mut reopened = NasdDrive::builder(DRIVE_NO)
            .config(sweep_config())
            .open(media)
            .expect("fault-free remount");
        assert_eq!(
            diff_state(&mut reopened, &acked),
            None,
            "fault-free remount diverged from the shadow"
        );
        writes
    }

    /// The tentpole test: for every seed, power-cut the drive at every
    /// single device write of the workload — dropping the crash-point
    /// write whole — remount, and verify.
    #[test]
    fn crash_point_sweep_loses_no_acked_write() {
        for &seed in &SEEDS {
            let ops = script(seed);
            let writes = count_writes(seed, &ops);
            for budget in 0..writes {
                crash_run(seed, &ops, budget, false);
            }
        }
    }

    /// Same sweep with the crash-point write landing *torn*: a seeded
    /// partial sector that recovery must detect by checksum and roll
    /// back cleanly.
    #[test]
    fn crash_point_sweep_survives_torn_final_sector() {
        for &seed in &SEEDS {
            let ops = script(seed);
            let writes = count_writes(seed, &ops);
            for budget in 0..writes {
                crash_run(seed, &ops, budget, true);
            }
        }
    }
}

// ================================================================ dedup

/// GC storm + concurrent backups + a drive power-cut, per seed. The
/// dedup store's GC-safety argument (pins for in-flight chunks, mark
/// and sweep in one critical section) must hold while a drive dies and
/// comes back under a lossy network: no chunk any published snapshot
/// references is ever collected, and every snapshot restores
/// byte-identically afterwards — including from a cold reopen that
/// rediscovers the store off the durable media.
#[test]
fn dedup_gc_backup_drive_crash_storm() {
    use nasd::dedup::{ArchiveSource, BackupClient, ChunkStore, ChunkerParams, StoreConfig};
    use nasd::obs::Registry;

    fn content(seed: u64, salt: u64, len: usize) -> Vec<u8> {
        let mut state = (seed ^ salt.rotate_left(17)) | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                (state >> 33) as u8
            })
            .collect()
    }

    fn config() -> StoreConfig {
        StoreConfig {
            partition: P1,
            pack_target_bytes: 32 << 10,
            compress: true,
            cap_lifetime: 1 << 30,
        }
    }

    for &seed in &SEEDS {
        let fleet = Arc::new(
            DriveFleet::spawn_faulty(2, DriveConfig::small().durable(), P1, 64 << 20, None)
                .unwrap(),
        );
        // Patient enough to span the outage window.
        let patient = RetryPolicy {
            max_attempts: 64,
            timeout: Duration::from_millis(25),
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        };
        for ep in fleet.endpoints() {
            ep.set_retry(patient);
        }
        let registry = Registry::new();
        let store = ChunkStore::open(Arc::clone(&fleet), config(), &registry).unwrap();

        // A snapshot that predates the storm: its chunks are what a
        // GC-vs-crash bug would most plausibly eat.
        let base = content(seed, 0, 80_000);
        BackupClient::with_params(&store, ChunkerParams::small())
            .backup("base", &[ArchiveSource::stream("a", base.clone())])
            .unwrap();

        // Storm on: seeded lossy network for the remainder of the run.
        let plan = FaultPlan::new(seed);
        fleet.set_faults(&plan, FaultConfig::lossy(0.2));

        let stop = AtomicBool::new(false);
        let reached_crash_point = AtomicBool::new(false);
        let (gc_runs, contents) = std::thread::scope(|s| {
            let gc = {
                let store = &store;
                let stop = &stop;
                s.spawn(move || {
                    let mut ok = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        // While the victim drive is down a pass may fail
                        // cleanly; it must never take a referenced chunk
                        // down with it.
                        if store.gc().is_ok() {
                            ok += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    ok
                })
            };
            let backup = {
                let store = &store;
                let reached = &reached_crash_point;
                s.spawn(move || {
                    let client = BackupClient::with_params(store, ChunkerParams::small());
                    let mut contents = Vec::new();
                    for i in 0..4u64 {
                        let data = content(seed, 1 + i, 60_000);
                        client
                            .backup(
                                &format!("s{i}"),
                                &[ArchiveSource::stream("a", data.clone())],
                            )
                            .unwrap_or_else(|e| {
                                panic!("seed {seed:#x}: backup s{i} failed under chaos: {e}")
                            });
                        contents.push(data);
                        if i == 0 {
                            reached.store(true, Ordering::SeqCst);
                        }
                    }
                    contents
                })
            };

            // Power-cut a seeded drive mid-backup, hold it down briefly,
            // restart it from the persisted media.
            while !reached_crash_point.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let victim = (seed % fleet.len() as u64) as usize;
            fleet.crash(victim);
            assert!(!fleet.is_up(victim), "crash did not take the drive down");
            std::thread::sleep(Duration::from_millis(20));
            fleet
                .restart(victim)
                .expect("restart from persisted media failed");

            let contents = backup.join().expect("backup thread panicked under chaos");
            stop.store(true, Ordering::Relaxed);
            let gc_runs = gc.join().expect("gc thread panicked under chaos");
            (gc_runs, contents)
        });
        plan.set_enabled(false);
        assert!(gc_runs > 0, "seed {seed:#x}: GC never completed a pass");

        // Every snapshot restores byte-identically through the storm...
        let client = BackupClient::with_params(&store, ChunkerParams::small());
        assert_eq!(
            client.restore("base").unwrap()[0].data,
            base,
            "seed {seed:#x}: pre-storm snapshot corrupted"
        );
        for (i, want) in contents.iter().enumerate() {
            let got = client.restore(&format!("s{i}")).unwrap();
            assert_eq!(
                &got[0].data, want,
                "seed {seed:#x}: snapshot s{i} corrupted"
            );
        }

        // ...and from a cold reopen that rediscovers packs, index and
        // manifests from the durable media alone.
        let reopened = ChunkStore::open(Arc::clone(&fleet), config(), &registry).unwrap();
        let cold = BackupClient::with_params(&reopened, ChunkerParams::small());
        assert_eq!(
            cold.restore("base").unwrap()[0].data,
            base,
            "seed {seed:#x}: cold reopen lost the pre-storm snapshot"
        );
        for (i, want) in contents.iter().enumerate() {
            let got = cold.restore(&format!("s{i}")).unwrap();
            assert_eq!(
                &got[0].data, want,
                "seed {seed:#x}: cold reopen lost snapshot s{i}"
            );
        }
    }
}
