//! Adversarial tests of the NASD security architecture (§4.1): every
//! protection the paper claims, attacked end to end through the wire
//! protocol.

use bytes::Bytes;
use nasd::crypto::SecretKey;
use nasd::object::{ClientHandle, DriveSecurity, NasdDrive};
use nasd::proto::wire::WireEncode;
use nasd::proto::{
    ByteRange, CapabilityPublic, NasdStatus, Nonce, ObjectId, PartitionId, ProtectionLevel,
    Request, RequestBody, Rights, SecurityHeader, Version,
};

const P: PartitionId = PartitionId(1);

fn drive_with_object() -> (NasdDrive, ObjectId) {
    let mut d = NasdDrive::builder(7).build();
    d.admin_create_partition(P, 16 << 20).unwrap();
    let obj = d.admin_create_object(P, 0).unwrap();
    let cap = d.issue_capability(P, obj, Rights::WRITE, 100);
    d.client(cap)
        .write(&mut d, 0, b"protected payload")
        .unwrap();
    (d, obj)
}

/// Every public capability field is covered by the MAC: flipping any of
/// them must break verification.
#[test]
fn every_capability_field_is_tamper_proof() {
    let (mut d, obj) = drive_with_object();
    let cap = d.issue_capability(P, obj, Rights::READ, 100);

    type Mutation = Box<dyn Fn(&mut CapabilityPublic)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("rights", Box::new(|c| c.rights = Rights::ALL)),
        ("object", Box::new(|c| c.object = ObjectId(c.object.0 + 1))),
        // Shrink the region but keep it covering the probe read: only the
        // MAC can catch this one.
        ("region", Box::new(|c| c.region = ByteRange::new(0, 10))),
        ("expires", Box::new(|c| c.expires += 1_000_000)),
        ("version", Box::new(|c| c.version = Version(5))),
        ("partition", Box::new(|c| c.partition = PartitionId(2))),
    ];
    for (field, mutate) in mutations {
        let mut forged = cap.clone();
        mutate(&mut forged.public);
        let client = ClientHandle::new(666, forged);
        let err = client.read(&mut d, 0, 1).unwrap_err();
        assert!(
            err == NasdStatus::AccessDenied
                || err == NasdStatus::NoSuchPartition
                || err == NasdStatus::NoSuchObject,
            "tampered {field} produced {err:?}"
        );
    }
    // The untampered capability still works.
    let client = ClientHandle::new(667, cap);
    assert!(client.read(&mut d, 0, 1).is_ok());
}

/// Without the drive's keys an adversary cannot mint a capability, even
/// knowing the full public structure.
#[test]
fn capability_cannot_be_minted_without_keys() {
    let (mut d, obj) = drive_with_object();
    let public = CapabilityPublic {
        drive: d.id(),
        partition: P,
        object: obj,
        version: Version(0),
        rights: Rights::ALL,
        region: ByteRange::FULL,
        expires: d.clock() + 1_000,
        key_kind: nasd::crypto::KeyKind::Gold,
        min_protection: ProtectionLevel::ArgsIntegrity,
    };
    let guessed_key = SecretKey::from_bytes([0xeeu8; 32]);
    let forged = public.mint(&guessed_key);
    let client = ClientHandle::new(1, forged);
    assert_eq!(
        client.read(&mut d, 0, 1).unwrap_err(),
        NasdStatus::AccessDenied
    );
}

/// Capturing a valid request and replaying it verbatim must fail, and
/// out-of-window stale nonces must fail even unreplayed.
#[test]
fn replay_and_stale_nonce_rejected() {
    let (mut d, obj) = drive_with_object();
    let cap = d.issue_capability(P, obj, Rights::READ, 100);
    let client = d.client(cap.clone());

    // Advance the client's counter far ahead.
    for _ in 0..100 {
        client.read(&mut d, 0, 1).unwrap();
    }
    // Replay: rebuild the exact request with an already-used nonce.
    let old = ClientHandle::new(0, cap).build(
        RequestBody::Read {
            partition: P,
            object: obj,
            offset: 0,
            len: 1,
        },
        Bytes::new(),
    );
    // A brand-new client id: its first nonce (counter 1) is fresh...
    let (reply, _) = d.handle(&old);
    assert!(reply.status.is_ok());
    // ...but the identical request again is a replay.
    let (reply, _) = d.handle(&old);
    assert_eq!(reply.status, NasdStatus::Replay);
}

/// Data-integrity mode: when the capability demands it, payload
/// tampering in flight is detected, and downgrading the protection level
/// is refused.
#[test]
fn data_integrity_mode_detects_payload_tampering() {
    let mut d = NasdDrive::builder(7).build();
    d.admin_create_partition(P, 16 << 20).unwrap();
    let obj = d.admin_create_object(P, 0).unwrap();

    // Mint a capability that demands data integrity.
    let ep_cap = {
        let mut cap = d.issue_capability(P, obj, Rights::READ | Rights::WRITE, 100);
        cap.public.min_protection = ProtectionLevel::DataIntegrity;
        // Re-mint with the correct private field for the edited public.
        let key = d.hierarchy().partition_keys(P.0, 0).gold;
        cap.public.clone().mint(&key)
    };

    let mut client = ClientHandle::new(50, ep_cap.clone());

    // Downgrade attempt: args-only protection is refused outright.
    client.set_protection(ProtectionLevel::ArgsIntegrity);
    assert_eq!(
        client.write(&mut d, 0, b"downgraded").unwrap_err(),
        NasdStatus::AccessDenied
    );

    // Proper mode works.
    client.set_protection(ProtectionLevel::DataIntegrity);
    assert_eq!(client.write(&mut d, 0, b"covered!").unwrap(), 8);

    // A man-in-the-middle flips payload bytes after signing: caught.
    let body = RequestBody::Write {
        partition: P,
        object: obj,
        offset: 0,
        len: 8,
    };
    let nonce = Nonce::new(51, 1);
    let digest = DriveSecurity::request_digest(
        ep_cap.private.as_bytes(),
        nonce,
        &body.to_wire(),
        b"original",
        ProtectionLevel::DataIntegrity,
    );
    let tampered = Request {
        header: SecurityHeader {
            protection: ProtectionLevel::DataIntegrity,
            nonce,
        },
        capability: Some(ep_cap.public.clone()),
        body,
        digest,
        data: Bytes::from_static(b"evil-byte"),
    };
    let (reply, _) = d.handle(&tampered);
    assert!(!reply.status.is_ok());
}

/// Working-key rotation revokes every capability minted under the old
/// key while leaving the other working key's capabilities intact.
#[test]
fn key_rotation_is_scoped_to_one_working_key() {
    let (mut d, obj) = drive_with_object();
    let gold_cap = d.issue_capability(P, obj, Rights::READ, 100);
    // Mint a black-key capability by hand.
    let black_cap = {
        let mut public = gold_cap.public.clone();
        public.key_kind = nasd::crypto::KeyKind::Black;
        let key = d.hierarchy().partition_keys(P.0, 0).black;
        public.mint(&key)
    };
    let gold_client = d.client(gold_cap);
    let black_client = d.client(black_cap);
    assert!(gold_client.read(&mut d, 0, 1).is_ok());
    assert!(black_client.read(&mut d, 0, 1).is_ok());

    // Rotate gold only.
    let req = d.setkey_request(
        P,
        nasd::crypto::KeyKind::Gold,
        &SecretKey::random_from(b"rot", 9),
    );
    let (reply, _) = d.handle(&req);
    assert!(reply.status.is_ok());

    assert_eq!(
        gold_client.read(&mut d, 0, 1).unwrap_err(),
        NasdStatus::AccessDenied
    );
    assert!(
        black_client.read(&mut d, 0, 1).is_ok(),
        "black key unaffected"
    );
}

/// A capability for one drive is worthless at another drive, even with
/// identical partitions and object names.
#[test]
fn capabilities_do_not_transfer_between_drives() {
    let mut d1 = NasdDrive::builder(1).build();
    let mut d2 = NasdDrive::builder(2).build();
    d1.admin_create_partition(P, 1 << 20).unwrap();
    d2.admin_create_partition(P, 1 << 20).unwrap();
    let o1 = d1.admin_create_object(P, 0).unwrap();
    let o2 = d2.admin_create_object(P, 0).unwrap();
    assert_eq!(o1, o2, "same name on both drives");

    let cap = d1.issue_capability(P, o1, Rights::READ, 100);
    let client = ClientHandle::new(9, cap);
    assert!(client.read(&mut d1, 0, 0).is_ok());
    assert_eq!(
        client.read(&mut d2, 0, 0).unwrap_err(),
        NasdStatus::AccessDenied
    );
}

/// The byte-range restriction holds at the edges (the AFS escrow
/// mechanism depends on exact enforcement).
#[test]
fn region_edges_enforced_exactly() {
    let (mut d, obj) = drive_with_object();
    let cap = d.issue_capability_region(
        P,
        obj,
        Rights::READ | Rights::WRITE,
        ByteRange::new(8, 16),
        100,
    );
    let c = d.client(cap);
    assert!(c.read(&mut d, 8, 8).is_ok());
    assert_eq!(
        c.read(&mut d, 7, 1).unwrap_err(),
        NasdStatus::RangeViolation
    );
    assert_eq!(
        c.read(&mut d, 8, 9).unwrap_err(),
        NasdStatus::RangeViolation
    );
    assert!(c.write(&mut d, 8, &[0u8; 8]).is_ok());
    assert_eq!(
        c.write(&mut d, 15, &[0u8; 2]).unwrap_err(),
        NasdStatus::RangeViolation
    );
}
