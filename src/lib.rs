//! Umbrella package for the NASD reproduction workspace.
//!
//! The real API lives in the [`nasd`] facade crate and the per-subsystem
//! crates (`nasd-object`, `nasd-fm`, `nasd-cheops`, ...). This package only
//! hosts the repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`).

#![forbid(unsafe_code)]

pub use nasd::*;
