//! Property tests for the cryptographic primitives.

use nasd_crypto::{ct_eq, hmac_sha256, HmacSha256, SecretKey, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over any chunking equals the one-shot digest.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        splits in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Same split-independence for HMAC.
    #[test]
    fn hmac_incremental_equals_oneshot(
        key in proptest::collection::vec(any::<u8>(), 0..128),
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cut in 0usize..2048,
    ) {
        let cut = cut % (data.len() + 1);
        let mut m = HmacSha256::new(&key);
        m.update(&data[..cut]);
        m.update(&data[cut..]);
        prop_assert_eq!(m.finalize(), hmac_sha256(&key, &data));
    }

    /// A single flipped bit anywhere in the message changes the digest
    /// (collision resistance smoke test).
    #[test]
    fn sha256_bit_flip_changes_digest(
        mut data in proptest::collection::vec(any::<u8>(), 1..512),
        pos in 0usize..512,
        bit in 0u8..8,
    ) {
        let pos = pos % data.len();
        let original = Sha256::digest(&data);
        data[pos] ^= 1 << bit;
        prop_assert_ne!(Sha256::digest(&data), original);
    }

    /// Constant-time equality agrees with ordinary equality.
    #[test]
    fn ct_eq_agrees_with_eq(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
        prop_assert!(ct_eq(&a, &a));
    }

    /// Key derivation is injective across labels (no observed collisions)
    /// and deterministic.
    #[test]
    fn derivation_deterministic_and_label_sensitive(
        seed: [u8; 32],
        label_a in proptest::collection::vec(any::<u8>(), 1..32),
        label_b in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let k = SecretKey::from_bytes(seed);
        prop_assert_eq!(k.derive(&label_a), k.derive(&label_a));
        if label_a != label_b {
            prop_assert_ne!(k.derive(&label_a), k.derive(&label_b));
        }
    }
}
