//! SHA-256 implemented from FIPS 180-4.

use std::fmt;

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// A 256-bit message digest.
///
/// # Example
///
/// ```
/// use nasd_crypto::Sha256;
/// let d = Sha256::digest(b"hello");
/// assert_eq!(d.as_bytes().len(), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// View the digest as raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consume the digest, returning the raw bytes.
    #[must_use]
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Render the digest as lowercase hex.
    ///
    /// # Example
    ///
    /// ```
    /// use nasd_crypto::Sha256;
    /// let hex = Sha256::digest(b"").to_hex();
    /// assert!(hex.starts_with("e3b0c442"));
    /// ```
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Fold the digest down to a `u64` (used for cheap fingerprints in
    /// tests and replay caches; not a security boundary).
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest is 32 bytes"))
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use nasd_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far, excluding what is buffered.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("bytes_hashed", &(self.len + self.buf_len as u64))
            .finish()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorb `data` into the hash state.
    // nasd-lint: allow(transitive-panic, "FIPS 180-4 fixed-block math: every slice is bounded by the 64-byte block invariant (buf_len < 64, data.len() >= 64 guards)")
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        // Fill the partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.len += 64;
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("sliced 64 bytes");
            self.compress(&block);
            self.len += 64;
            data = &data[64..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish hashing and produce the digest.
    #[must_use]
    // nasd-lint: allow(transitive-panic, "FIPS 180-4 fixed-block math: padding leaves buf_len at 56 and the 8-state words fill exactly 32 bytes")
    pub fn finalize(mut self) -> Digest {
        let bit_len = (self.len + self.buf_len as u64) * 8;
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Append the length by hand so `len` bookkeeping stays consistent.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Sha256::digest(input).to_hex(), *want);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha256::digest(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for chunk in [1usize, 3, 63, 64, 65, 127, 4096] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn digest_display_and_u64() {
        let d = Sha256::digest(b"abc");
        assert_eq!(format!("{d}").len(), 64);
        assert_eq!(d.to_u64(), 0xba7816bf8f01cfea);
    }

    #[test]
    fn boundary_lengths() {
        // Exercise the padding logic around the 55/56/64-byte boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }
}
