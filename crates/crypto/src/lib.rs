//! Cryptographic primitives for the NASD reproduction.
//!
//! The NASD security architecture (\[Gobioff97\], §4.1 of the paper) rests on
//! *keyed message digests*: capabilities carry a private field that is a MAC
//! of their public field under a drive secret, and every request carries a
//! digest keyed by that private field. The paper used DES-based constructions
//! (the hardware of the era); this reproduction uses HMAC-SHA-256, the
//! modern equivalent of the \[Bellare96\] keyed-hash construction the paper
//! cites.
//!
//! Everything here is implemented from the public specifications (FIPS 180-4
//! for SHA-256, RFC 2104 for HMAC) with no external dependencies, and tested
//! against the published test vectors.
//!
//! # Example
//!
//! ```
//! use nasd_crypto::{hmac_sha256, Sha256};
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest.to_hex()[..8], *"ba7816bf");
//!
//! let mac = hmac_sha256(b"key", b"message");
//! assert_eq!(mac.as_bytes().len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hmac;
mod keys;
mod sha256;

pub use hmac::{hmac_sha256, HmacSha256};
pub use keys::{DriveKeys, KeyHierarchy, KeyKind, SecretKey};
pub use sha256::{Digest, Sha256};

/// Constant-time equality comparison of two byte strings.
///
/// Returns `true` only when `a` and `b` have equal length and contents.
/// The comparison examines every byte regardless of where the first
/// difference occurs, so the running time leaks only the length — the
/// property a NASD drive needs when verifying request digests from
/// untrusted clients.
///
/// # Example
///
/// ```
/// assert!(nasd_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!nasd_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!nasd_crypto::ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"nasd", b"nasd"));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"nasd", b"nasx"));
        assert!(!ct_eq(b"aasd", b"nasd"));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(b"nasd", b"nas"));
        assert!(!ct_eq(b"", b"n"));
    }
}
