//! HMAC-SHA-256 per RFC 2104 / FIPS 198-1.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA-256.
///
/// NASD uses this construction in two places: the file manager MACs a
/// capability's public field to form its private field, and clients MAC each
/// request (keyed by the private field) to prove possession.
///
/// # Example
///
/// ```
/// use nasd_crypto::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"drive-secret");
/// mac.update(b"capability ");
/// mac.update(b"public field");
/// assert_eq!(mac.finalize(), hmac_sha256(b"drive-secret", b"capability public field"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Create an HMAC context for `key`.
    ///
    /// Keys longer than the 64-byte SHA-256 block are first hashed, per
    /// RFC 2104.
    #[must_use]
    // nasd-lint: allow(transitive-panic, "RFC 2104 fixed-block math: every index is bounded by the BLOCK and digest-size constants")
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(Sha256::digest(key).as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ IPAD;
            opad[i] = k[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and produce the MAC.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let inner_digest = self.inner.finalize();
        self.outer.update(inner_digest.as_bytes());
        self.outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
///
/// # Example
///
/// ```
/// let mac = nasd_crypto::hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert!(mac.to_hex().starts_with("f7bc83f4"));
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case4() {
        let key: Vec<u8> = (1..=25u8).collect();
        let data = [0xcdu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    /// RFC 4231 case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// RFC 4231 case 7: long key and long data.
    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than \
block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let mac = hmac_sha256(&key, data);
        assert_eq!(
            mac.to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"0123456789abcdef";
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut mac = HmacSha256::new(key);
        for c in data.chunks(37) {
            mac.update(c);
        }
        assert_eq!(mac.finalize(), hmac_sha256(key, &data));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn exactly_block_sized_key() {
        let key = [0x42u8; 64];
        // A 64-byte key is used as-is (not hashed): check against a key
        // padded with zeros, which must produce the same MAC.
        let mut padded = [0u8; 64];
        padded.copy_from_slice(&key);
        assert_eq!(hmac_sha256(&key, b"msg"), hmac_sha256(&padded, b"msg"));
        // And a 65-byte key is hashed first, producing a different MAC from
        // its 64-byte prefix.
        let long = [0x42u8; 65];
        assert_ne!(hmac_sha256(&long, b"msg"), hmac_sha256(&key, b"msg"));
    }
}
