//! The NASD four-level key hierarchy (\[Gobioff97\], §4.1).
//!
//! Keys are organized as:
//!
//! 1. **Master key** — held offline by the drive owner; used only to set
//!    the drive key (recovery path).
//! 2. **Drive key** — held by the drive administrator; manages partitions
//!    and sets partition keys.
//! 3. **Partition key** — held by the file manager owning a partition;
//!    used to set that partition's working keys.
//! 4. **Working keys** (two per partition, *gold* and *black*) — used in
//!    day-to-day capability construction. Two keys allow smooth rotation:
//!    new capabilities are minted under the newer key while outstanding
//!    capabilities under the other remain valid until it is replaced.
//!
//! Lower-numbered keys are used rarely; a compromise of a working key is
//! repaired by rotating it with the partition key, without touching other
//! partitions or the drive key. All child keys here are *derived* with
//! HMAC so tests are deterministic, but `SecretKey::random_from` supports
//! independently chosen keys as real deployments would use.

use crate::hmac::hmac_sha256;
use std::fmt;

/// Which working key a capability was minted under.
///
/// The paper (via \[Gobioff97\]) gives each partition two working keys so the
/// file manager can rotate one while capabilities minted under the other
/// stay verifiable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyKind {
    /// The "gold" working key.
    Gold,
    /// The "black" working key.
    Black,
}

impl KeyKind {
    /// Stable one-byte encoding used in wire messages.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            KeyKind::Gold => 0,
            KeyKind::Black => 1,
        }
    }

    /// Decode from the wire byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(KeyKind::Gold),
            1 => Some(KeyKind::Black),
            _ => None,
        }
    }
}

impl fmt::Display for KeyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyKind::Gold => f.write_str("gold"),
            KeyKind::Black => f.write_str("black"),
        }
    }
}

/// A 256-bit secret key.
///
/// `Debug` deliberately redacts the key material.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey([u8; 32]);

impl SecretKey {
    /// Construct from raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    /// Derive a child key as `HMAC(self, label)`.
    ///
    /// # Example
    ///
    /// ```
    /// use nasd_crypto::SecretKey;
    /// let master = SecretKey::from_bytes([7u8; 32]);
    /// let drive = master.derive(b"drive:42");
    /// assert_ne!(drive, master.derive(b"drive:43"));
    /// ```
    #[must_use]
    pub fn derive(&self, label: &[u8]) -> SecretKey {
        SecretKey(hmac_sha256(&self.0, label).into_bytes())
    }

    /// Derive a key from a seed and counter — a tiny deterministic PRF used
    /// where deployments would use an RNG.
    #[must_use]
    pub fn random_from(seed: &[u8], counter: u64) -> SecretKey {
        SecretKey(hmac_sha256(seed, &counter.to_be_bytes()).into_bytes())
    }

    /// View the raw key bytes. Needed by the MAC layer only.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// MAC `message` under this key.
    #[must_use]
    pub fn mac(&self, message: &[u8]) -> crate::Digest {
        hmac_sha256(&self.0, message)
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// The working keys a drive holds for one partition.
#[derive(Clone, Debug)]
pub struct DriveKeys {
    /// Partition-level key (level 3).
    pub partition: SecretKey,
    /// Gold working key (level 4).
    pub gold: SecretKey,
    /// Black working key (level 4).
    pub black: SecretKey,
}

impl DriveKeys {
    /// Select a working key by kind.
    #[must_use]
    pub fn working(&self, kind: KeyKind) -> &SecretKey {
        match kind {
            KeyKind::Gold => &self.gold,
            KeyKind::Black => &self.black,
        }
    }

    /// Replace one working key (capability revocation en masse for that
    /// key's outstanding capabilities).
    pub fn set_working(&mut self, kind: KeyKind, key: SecretKey) {
        match kind {
            KeyKind::Gold => self.gold = key,
            KeyKind::Black => self.black = key,
        }
    }
}

/// A complete key hierarchy for one drive, as the *file manager / owner*
/// sees it. The drive itself stores only the per-partition [`DriveKeys`]
/// plus its drive key.
#[derive(Clone, Debug)]
pub struct KeyHierarchy {
    master: SecretKey,
    drive: SecretKey,
}

impl KeyHierarchy {
    /// Build the hierarchy for `drive_id` from a master key.
    #[must_use]
    pub fn new(master: SecretKey, drive_id: u64) -> Self {
        let drive = master.derive(format!("nasd:drive:{drive_id}").as_bytes());
        KeyHierarchy { master, drive }
    }

    /// The master key (level 1).
    #[must_use]
    pub fn master(&self) -> &SecretKey {
        &self.master
    }

    /// The drive key (level 2).
    #[must_use]
    pub fn drive(&self) -> &SecretKey {
        &self.drive
    }

    /// Derive the level-3/level-4 keys for a partition, at working-key
    /// generation `gen`. Bumping `gen` models working-key rotation.
    #[must_use]
    pub fn partition_keys(&self, partition_id: u16, gen: u64) -> DriveKeys {
        let partition = self
            .drive
            .derive(format!("nasd:part:{partition_id}").as_bytes());
        let gold = partition.derive(format!("nasd:work:gold:{gen}").as_bytes());
        let black = partition.derive(format!("nasd:work:black:{gen}").as_bytes());
        DriveKeys {
            partition,
            gold,
            black,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> KeyHierarchy {
        KeyHierarchy::new(SecretKey::from_bytes([1u8; 32]), 7)
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = hierarchy().partition_keys(3, 0);
        let b = hierarchy().partition_keys(3, 0);
        assert_eq!(a.gold, b.gold);
        assert_eq!(a.black, b.black);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn partitions_are_isolated() {
        let h = hierarchy();
        let p3 = h.partition_keys(3, 0);
        let p4 = h.partition_keys(4, 0);
        assert_ne!(p3.partition, p4.partition);
        assert_ne!(p3.gold, p4.gold);
        assert_ne!(p3.black, p4.black);
    }

    #[test]
    fn rotation_changes_working_keys_only() {
        let h = hierarchy();
        let g0 = h.partition_keys(3, 0);
        let g1 = h.partition_keys(3, 1);
        assert_eq!(g0.partition, g1.partition);
        assert_ne!(g0.gold, g1.gold);
        assert_ne!(g0.black, g1.black);
    }

    #[test]
    fn gold_and_black_differ() {
        let keys = hierarchy().partition_keys(0, 0);
        assert_ne!(keys.gold, keys.black);
        assert_eq!(keys.working(KeyKind::Gold), &keys.gold);
        assert_eq!(keys.working(KeyKind::Black), &keys.black);
    }

    #[test]
    fn drives_are_isolated() {
        let master = SecretKey::from_bytes([1u8; 32]);
        let d7 = KeyHierarchy::new(master.clone(), 7);
        let d8 = KeyHierarchy::new(master, 8);
        assert_ne!(d7.drive(), d8.drive());
        assert_eq!(d7.master(), d8.master());
    }

    #[test]
    fn set_working_replaces_key() {
        let mut keys = hierarchy().partition_keys(1, 0);
        let new = SecretKey::random_from(b"seed", 1);
        keys.set_working(KeyKind::Black, new.clone());
        assert_eq!(keys.working(KeyKind::Black), &new);
        assert_ne!(keys.working(KeyKind::Gold), &new);
    }

    #[test]
    fn key_kind_wire_roundtrip() {
        for kind in [KeyKind::Gold, KeyKind::Black] {
            assert_eq!(KeyKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(KeyKind::from_byte(9), None);
    }

    #[test]
    fn debug_redacts() {
        let k = SecretKey::from_bytes([9u8; 32]);
        assert!(!format!("{k:?}").contains('9'));
    }

    #[test]
    fn mac_is_hmac() {
        let k = SecretKey::from_bytes([2u8; 32]);
        assert_eq!(k.mac(b"m"), crate::hmac_sha256(k.as_bytes(), b"m"));
    }
}
