//! Property tests: every protocol message round-trips through the
//! canonical wire encoding, and capabilities sign/verify consistently.

use bytes::Bytes;
use nasd_crypto::{Digest, KeyKind, SecretKey};
use nasd_proto::wire::{WireDecode, WireEncode};
use nasd_proto::{
    ByteRange, CapabilityPublic, DriveId, NasdStatus, Nonce, ObjectAttributes, ObjectId,
    PartitionId, ProtectionLevel, Reply, ReplyBody, Request, RequestBody, RequestDigest, Rights,
    SecurityHeader, SetAttrMask, Version, FS_SPECIFIC_ATTR_LEN,
};
use proptest::prelude::*;

fn arb_rights() -> impl Strategy<Value = Rights> {
    (0u16..=0xff).prop_map(|b| Rights::from_bits(b).expect("valid bits"))
}

fn arb_range() -> impl Strategy<Value = ByteRange> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| ByteRange::new(a.min(b), a.max(b)))
}

fn arb_body() -> impl Strategy<Value = RequestBody> {
    let p = any::<u16>().prop_map(PartitionId);
    let o = any::<u64>().prop_map(ObjectId);
    prop_oneof![
        (p.clone(), o.clone(), any::<u64>(), any::<u64>()).prop_map(
            |(partition, object, offset, len)| {
                RequestBody::Read {
                    partition,
                    object,
                    offset,
                    len,
                }
            }
        ),
        (p.clone(), o.clone(), any::<u64>(), any::<u64>()).prop_map(
            |(partition, object, offset, len)| {
                RequestBody::Write {
                    partition,
                    object,
                    offset,
                    len,
                }
            }
        ),
        (p.clone(), o.clone(), any::<u64>()).prop_map(|(partition, object, len)| {
            RequestBody::Append {
                partition,
                object,
                len,
            }
        }),
        (p.clone(), o.clone())
            .prop_map(|(partition, object)| RequestBody::GetAttr { partition, object }),
        (p.clone(), o.clone())
            .prop_map(|(partition, object)| RequestBody::Remove { partition, object }),
        (p.clone(), o.clone())
            .prop_map(|(partition, object)| RequestBody::Snapshot { partition, object }),
        (p.clone(), o.clone())
            .prop_map(|(partition, object)| RequestBody::Flush { partition, object }),
        (p.clone(), any::<u64>(), proptest::option::of(any::<u64>())).prop_map(
            |(partition, preallocate, cluster)| RequestBody::Create {
                partition,
                preallocate,
                cluster_with: cluster.map(ObjectId),
            }
        ),
        (p.clone(), o.clone(), any::<u64>()).prop_map(|(partition, object, new_size)| {
            RequestBody::Resize {
                partition,
                object,
                new_size,
            }
        }),
        (p.clone(), any::<u64>())
            .prop_map(|(partition, quota)| RequestBody::CreatePartition { partition, quota }),
        (p.clone(), any::<u64>())
            .prop_map(|(partition, quota)| RequestBody::ResizePartition { partition, quota }),
        p.clone()
            .prop_map(|partition| RequestBody::RemovePartition { partition }),
        p.clone()
            .prop_map(|partition| RequestBody::ListObjects { partition }),
        (
            p.clone(),
            o,
            (0u8..16).prop_map(|b| SetAttrMask {
                fs_specific: b & 1 != 0,
                preallocated: b & 2 != 0,
                cluster_with: b & 4 != 0,
                bump_version: b & 8 != 0,
            }),
            any::<u8>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
        )
            .prop_map(|(partition, object, mask, fill, preallocated, cluster)| {
                RequestBody::SetAttr {
                    partition,
                    object,
                    mask,
                    fs_specific: Box::new([fill; FS_SPECIFIC_ATTR_LEN]),
                    preallocated,
                    cluster_with: cluster.map(ObjectId),
                }
            }),
        (p, proptest::collection::vec(any::<u8>(), 32..33)).prop_map(|(partition, key)| {
            RequestBody::SetKey {
                partition,
                kind: KeyKind::Black,
                wrapped_key: key,
            }
        }),
    ]
}

fn arb_capability() -> impl Strategy<Value = CapabilityPublic> {
    (
        any::<u64>(),
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        arb_rights(),
        arb_range(),
        any::<u64>(),
        any::<bool>(),
        0u8..3,
    )
        .prop_map(
            |(drive, partition, object, version, rights, region, expires, gold, prot)| {
                CapabilityPublic {
                    drive: DriveId(drive),
                    partition: PartitionId(partition),
                    object: ObjectId(object),
                    version: Version(version),
                    rights,
                    region,
                    expires,
                    key_kind: if gold { KeyKind::Gold } else { KeyKind::Black },
                    min_protection: match prot {
                        0 => ProtectionLevel::ArgsIntegrity,
                        1 => ProtectionLevel::DataIntegrity,
                        _ => ProtectionLevel::Privacy,
                    },
                }
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..3,
        (any::<u64>(), any::<u64>()),
        proptest::option::of(arb_capability()),
        arb_body(),
        any::<[u8; 32]>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(prot, nonce, capability, body, digest, data)| Request {
            header: SecurityHeader {
                protection: match prot {
                    0 => ProtectionLevel::ArgsIntegrity,
                    1 => ProtectionLevel::DataIntegrity,
                    _ => ProtectionLevel::Privacy,
                },
                nonce: Nonce::new(nonce.0, nonce.1),
            },
            capability,
            body,
            digest: RequestDigest(Digest::from(digest)),
            data: Bytes::from(data),
        })
}

fn arb_attrs() -> impl Strategy<Value = ObjectAttributes> {
    (
        any::<u64>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<u8>(),
    )
        .prop_map(
            |(size, preallocated, times, version, cluster, fill)| ObjectAttributes {
                size,
                preallocated,
                create_time: times.0,
                data_modify_time: times.1,
                attr_modify_time: times.2,
                access_time: times.3,
                version: Version(version),
                cluster_with: cluster.map(ObjectId),
                fs_specific: Box::new([fill; FS_SPECIFIC_ATTR_LEN]),
            },
        )
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    let status = (0u8..11).prop_map(|b| NasdStatus::from_wire(&[b]).expect("valid status byte"));
    let body = prop_oneof![
        Just(ReplyBody::Empty),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| ReplyBody::Data(bytes::ByteRope::from(v))),
        arb_attrs().prop_map(ReplyBody::Attr),
        any::<u64>().prop_map(|o| ReplyBody::Created(ObjectId(o))),
        any::<u64>().prop_map(ReplyBody::Written),
        proptest::collection::vec(any::<u64>(), 0..20)
            .prop_map(|v| ReplyBody::Objects(v.into_iter().map(ObjectId).collect())),
    ];
    (status, body).prop_map(|(status, body)| Reply { status, body })
}

proptest! {
    #[test]
    fn request_bodies_roundtrip(body in arb_body()) {
        let decoded = RequestBody::from_wire(&body.to_wire()).unwrap();
        prop_assert_eq!(decoded, body);
    }

    #[test]
    fn capabilities_roundtrip(cap in arb_capability()) {
        let decoded = CapabilityPublic::from_wire(&cap.to_wire()).unwrap();
        prop_assert_eq!(decoded, cap);
    }

    /// Sign/verify consistency: the digest a holder computes matches the
    /// digest the validator recomputes, for any capability and message —
    /// and differs for any other nonce.
    #[test]
    fn sign_verify_consistency(
        cap in arb_capability(),
        key: [u8; 32],
        args in proptest::collection::vec(any::<u8>(), 0..128),
        nonce in (any::<u64>(), any::<u64>()),
    ) {
        let secret = SecretKey::from_bytes(key);
        let minted = cap.clone().mint(&secret);
        let n = Nonce::new(nonce.0, nonce.1);
        let d1 = minted.sign_request(n, &args);

        // Validator side: recompute the private field from the public
        // portion that crossed the wire.
        let wired = CapabilityPublic::from_wire(&cap.to_wire()).unwrap();
        let revalidated = wired.mint(&secret);
        prop_assert!(d1.verify(&revalidated.sign_request(n, &args)));

        let other = Nonce::new(nonce.0, nonce.1.wrapping_add(1));
        prop_assert!(!d1.verify(&revalidated.sign_request(other, &args)));
    }

    /// Full request messages round-trip, and every strict prefix of the
    /// encoding fails to decode — cleanly, never by panicking.
    #[test]
    fn truncated_requests_error_cleanly(req in arb_request(), cut in any::<u64>()) {
        let wire = req.to_wire();
        prop_assert_eq!(Request::from_wire(&wire).unwrap(), req);
        let cut = (cut % wire.len() as u64) as usize;
        prop_assert!(Request::from_wire(&wire[..cut]).is_err());
    }

    /// Same for replies: round-trip plus clean truncation failures.
    #[test]
    fn truncated_replies_error_cleanly(reply in arb_reply(), cut in any::<u64>()) {
        let wire = reply.to_wire();
        prop_assert_eq!(Reply::from_wire(&wire).unwrap(), reply);
        let cut = (cut % wire.len() as u64) as usize;
        prop_assert!(Reply::from_wire(&wire[..cut]).is_err());
    }

    /// The zero-copy shared-buffer decoders agree with the borrowed ones
    /// on every message, and Data payloads come out as O(1) views of the
    /// receive buffer rather than fresh copies.
    #[test]
    fn shared_decode_matches_borrowed(req in arb_request(), reply in arb_reply()) {
        let req_buf = Bytes::from(req.to_wire());
        prop_assert_eq!(Request::from_wire_shared(req_buf).unwrap(), req);

        let reply_buf = Bytes::from(reply.to_wire());
        let before = bytes::stats::bytes_copied();
        let decoded = Reply::from_wire_shared(reply_buf).unwrap();
        prop_assert_eq!(
            bytes::stats::bytes_copied(), before,
            "shared reply decode must not copy payload bytes"
        );
        prop_assert_eq!(decoded, reply);
    }

    /// A single flipped bit anywhere in a request either fails to decode
    /// or decodes to a message that re-encodes to exactly the corrupted
    /// bytes (every byte is load-bearing; nothing is silently ignored).
    /// Either way, no panic.
    #[test]
    fn bitflipped_requests_never_panic(
        req in arb_request(),
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut wire = req.to_wire();
        let i = (byte % wire.len() as u64) as usize;
        wire[i] ^= 1 << bit;
        if let Ok(decoded) = Request::from_wire(&wire) {
            prop_assert_eq!(decoded.to_wire(), wire);
        }
    }

    /// Same single-bit-flip contract for replies.
    #[test]
    fn bitflipped_replies_never_panic(
        reply in arb_reply(),
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut wire = reply.to_wire();
        let i = (byte % wire.len() as u64) as usize;
        wire[i] ^= 1 << bit;
        if let Ok(decoded) = Reply::from_wire(&wire) {
            prop_assert_eq!(decoded.to_wire(), wire);
        }
    }

    /// Arbitrary garbage fed to the decoders must error, not panic (and
    /// corrupt length prefixes must not force huge allocations).
    #[test]
    fn garbage_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::from_wire(&buf);
        let _ = Reply::from_wire(&buf);
        let _ = RequestBody::from_wire(&buf);
        let _ = CapabilityPublic::from_wire(&buf);
    }
}
