//! Per-object attributes (§4.1).
//!
//! NASD objects carry attributes maintained by the drive (size, timestamps,
//! version) plus an *uninterpreted* block the file manager uses for its own
//! long-term state — "such as filesystem access control lists or mode bits".
//! Attributes also carry the preallocation / clustering hints the paper
//! borrows from the Logical Disk work \[deJonge93\].

use crate::ids::{ObjectId, Version};
use crate::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};

/// Size of the filesystem-specific uninterpreted attribute block.
pub const FS_SPECIFIC_ATTR_LEN: usize = 256;

/// Attributes of a NASD object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectAttributes {
    /// Logical size of the object in bytes.
    pub size: u64,
    /// Bytes of capacity reserved for the object beyond its size.
    pub preallocated: u64,
    /// Creation time (drive clock, seconds).
    pub create_time: u64,
    /// Last data modification time.
    pub data_modify_time: u64,
    /// Last attribute modification time.
    pub attr_modify_time: u64,
    /// Last access time.
    pub access_time: u64,
    /// Logical version number; bumping it revokes capabilities.
    pub version: Version,
    /// Clustering hint: lay this object out near the named object.
    pub cluster_with: Option<ObjectId>,
    /// Uninterpreted filesystem-specific state (exactly
    /// [`FS_SPECIFIC_ATTR_LEN`] bytes).
    pub fs_specific: Box<[u8; FS_SPECIFIC_ATTR_LEN]>,
}

impl Default for ObjectAttributes {
    fn default() -> Self {
        ObjectAttributes {
            size: 0,
            preallocated: 0,
            create_time: 0,
            data_modify_time: 0,
            attr_modify_time: 0,
            access_time: 0,
            version: Version(0),
            cluster_with: None,
            fs_specific: Box::new([0u8; FS_SPECIFIC_ATTR_LEN]),
        }
    }
}

impl ObjectAttributes {
    /// Fresh attributes for an object created at `now`.
    #[must_use]
    pub fn new_at(now: u64) -> Self {
        ObjectAttributes {
            create_time: now,
            data_modify_time: now,
            attr_modify_time: now,
            access_time: now,
            ..ObjectAttributes::default()
        }
    }
}

/// Selects which client-settable attributes a `SetAttr` request updates.
///
/// Drive-maintained fields (size, timestamps, version) are never directly
/// client-writable; "commands that may impact policy decisions ... must go
/// through the file manager" (§5.1), which holds a SETATTR capability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetAttrMask {
    /// Update the filesystem-specific block.
    pub fs_specific: bool,
    /// Update the preallocation reservation.
    pub preallocated: bool,
    /// Update the clustering hint.
    pub cluster_with: bool,
    /// Bump the logical version number (capability revocation).
    pub bump_version: bool,
}

impl SetAttrMask {
    /// Mask selecting only the filesystem-specific block.
    #[must_use]
    pub fn fs_specific_only() -> Self {
        SetAttrMask {
            fs_specific: true,
            ..SetAttrMask::default()
        }
    }

    /// Mask selecting only a version bump.
    #[must_use]
    pub fn bump_version_only() -> Self {
        SetAttrMask {
            bump_version: true,
            ..SetAttrMask::default()
        }
    }

    fn to_byte(self) -> u8 {
        u8::from(self.fs_specific)
            | u8::from(self.preallocated) << 1
            | u8::from(self.cluster_with) << 2
            | u8::from(self.bump_version) << 3
    }

    fn from_byte(b: u8) -> Option<Self> {
        if b & !0x0f != 0 {
            return None;
        }
        Some(SetAttrMask {
            fs_specific: b & 1 != 0,
            preallocated: b & 2 != 0,
            cluster_with: b & 4 != 0,
            bump_version: b & 8 != 0,
        })
    }
}

impl WireEncode for SetAttrMask {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.to_byte());
    }
}

impl WireDecode for SetAttrMask {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let b = r.u8()?;
        SetAttrMask::from_byte(b).ok_or(DecodeError::BadTag {
            context: "setattr mask",
            value: u64::from(b),
        })
    }
}

impl WireEncode for ObjectAttributes {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.size)
            .u64(self.preallocated)
            .u64(self.create_time)
            .u64(self.data_modify_time)
            .u64(self.attr_modify_time)
            .u64(self.access_time);
        self.version.encode(w);
        match self.cluster_with {
            Some(id) => {
                w.u8(1);
                id.encode(w);
            }
            None => {
                w.u8(0);
            }
        }
        w.raw(self.fs_specific.as_slice());
    }
}

impl WireDecode for ObjectAttributes {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let size = r.u64()?;
        let preallocated = r.u64()?;
        let create_time = r.u64()?;
        let data_modify_time = r.u64()?;
        let attr_modify_time = r.u64()?;
        let access_time = r.u64()?;
        let version = Version::decode(r)?;
        let cluster_with = match r.u8()? {
            0 => None,
            1 => Some(ObjectId::decode(r)?),
            v => {
                return Err(DecodeError::BadTag {
                    context: "cluster_with option",
                    value: u64::from(v),
                })
            }
        };
        let raw = r.raw(FS_SPECIFIC_ATTR_LEN)?;
        let mut fs_specific = Box::new([0u8; FS_SPECIFIC_ATTR_LEN]);
        fs_specific.copy_from_slice(raw);
        Ok(ObjectAttributes {
            size,
            preallocated,
            create_time,
            data_modify_time,
            attr_modify_time,
            access_time,
            version,
            cluster_with,
            fs_specific,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireDecode, WireEncode};

    #[test]
    fn attributes_wire_roundtrip() {
        let mut a = ObjectAttributes::new_at(1234);
        a.size = 4096;
        a.preallocated = 8192;
        a.version = Version(3);
        a.cluster_with = Some(ObjectId(77));
        a.fs_specific[0] = 0xaa;
        a.fs_specific[255] = 0xbb;
        let decoded = ObjectAttributes::from_wire(&a.to_wire()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn attributes_default_roundtrip() {
        let a = ObjectAttributes::default();
        assert_eq!(ObjectAttributes::from_wire(&a.to_wire()).unwrap(), a);
    }

    #[test]
    fn new_at_sets_timestamps() {
        let a = ObjectAttributes::new_at(99);
        assert_eq!(a.create_time, 99);
        assert_eq!(a.data_modify_time, 99);
        assert_eq!(a.attr_modify_time, 99);
        assert_eq!(a.access_time, 99);
        assert_eq!(a.size, 0);
    }

    #[test]
    fn setattr_mask_roundtrip() {
        for b in 0..16u8 {
            let m = SetAttrMask::from_byte(b).unwrap();
            assert_eq!(SetAttrMask::from_wire(&m.to_wire()).unwrap(), m);
        }
        assert_eq!(SetAttrMask::from_byte(0x10), None);
    }

    #[test]
    fn mask_constructors() {
        assert!(SetAttrMask::fs_specific_only().fs_specific);
        assert!(!SetAttrMask::fs_specific_only().bump_version);
        assert!(SetAttrMask::bump_version_only().bump_version);
    }

    #[test]
    fn bad_cluster_tag_rejected() {
        let mut a = ObjectAttributes::default().to_wire();
        // The option tag sits right after 6 u64s + version (7 * 8 bytes).
        a[56] = 9;
        assert!(ObjectAttributes::from_wire(&a).is_err());
    }
}
