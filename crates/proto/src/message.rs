//! Request and reply messages of the NASD drive interface (§4.1).
//!
//! The interface is deliberately small — under 20 requests. Bulk data is
//! carried separately from the request arguments so the *request digest*
//! (always required) covers the arguments and nonce, while covering the
//! data is the optional, more expensive `DataIntegrity` mode (Figure 5).

use crate::attr::{ObjectAttributes, SetAttrMask, FS_SPECIFIC_ATTR_LEN};
use crate::capability::{CapabilityPublic, RequestDigest, SecurityHeader};
use crate::ids::{ObjectId, PartitionId};
use crate::status::NasdStatus;
use crate::wire::{DecodeError, OwnedReader, WireDecode, WireEncode, WireReader, WireWriter};
use bytes::{ByteRope, Bytes};
use nasd_crypto::KeyKind;

/// Object id of the well-known per-partition object listing all allocated
/// object names ("a complete list of allocated object names", §4.1).
pub const WELL_KNOWN_OBJECT_LIST: ObjectId = ObjectId(1);

/// Arguments of a drive request (everything except bulk data).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestBody {
    /// Read `len` bytes of object data at `offset`.
    Read {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to read.
        object: ObjectId,
        /// Starting byte offset.
        offset: u64,
        /// Number of bytes to read.
        len: u64,
    },
    /// Write the accompanying data at `offset` (length is the data length).
    Write {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to write.
        object: ObjectId,
        /// Starting byte offset.
        offset: u64,
        /// Length of the bulk data that accompanies this request.
        len: u64,
    },
    /// Append the accompanying data at the object's current end of data
    /// (length is the data length). The drive chooses the offset, so
    /// concurrent appenders never race a read-modify-write cycle — the
    /// primitive a shared append-only log (e.g. a dedup chunk pack)
    /// needs. The reply reports the offset where the data landed.
    Append {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to append to.
        object: ObjectId,
        /// Length of the bulk data that accompanies this request.
        len: u64,
    },
    /// Read object attributes.
    GetAttr {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object whose attributes to read.
        object: ObjectId,
    },
    /// Write client-settable attributes selected by `mask`.
    SetAttr {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object whose attributes to update.
        object: ObjectId,
        /// Which fields to update.
        mask: SetAttrMask,
        /// New filesystem-specific block (used when `mask.fs_specific`).
        fs_specific: Box<[u8; FS_SPECIFIC_ATTR_LEN]>,
        /// New preallocation reservation (when `mask.preallocated`).
        preallocated: u64,
        /// New clustering hint (when `mask.cluster_with`).
        cluster_with: Option<ObjectId>,
    },
    /// Create a new object; the drive assigns the name.
    Create {
        /// Partition to create in.
        partition: PartitionId,
        /// Capacity to reserve up front (bytes).
        preallocate: u64,
        /// Optional clustering hint.
        cluster_with: Option<ObjectId>,
    },
    /// Remove an object and free its space.
    Remove {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to remove.
        object: ObjectId,
    },
    /// Truncate or extend object data to `new_size`.
    Resize {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to resize.
        object: ObjectId,
        /// New logical size in bytes.
        new_size: u64,
    },
    /// Construct a copy-on-write version of the object (§4.1).
    Snapshot {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to version.
        object: ObjectId,
    },
    /// Flush write-behind data for an object to media.
    Flush {
        /// Partition holding the object.
        partition: PartitionId,
        /// Object to flush.
        object: ObjectId,
    },
    /// Create a soft partition with a capacity quota.
    CreatePartition {
        /// New partition id.
        partition: PartitionId,
        /// Capacity quota in bytes.
        quota: u64,
    },
    /// Change a partition's quota (may not shrink below usage).
    ResizePartition {
        /// Partition to resize.
        partition: PartitionId,
        /// New capacity quota in bytes.
        quota: u64,
    },
    /// Remove an empty partition.
    RemovePartition {
        /// Partition to remove.
        partition: PartitionId,
    },
    /// List allocated object names in a partition (reads the well-known
    /// object-list object).
    ListObjects {
        /// Partition to list.
        partition: PartitionId,
    },
    /// Replace a working key for a partition. Authorized by the partition
    /// key, not a capability; `wrapped_key` is the new key protected under
    /// the parent key.
    SetKey {
        /// Partition whose working key changes.
        partition: PartitionId,
        /// Which working key to replace.
        kind: KeyKind,
        /// New key material (32 bytes, wrapped by the secure channel).
        wrapped_key: Vec<u8>,
    },
}

impl RequestBody {
    /// Partition the request addresses.
    #[must_use]
    pub fn partition(&self) -> PartitionId {
        match self {
            RequestBody::Read { partition, .. }
            | RequestBody::Write { partition, .. }
            | RequestBody::Append { partition, .. }
            | RequestBody::GetAttr { partition, .. }
            | RequestBody::SetAttr { partition, .. }
            | RequestBody::Create { partition, .. }
            | RequestBody::Remove { partition, .. }
            | RequestBody::Resize { partition, .. }
            | RequestBody::Snapshot { partition, .. }
            | RequestBody::Flush { partition, .. }
            | RequestBody::CreatePartition { partition, .. }
            | RequestBody::ResizePartition { partition, .. }
            | RequestBody::RemovePartition { partition }
            | RequestBody::ListObjects { partition }
            | RequestBody::SetKey { partition, .. } => *partition,
        }
    }

    /// Object the request addresses, if it names one.
    #[must_use]
    pub fn object(&self) -> Option<ObjectId> {
        match self {
            RequestBody::Read { object, .. }
            | RequestBody::Write { object, .. }
            | RequestBody::Append { object, .. }
            | RequestBody::GetAttr { object, .. }
            | RequestBody::SetAttr { object, .. }
            | RequestBody::Remove { object, .. }
            | RequestBody::Resize { object, .. }
            | RequestBody::Snapshot { object, .. }
            | RequestBody::Flush { object, .. } => Some(*object),
            _ => None,
        }
    }

    /// Whether the request mutates drive state.
    ///
    /// This is the mutation matrix the fault-injection layer keys on: a
    /// mutating request that was acknowledged must survive a crash
    /// (durable write-behind), while a non-mutating one may always be
    /// re-issued. nasd-lint (rule W1) verifies every variant is listed
    /// here, so a new request kind cannot silently default to either
    /// behaviour.
    #[must_use]
    pub fn mutates(&self) -> bool {
        match self {
            RequestBody::Read { .. }
            | RequestBody::GetAttr { .. }
            | RequestBody::ListObjects { .. } => false,
            RequestBody::Write { .. }
            | RequestBody::Append { .. }
            | RequestBody::SetAttr { .. }
            | RequestBody::Create { .. }
            | RequestBody::Remove { .. }
            | RequestBody::Resize { .. }
            | RequestBody::Snapshot { .. }
            | RequestBody::Flush { .. }
            | RequestBody::CreatePartition { .. }
            | RequestBody::ResizePartition { .. }
            | RequestBody::RemovePartition { .. }
            | RequestBody::SetKey { .. } => true,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            RequestBody::Read { .. } => 0,
            RequestBody::Write { .. } => 1,
            RequestBody::GetAttr { .. } => 2,
            RequestBody::SetAttr { .. } => 3,
            RequestBody::Create { .. } => 4,
            RequestBody::Remove { .. } => 5,
            RequestBody::Resize { .. } => 6,
            RequestBody::Snapshot { .. } => 7,
            RequestBody::Flush { .. } => 8,
            RequestBody::CreatePartition { .. } => 9,
            RequestBody::ResizePartition { .. } => 10,
            RequestBody::RemovePartition { .. } => 11,
            RequestBody::ListObjects { .. } => 12,
            RequestBody::SetKey { .. } => 13,
            RequestBody::Append { .. } => 14,
        }
    }
}

impl WireEncode for RequestBody {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.tag());
        match self {
            RequestBody::Read {
                partition,
                object,
                offset,
                len,
            }
            | RequestBody::Write {
                partition,
                object,
                offset,
                len,
            } => {
                partition.encode(w);
                object.encode(w);
                w.u64(*offset).u64(*len);
            }
            RequestBody::GetAttr { partition, object }
            | RequestBody::Remove { partition, object }
            | RequestBody::Snapshot { partition, object }
            | RequestBody::Flush { partition, object } => {
                partition.encode(w);
                object.encode(w);
            }
            RequestBody::SetAttr {
                partition,
                object,
                mask,
                fs_specific,
                preallocated,
                cluster_with,
            } => {
                partition.encode(w);
                object.encode(w);
                mask.encode(w);
                w.raw(fs_specific.as_slice());
                w.u64(*preallocated);
                match cluster_with {
                    Some(id) => {
                        w.u8(1);
                        id.encode(w);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
            RequestBody::Create {
                partition,
                preallocate,
                cluster_with,
            } => {
                partition.encode(w);
                w.u64(*preallocate);
                match cluster_with {
                    Some(id) => {
                        w.u8(1);
                        id.encode(w);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
            RequestBody::Resize {
                partition,
                object,
                new_size,
            } => {
                partition.encode(w);
                object.encode(w);
                w.u64(*new_size);
            }
            RequestBody::CreatePartition { partition, quota }
            | RequestBody::ResizePartition { partition, quota } => {
                partition.encode(w);
                w.u64(*quota);
            }
            RequestBody::RemovePartition { partition } | RequestBody::ListObjects { partition } => {
                partition.encode(w);
            }
            RequestBody::SetKey {
                partition,
                kind,
                wrapped_key,
            } => {
                partition.encode(w);
                w.u8(kind.to_byte());
                w.bytes(wrapped_key);
            }
            RequestBody::Append {
                partition,
                object,
                len,
            } => {
                partition.encode(w);
                object.encode(w);
                w.u64(*len);
            }
        }
    }
}

impl WireDecode for RequestBody {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let tag = r.u8()?;
        let body = match tag {
            0 | 1 => {
                let partition = PartitionId::decode(r)?;
                let object = ObjectId::decode(r)?;
                let offset = r.u64()?;
                let len = r.u64()?;
                if tag == 0 {
                    RequestBody::Read {
                        partition,
                        object,
                        offset,
                        len,
                    }
                } else {
                    RequestBody::Write {
                        partition,
                        object,
                        offset,
                        len,
                    }
                }
            }
            2 | 5 | 7 | 8 => {
                let partition = PartitionId::decode(r)?;
                let object = ObjectId::decode(r)?;
                match tag {
                    2 => RequestBody::GetAttr { partition, object },
                    5 => RequestBody::Remove { partition, object },
                    7 => RequestBody::Snapshot { partition, object },
                    _ => RequestBody::Flush { partition, object },
                }
            }
            3 => {
                let partition = PartitionId::decode(r)?;
                let object = ObjectId::decode(r)?;
                let mask = SetAttrMask::decode(r)?;
                let raw = r.raw(FS_SPECIFIC_ATTR_LEN)?;
                let mut fs_specific = Box::new([0u8; FS_SPECIFIC_ATTR_LEN]);
                // nasd-lint: allow(hot-path-copy, "fixed-size fs-specific attribute block, not payload")
                fs_specific.copy_from_slice(raw);
                let preallocated = r.u64()?;
                let cluster_with = match r.u8()? {
                    0 => None,
                    1 => Some(ObjectId::decode(r)?),
                    v => {
                        return Err(DecodeError::BadTag {
                            context: "cluster_with option",
                            value: u64::from(v),
                        })
                    }
                };
                RequestBody::SetAttr {
                    partition,
                    object,
                    mask,
                    fs_specific,
                    preallocated,
                    cluster_with,
                }
            }
            4 => {
                let partition = PartitionId::decode(r)?;
                let preallocate = r.u64()?;
                let cluster_with = match r.u8()? {
                    0 => None,
                    1 => Some(ObjectId::decode(r)?),
                    v => {
                        return Err(DecodeError::BadTag {
                            context: "cluster_with option",
                            value: u64::from(v),
                        })
                    }
                };
                RequestBody::Create {
                    partition,
                    preallocate,
                    cluster_with,
                }
            }
            6 => RequestBody::Resize {
                partition: PartitionId::decode(r)?,
                object: ObjectId::decode(r)?,
                new_size: r.u64()?,
            },
            9 => RequestBody::CreatePartition {
                partition: PartitionId::decode(r)?,
                quota: r.u64()?,
            },
            10 => RequestBody::ResizePartition {
                partition: PartitionId::decode(r)?,
                quota: r.u64()?,
            },
            11 => RequestBody::RemovePartition {
                partition: PartitionId::decode(r)?,
            },
            12 => RequestBody::ListObjects {
                partition: PartitionId::decode(r)?,
            },
            13 => {
                let partition = PartitionId::decode(r)?;
                let kb = r.u8()?;
                let kind = KeyKind::from_byte(kb).ok_or(DecodeError::BadTag {
                    context: "key kind",
                    value: u64::from(kb),
                })?;
                // nasd-lint: allow(hot-path-copy, "wrapped key material: small control-path field")
                let wrapped_key = r.bytes()?.to_vec();
                RequestBody::SetKey {
                    partition,
                    kind,
                    wrapped_key,
                }
            }
            14 => RequestBody::Append {
                partition: PartitionId::decode(r)?,
                object: ObjectId::decode(r)?,
                len: r.u64()?,
            },
            t => {
                return Err(DecodeError::BadTag {
                    context: "request",
                    value: u64::from(t),
                })
            }
        };
        Ok(body)
    }
}

/// A complete request as it crosses the network (Figure 5): security
/// header, capability public portion, arguments, digest, and bulk data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Security header (protection level + nonce).
    pub header: SecurityHeader,
    /// The capability authorizing this request, if one is required.
    /// Control requests authorized by partition/drive keys carry `None`.
    pub capability: Option<CapabilityPublic>,
    /// Request arguments.
    pub body: RequestBody,
    /// MAC over nonce and arguments keyed by the capability private field
    /// (or the partition key for `SetKey`).
    pub digest: RequestDigest,
    /// Bulk data (writes). Empty for all other requests.
    pub data: Bytes,
}

impl Request {
    /// Decode from a shared receive buffer. The bulk `data` field comes
    /// out as an O(1) [`Bytes::slice`] view of `buf` — no payload copy.
    pub fn decode_owned(r: &mut OwnedReader) -> Result<Self, DecodeError> {
        let header = r.decode::<SecurityHeader>()?;
        let capability = match r.u8()? {
            0 => None,
            1 => Some(r.decode::<CapabilityPublic>()?),
            v => {
                return Err(DecodeError::BadTag {
                    context: "capability option",
                    value: u64::from(v),
                })
            }
        };
        let body = r.decode::<RequestBody>()?;
        let digest = r.decode::<RequestDigest>()?;
        let data = r.bytes_shared()?;
        Ok(Request {
            header,
            capability,
            body,
            digest,
            data,
        })
    }

    /// Decode a complete request from a shared receive buffer, rejecting
    /// trailing bytes. This is the zero-copy twin of
    /// [`WireDecode::from_wire`].
    pub fn from_wire_shared(buf: Bytes) -> Result<Self, DecodeError> {
        let mut r = OwnedReader::new(buf);
        let v = Self::decode_owned(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Total bytes this request occupies on the wire, including headers
    /// and bulk data — what the network model charges.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let mut w = WireWriter::new();
        self.header.encode(&mut w);
        match &self.capability {
            Some(c) => {
                w.u8(1);
                c.encode(&mut w);
            }
            None => {
                w.u8(0);
            }
        }
        self.body.encode(&mut w);
        self.digest.encode(&mut w);
        w.len() + self.data.len()
    }
}

impl WireEncode for Request {
    fn encode(&self, w: &mut WireWriter) {
        self.header.encode(w);
        match &self.capability {
            Some(c) => {
                w.u8(1);
                c.encode(w);
            }
            None => {
                w.u8(0);
            }
        }
        self.body.encode(w);
        self.digest.encode(w);
        w.bytes(&self.data);
    }
}

impl Request {
    /// Encode for scatter-gather transmission: everything except the bulk
    /// payload (including the payload's length prefix) goes into `head`,
    /// while the payload itself is appended to `segments` as an O(1)
    /// shared handle — no copy. Concatenating `head` and `segments` in
    /// order yields exactly [`WireEncode::to_wire`], so the socket
    /// transport can `writev` the pieces without gluing them first.
    // nasd-lint: allow(transitive-panic, "encode-side length guard: a >4 GiB field is a local caller bug, never network input")
    pub fn encode_frame(&self, head: &mut WireWriter, segments: &mut Vec<Bytes>) {
        self.header.encode(head);
        match &self.capability {
            Some(c) => {
                head.u8(1);
                c.encode(head);
            }
            None => {
                head.u8(0);
            }
        }
        self.body.encode(head);
        self.digest.encode(head);
        head.u32(u32::try_from(self.data.len()).expect("field under 4 GiB"));
        if !self.data.is_empty() {
            segments.push(self.data.clone());
        }
    }
}

impl WireDecode for Request {
    /// Thin copy-in wrapper over [`Request::decode_owned`]: the borrowed
    /// input is copied into an owned buffer once, then decoded with O(1)
    /// payload slicing. Receive paths that already hold an owned buffer
    /// should call [`Request::from_wire_shared`] and skip the copy.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        // nasd-lint: allow(hot-path-copy, "documented copy-in wrapper; owned-buffer callers use the shared decoders")
        let mut or = OwnedReader::new(Bytes::copy_from_slice(r.rest()));
        let v = Request::decode_owned(&mut or)?;
        r.raw(or.pos())?;
        Ok(v)
    }
}

/// Result payload of a drive operation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplyBody {
    /// No payload.
    Empty,
    /// Object data (reads), carried as a scatter-gather rope whose
    /// segments are views of the drive's cache blocks — never a flat
    /// copy of them.
    Data(ByteRope),
    /// Object attributes.
    Attr(ObjectAttributes),
    /// Name of a newly created object or snapshot.
    Created(ObjectId),
    /// Bytes written.
    Written(u64),
    /// Allocated object names.
    Objects(Vec<ObjectId>),
    /// Offset at which an [`RequestBody::Append`] landed its data.
    Appended(u64),
}

/// A complete reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// Outcome status.
    pub status: NasdStatus,
    /// Payload (meaningful only when `status.is_ok()`).
    pub body: ReplyBody,
}

impl Reply {
    /// A failure reply with no payload.
    #[must_use]
    pub fn error(status: NasdStatus) -> Self {
        Reply {
            status,
            body: ReplyBody::Empty,
        }
    }

    /// A success reply.
    #[must_use]
    pub fn ok(body: ReplyBody) -> Self {
        Reply {
            status: NasdStatus::Ok,
            body,
        }
    }

    /// Total bytes this reply occupies on the wire.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        // status byte + small body header + payload
        let payload = match &self.body {
            ReplyBody::Empty => 0,
            ReplyBody::Data(d) => d.len(),
            ReplyBody::Attr(_) => 321, // fixed encoding size of attributes
            ReplyBody::Created(_) | ReplyBody::Written(_) | ReplyBody::Appended(_) => 8,
            ReplyBody::Objects(v) => 4 + v.len() * 8,
        };
        // status byte + body tag + payload
        2usize.saturating_add(payload)
    }
}

impl WireEncode for ReplyBody {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ReplyBody::Empty => {
                w.u8(0);
            }
            ReplyBody::Data(d) => {
                w.u8(1);
                w.rope(d);
            }
            ReplyBody::Attr(a) => {
                w.u8(2);
                a.encode(w);
            }
            ReplyBody::Created(id) => {
                w.u8(3);
                id.encode(w);
            }
            ReplyBody::Written(n) => {
                w.u8(4);
                w.u64(*n);
            }
            ReplyBody::Objects(ids) => {
                w.u8(5);
                // nasd-lint: allow(cast, "encode direction: in-memory object list is far below u32::MAX")
                w.u32(ids.len() as u32);
                for id in ids {
                    id.encode(w);
                }
            }
            ReplyBody::Appended(offset) => {
                w.u8(6);
                w.u64(*offset);
            }
        }
    }
}

impl ReplyBody {
    /// Decode from a shared receive buffer. The `Data` payload comes out
    /// as an O(1) [`Bytes::slice`] view of `buf` — no payload copy.
    pub fn decode_owned(r: &mut OwnedReader) -> Result<Self, DecodeError> {
        let body = match r.u8()? {
            0 => ReplyBody::Empty,
            1 => ReplyBody::Data(ByteRope::from(r.bytes_shared()?)),
            2 => ReplyBody::Attr(r.decode::<ObjectAttributes>()?),
            3 => ReplyBody::Created(r.decode::<ObjectId>()?),
            4 => ReplyBody::Written(r.with_borrowed(|r| r.u64())?),
            5 => ReplyBody::Objects(r.with_borrowed(decode_object_list)?),
            6 => ReplyBody::Appended(r.with_borrowed(|r| r.u64())?),
            t => {
                return Err(DecodeError::BadTag {
                    context: "reply body",
                    value: u64::from(t),
                })
            }
        };
        Ok(body)
    }
}

fn decode_object_list(r: &mut WireReader<'_>) -> Result<Vec<ObjectId>, DecodeError> {
    let count = usize::try_from(r.u32()?).unwrap_or(usize::MAX);
    // Each id occupies 8 bytes: reject impossible counts before
    // allocating, so a corrupt length prefix cannot force a huge
    // allocation. Saturated arithmetic only strengthens the rejection.
    if r.remaining() < count.saturating_mul(8) {
        return Err(DecodeError::Truncated {
            needed: count.saturating_mul(8),
            remaining: r.remaining(),
        });
    }
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(ObjectId::decode(r)?);
    }
    Ok(ids)
}

impl WireDecode for ReplyBody {
    /// Thin copy-in wrapper over [`ReplyBody::decode_owned`].
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        // nasd-lint: allow(hot-path-copy, "documented copy-in wrapper; owned-buffer callers use the shared decoders")
        let mut or = OwnedReader::new(Bytes::copy_from_slice(r.rest()));
        let v = ReplyBody::decode_owned(&mut or)?;
        r.raw(or.pos())?;
        Ok(v)
    }
}

impl WireEncode for Reply {
    fn encode(&self, w: &mut WireWriter) {
        self.status.encode(w);
        self.body.encode(w);
    }
}

impl Reply {
    /// Encode for scatter-gather transmission: status, body tag and the
    /// payload's length prefix go into `head`; a `Data` rope's segments
    /// are appended to `segments` as O(1) shared handles — no copy.
    /// Concatenating `head` and `segments` in order yields exactly
    /// [`WireEncode::to_wire`], so the socket transport can `writev` a
    /// cached-read reply without ever flattening the rope.
    // nasd-lint: allow(transitive-panic, "encode-side length guard: a >4 GiB field is a local caller bug, never network input")
    pub fn encode_frame(&self, head: &mut WireWriter, segments: &mut Vec<Bytes>) {
        self.status.encode(head);
        if let ReplyBody::Data(d) = &self.body {
            head.u8(1);
            head.u32(u32::try_from(d.len()).expect("field under 4 GiB"));
            for seg in d.segments() {
                if !seg.is_empty() {
                    segments.push(seg.clone());
                }
            }
        } else {
            self.body.encode(head);
        }
    }

    /// Decode from a shared receive buffer; see [`ReplyBody::decode_owned`].
    pub fn decode_owned(r: &mut OwnedReader) -> Result<Self, DecodeError> {
        Ok(Reply {
            status: r.decode::<NasdStatus>()?,
            body: ReplyBody::decode_owned(r)?,
        })
    }

    /// Decode a complete reply from a shared receive buffer, rejecting
    /// trailing bytes. This is the zero-copy twin of
    /// [`WireDecode::from_wire`].
    pub fn from_wire_shared(buf: Bytes) -> Result<Self, DecodeError> {
        let mut r = OwnedReader::new(buf);
        let v = Self::decode_owned(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl WireDecode for Reply {
    /// Thin copy-in wrapper over [`Reply::decode_owned`]. Receive paths
    /// that already hold an owned buffer should call
    /// [`Reply::from_wire_shared`] and skip the copy.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        // nasd-lint: allow(hot-path-copy, "documented copy-in wrapper; owned-buffer callers use the shared decoders")
        let mut or = OwnedReader::new(Bytes::copy_from_slice(r.rest()));
        let v = Reply::decode_owned(&mut or)?;
        r.raw(or.pos())?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::ProtectionLevel;
    use crate::ids::Nonce;

    fn all_bodies() -> Vec<RequestBody> {
        let p = PartitionId(1);
        let o = ObjectId(9);
        vec![
            RequestBody::Read {
                partition: p,
                object: o,
                offset: 0,
                len: 4096,
            },
            RequestBody::Write {
                partition: p,
                object: o,
                offset: 512,
                len: 1024,
            },
            RequestBody::Append {
                partition: p,
                object: o,
                len: 2048,
            },
            RequestBody::GetAttr {
                partition: p,
                object: o,
            },
            RequestBody::SetAttr {
                partition: p,
                object: o,
                mask: SetAttrMask::fs_specific_only(),
                fs_specific: Box::new([3u8; FS_SPECIFIC_ATTR_LEN]),
                preallocated: 0,
                cluster_with: Some(ObjectId(4)),
            },
            RequestBody::Create {
                partition: p,
                preallocate: 65536,
                cluster_with: None,
            },
            RequestBody::Remove {
                partition: p,
                object: o,
            },
            RequestBody::Resize {
                partition: p,
                object: o,
                new_size: 100,
            },
            RequestBody::Snapshot {
                partition: p,
                object: o,
            },
            RequestBody::Flush {
                partition: p,
                object: o,
            },
            RequestBody::CreatePartition {
                partition: p,
                quota: 1 << 30,
            },
            RequestBody::ResizePartition {
                partition: p,
                quota: 1 << 31,
            },
            RequestBody::RemovePartition { partition: p },
            RequestBody::ListObjects { partition: p },
            RequestBody::SetKey {
                partition: p,
                kind: KeyKind::Black,
                wrapped_key: vec![0xaa; 32],
            },
        ]
    }

    #[test]
    fn interface_is_under_20_requests() {
        // The paper: "this interface contains less than 20 requests".
        assert!(all_bodies().len() < 20);
    }

    #[test]
    fn all_request_bodies_roundtrip() {
        for body in all_bodies() {
            let decoded = RequestBody::from_wire(&body.to_wire())
                .unwrap_or_else(|e| panic!("decode {body:?}: {e}"));
            assert_eq!(decoded, body);
        }
    }

    #[test]
    fn bad_request_tag_rejected() {
        assert!(matches!(
            RequestBody::from_wire(&[200]),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn partition_and_object_accessors() {
        for body in all_bodies() {
            assert_eq!(body.partition(), PartitionId(1));
        }
        assert_eq!(
            RequestBody::Read {
                partition: PartitionId(1),
                object: ObjectId(9),
                offset: 0,
                len: 1
            }
            .object(),
            Some(ObjectId(9))
        );
        assert_eq!(
            RequestBody::ListObjects {
                partition: PartitionId(1)
            }
            .object(),
            None
        );
    }

    #[test]
    fn request_wire_size_counts_data() {
        let body = RequestBody::Write {
            partition: PartitionId(0),
            object: ObjectId(2),
            offset: 0,
            len: 100,
        };
        let base = Request {
            header: SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce: Nonce::new(1, 1),
            },
            capability: None,
            body: body.clone(),
            digest: RequestDigest(nasd_crypto::Sha256::digest(b"x")),
            data: Bytes::new(),
        };
        let with_data = Request {
            data: Bytes::from(vec![0u8; 100]),
            ..base.clone()
        };
        assert_eq!(with_data.wire_size(), base.wire_size() + 100);
    }

    #[test]
    fn reply_wire_size() {
        assert_eq!(Reply::error(NasdStatus::NoSpace).wire_size(), 2);
        let r = Reply::ok(ReplyBody::Data(ByteRope::from(vec![0u8; 50])));
        assert_eq!(r.wire_size(), 52);
    }

    #[test]
    fn reply_constructors() {
        assert!(Reply::ok(ReplyBody::Empty).status.is_ok());
        assert!(!Reply::error(NasdStatus::Replay).status.is_ok());
    }

    fn glue(head: &WireWriter, segments: &[Bytes]) -> Vec<u8> {
        let mut flat = head.as_slice().to_vec();
        for seg in segments {
            flat.extend_from_slice(seg);
        }
        flat
    }

    #[test]
    fn request_frame_matches_to_wire_and_copies_nothing() {
        let req = Request {
            header: SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce: Nonce::new(4, 9),
            },
            capability: None,
            body: RequestBody::Write {
                partition: PartitionId(1),
                object: ObjectId(2),
                offset: 0,
                len: 64,
            },
            digest: RequestDigest(nasd_crypto::Sha256::digest(b"frame")),
            data: Bytes::from(vec![0xabu8; 64]),
        };
        let mut head = WireWriter::new();
        let mut segments = Vec::new();
        let before = bytes::stats::bytes_copied();
        req.encode_frame(&mut head, &mut segments);
        assert_eq!(
            bytes::stats::bytes_copied(),
            before,
            "encode_frame must not copy the bulk payload"
        );
        assert_eq!(glue(&head, &segments), req.to_wire());
        // The segment is the caller's buffer, not a copy of it.
        assert_eq!(segments.len(), 1);
        assert_eq!(
            segments.first().map(|s| s.as_ref().as_ptr()),
            Some(req.data.as_ref().as_ptr())
        );
    }

    #[test]
    fn empty_data_request_frame_matches_to_wire() {
        let req = Request {
            header: SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce: Nonce::new(1, 1),
            },
            capability: None,
            body: RequestBody::GetAttr {
                partition: PartitionId(1),
                object: ObjectId(2),
            },
            digest: RequestDigest(nasd_crypto::Sha256::digest(b"x")),
            data: Bytes::new(),
        };
        let mut head = WireWriter::new();
        let mut segments = Vec::new();
        req.encode_frame(&mut head, &mut segments);
        assert!(segments.is_empty());
        assert_eq!(glue(&head, &segments), req.to_wire());
    }

    #[test]
    fn reply_frames_match_to_wire_for_every_body() {
        let mut rope = ByteRope::new();
        rope.push(Bytes::from(vec![1u8; 10]));
        rope.push(Bytes::from(vec![2u8; 20]));
        let replies = vec![
            Reply::ok(ReplyBody::Empty),
            Reply::ok(ReplyBody::Data(rope)),
            Reply::ok(ReplyBody::Created(ObjectId(77))),
            Reply::ok(ReplyBody::Written(4096)),
            Reply::ok(ReplyBody::Appended(8192)),
            Reply::ok(ReplyBody::Objects(vec![ObjectId(1), ObjectId(2)])),
            Reply::error(NasdStatus::NoSpace),
        ];
        for reply in replies {
            let mut head = WireWriter::new();
            let mut segments = Vec::new();
            reply.encode_frame(&mut head, &mut segments);
            assert_eq!(glue(&head, &segments), reply.to_wire(), "{reply:?}");
        }
    }

    #[test]
    fn data_reply_frame_shares_rope_segments() {
        let seg = Bytes::from(vec![9u8; 128]);
        let reply = Reply::ok(ReplyBody::Data(ByteRope::from(seg.clone())));
        let mut head = WireWriter::new();
        let mut segments = Vec::new();
        let before = bytes::stats::bytes_copied();
        reply.encode_frame(&mut head, &mut segments);
        assert_eq!(
            bytes::stats::bytes_copied(),
            before,
            "encode_frame must not copy rope segments"
        );
        assert_eq!(
            segments.first().map(|s| s.as_ref().as_ptr()),
            Some(seg.as_ref().as_ptr())
        );
    }
}
