//! Identifiers and ranges used throughout the NASD protocol.

use crate::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use std::fmt;

/// Identifies one NASD drive in the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DriveId(pub u64);

/// Identifies a soft partition within a drive.
///
/// NASD partitions are "variable-sized groupings of objects, not physical
/// regions of disk media" (§2); the id is just a namespace selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PartitionId(pub u16);

/// Names an object within a partition's flat namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjectId(pub u64);

/// An object's logical version number.
///
/// The file manager bumps this to revoke outstanding capabilities for the
/// object (§4.1): a capability embeds the version it was approved for, and
/// the drive rejects mismatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Version(pub u64);

impl Version {
    /// The next version (capability revocation).
    #[must_use]
    pub fn bumped(self) -> Version {
        Version(self.0 + 1)
    }
}

/// Anti-replay nonce carried on every request (Figure 5).
///
/// A client id plus a strictly increasing counter; the drive keeps a
/// per-client high-water mark and a small window for reordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Nonce {
    /// Issuing client.
    pub client: u64,
    /// Strictly increasing per-client counter.
    pub counter: u64,
}

impl Nonce {
    /// Construct a nonce.
    #[must_use]
    pub fn new(client: u64, counter: u64) -> Self {
        Nonce { client, counter }
    }
}

/// A half-open byte range `[start, end)` within an object.
///
/// Capabilities restrict access to a region (the paper uses this for AFS
/// quota escrow: a write capability whose region is larger than the current
/// object escrows room for growth).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct ByteRange {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl ByteRange {
    /// A range covering the whole object space.
    pub const FULL: ByteRange = ByteRange {
        start: 0,
        end: u64::MAX,
    };

    /// Construct a range; `start` must not exceed `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "byte range start {start} > end {end}");
        ByteRange { start, end }
    }

    /// Length of the range in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `[offset, offset+len)` lies entirely inside this range.
    ///
    /// An empty access (len 0) is contained if its offset is within bounds.
    #[must_use]
    pub fn contains_range(&self, offset: u64, len: u64) -> bool {
        let Some(end) = offset.checked_add(len) else {
            return false;
        };
        offset >= self.start && end <= self.end
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

macro_rules! display_newtype {
    ($ty:ident, $prefix:literal) => {
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

display_newtype!(DriveId, "drive-");
display_newtype!(PartitionId, "part-");
display_newtype!(ObjectId, "obj-");
display_newtype!(Version, "v");

impl WireEncode for DriveId {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
}
impl WireDecode for DriveId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(DriveId(r.u64()?))
    }
}

impl WireEncode for PartitionId {
    fn encode(&self, w: &mut WireWriter) {
        w.u16(self.0);
    }
}
impl WireDecode for PartitionId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(PartitionId(r.u16()?))
    }
}

impl WireEncode for ObjectId {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
}
impl WireDecode for ObjectId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(ObjectId(r.u64()?))
    }
}

impl WireEncode for Version {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
}
impl WireDecode for Version {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(Version(r.u64()?))
    }
}

impl WireEncode for Nonce {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.client).u64(self.counter);
    }
}
impl WireDecode for Nonce {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(Nonce {
            client: r.u64()?,
            counter: r.u64()?,
        })
    }
}

impl WireEncode for ByteRange {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.start).u64(self.end);
    }
}
impl WireDecode for ByteRange {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let start = r.u64()?;
        let end = r.u64()?;
        if start > end {
            return Err(DecodeError::BadTag {
                context: "byte range",
                value: start,
            });
        }
        Ok(ByteRange { start, end })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireDecode, WireEncode};

    #[test]
    fn byte_range_containment() {
        let r = ByteRange::new(100, 200);
        assert!(r.contains_range(100, 100));
        assert!(r.contains_range(150, 0));
        assert!(!r.contains_range(99, 1));
        assert!(!r.contains_range(150, 51));
        assert!(!r.contains_range(200, 1));
        assert!(r.contains_range(200, 0));
    }

    #[test]
    fn byte_range_overflow_access_rejected() {
        let r = ByteRange::FULL;
        assert!(!r.contains_range(u64::MAX, 2));
        assert!(r.contains_range(0, u64::MAX));
    }

    #[test]
    #[should_panic(expected = "byte range start")]
    fn inverted_range_panics() {
        let _ = ByteRange::new(5, 4);
    }

    #[test]
    fn full_range_contains_everything() {
        assert!(ByteRange::FULL.contains_range(0, 1 << 40));
        assert_eq!(ByteRange::FULL.len(), u64::MAX);
    }

    #[test]
    fn version_bump() {
        assert_eq!(Version(3).bumped(), Version(4));
    }

    #[test]
    fn displays() {
        assert_eq!(DriveId(3).to_string(), "drive-3");
        assert_eq!(PartitionId(1).to_string(), "part-1");
        assert_eq!(ObjectId(9).to_string(), "obj-9");
        assert_eq!(Version(2).to_string(), "v2");
        assert_eq!(ByteRange::new(1, 5).to_string(), "[1, 5)");
    }

    #[test]
    fn wire_roundtrips() {
        let range = ByteRange::new(10, 20);
        assert_eq!(ByteRange::from_wire(&range.to_wire()).unwrap(), range);

        let nonce = Nonce::new(7, 42);
        assert_eq!(Nonce::from_wire(&nonce.to_wire()).unwrap(), nonce);

        assert_eq!(
            ObjectId::from_wire(&ObjectId(5).to_wire()).unwrap(),
            ObjectId(5)
        );
    }

    #[test]
    fn inverted_range_rejected_on_decode() {
        let mut w = crate::wire::WireWriter::new();
        w.u64(10).u64(5);
        assert!(ByteRange::from_wire(&w.into_vec()).is_err());
    }
}
