//! Canonical byte encoding for protocol messages.
//!
//! NASD request digests are MACs over "the request parameters" (Figure 5),
//! which requires a canonical encoding: the same logical message must
//! always serialize to the same bytes on both the client and the drive.
//! This module provides a tiny deterministic binary format — all integers
//! big-endian, all variable-length fields length-prefixed — plus a reader
//! with explicit error reporting for the decode side.
//!
//! # Example
//!
//! ```
//! use nasd_proto::wire::{WireReader, WireWriter};
//!
//! let mut w = WireWriter::new();
//! w.u32(7).bytes(b"nasd");
//! let buf = w.into_vec();
//!
//! let mut r = WireReader::new(&buf);
//! assert_eq!(r.u32().unwrap(), 7);
//! assert_eq!(r.bytes().unwrap(), b"nasd");
//! assert!(r.is_empty());
//! ```

use std::fmt;

/// Error produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the expected field.
    Truncated {
        /// Bytes needed to decode the next field.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A discriminant or enum byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => write!(
                f,
                "truncated message: needed {needed} bytes, {remaining} remaining"
            ),
            DecodeError::BadTag { context, value } => {
                write!(f, "invalid {context} tag: {value}")
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializer for the canonical format.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Create an empty writer. Pre-reserves enough for a typical
    /// header-only message, so the common encode is one allocation
    /// instead of a growth cascade.
    #[must_use]
    pub fn new() -> Self {
        WireWriter {
            buf: Vec::with_capacity(64),
        }
    }

    /// Create a writer with preallocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        // nasd-lint: allow(hot-path-copy, "serializer sink: building the contiguous wire image is the copy")
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        // nasd-lint: allow(hot-path-copy, "serializer sink: building the contiguous wire image is the copy")
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        // nasd-lint: allow(hot-path-copy, "serializer sink: building the contiguous wire image is the copy")
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// If the field exceeds the 4 GiB wire limit — a caller bug, not
    /// reachable from network input.
    // nasd-lint: allow(transitive-panic, "encode-side length guard: a >4 GiB field is a local caller bug, never network input")
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("field under 4 GiB"));
        // nasd-lint: allow(hot-path-copy, "serializer sink: building the contiguous wire image is the copy")
        self.buf.extend_from_slice(v);
        self
    }

    /// Append raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        // nasd-lint: allow(hot-path-copy, "serializer sink: building the contiguous wire image is the copy")
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed byte string from a scatter-gather rope,
    /// byte-identical to [`bytes`](WireWriter::bytes) of its flattened
    /// content but without materializing a flat copy first.
    ///
    /// # Panics
    ///
    /// If the rope exceeds the 4 GiB wire limit — a caller bug, not
    /// reachable from network input.
    // nasd-lint: allow(transitive-panic, "encode-side length guard: a >4 GiB field is a local caller bug, never network input")
    pub fn rope(&mut self, v: &bytes::ByteRope) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("field under 4 GiB"));
        for seg in v.iter_slices() {
            // nasd-lint: allow(hot-path-copy, "serializer sink: building the contiguous wire image is the copy")
            self.buf.extend_from_slice(seg);
        }
        self
    }

    /// Current encoded length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, returning the encoded bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Deserializer for the canonical format.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wrap a buffer for reading.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read exactly `N` bytes as an array. `take` already guarantees the
    /// length, so the fallback arm is unreachable — but it is a typed
    /// error, not a panic, keeping the whole decode path panic-free.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let head = self.take(N)?;
        <[u8; N]>::try_from(head).map_err(|_| DecodeError::Truncated {
            needed: N,
            remaining: head.len(),
        })
    }

    /// Read a byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let [b] = self.array()?;
        Ok(b)
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        // Saturating on 16-bit targets only; `take` rejects any length
        // beyond the buffer either way.
        let len = usize::try_from(self.u32()?).unwrap_or(usize::MAX);
        self.take(len)
    }

    /// Read `n` raw bytes (fixed-size field).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// The bytes not yet consumed, as a slice.
    #[must_use]
    pub fn rest(&self) -> &'a [u8] {
        self.buf
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Error unless the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.buf.len()))
        }
    }
}

/// Deserializer over an owned, shared receive buffer.
///
/// The borrow-then-slice half of the zero-copy decode path: scalar and
/// fixed-size fields decode through the ordinary borrowed [`WireReader`]
/// machinery (via [`with_borrowed`](OwnedReader::with_borrowed), so no
/// decode logic is duplicated), while variable-length payloads come out
/// as O(1) [`Bytes::slice`] windows of the one receive buffer instead of
/// being re-copied.
#[derive(Debug, Clone)]
pub struct OwnedReader {
    buf: bytes::Bytes,
    pos: usize,
}

impl OwnedReader {
    /// Wrap a shared receive buffer for reading.
    #[must_use]
    pub fn new(buf: bytes::Bytes) -> Self {
        OwnedReader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Run a borrowed-decode closure over the unconsumed bytes and
    /// advance past whatever it consumed. This is how nested types reuse
    /// their existing [`WireDecode`] impls against an owned buffer.
    ///
    /// # Errors
    ///
    /// Whatever the closure reports.
    pub fn with_borrowed<T>(
        &mut self,
        f: impl FnOnce(&mut WireReader<'_>) -> Result<T, DecodeError>,
    ) -> Result<T, DecodeError> {
        // `pos <= len` is a structural invariant; an empty slice (never
        // a panic) is the benign answer if it were ever violated.
        let rest = self.buf.as_ref().get(self.pos..).unwrap_or(&[]);
        let mut r = WireReader::new(rest);
        let v = f(&mut r)?;
        self.pos += rest.len() - r.remaining();
        Ok(v)
    }

    /// Decode one nested value through its borrowed [`WireDecode`] impl.
    ///
    /// # Errors
    ///
    /// The nested type's decode error.
    pub fn decode<T: WireDecode>(&mut self) -> Result<T, DecodeError> {
        self.with_borrowed(T::decode)
    }

    /// Read a byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of buffer.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        self.with_borrowed(|r| r.u8())
    }

    /// Read a length-prefixed byte string as an O(1) shared slice of the
    /// receive buffer — no payload copy.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the prefix overruns the buffer.
    pub fn bytes_shared(&mut self) -> Result<bytes::Bytes, DecodeError> {
        // Saturating on 16-bit targets only; the remaining() check
        // rejects any length beyond the buffer either way.
        let len = usize::try_from(self.with_borrowed(|r| r.u32())?).unwrap_or(usize::MAX);
        if self.remaining() < len {
            return Err(DecodeError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        // `remaining() >= len` above makes this end in-bounds.
        let end = self.pos.saturating_add(len);
        let out = self.buf.slice(self.pos..end);
        self.pos = end;
        Ok(out)
    }

    /// Error unless the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }
}

/// Types with a canonical wire encoding.
pub trait WireEncode {
    /// Append this value's canonical encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// Size of the canonical encoding in bytes.
    fn wire_len(&self) -> usize {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.len()
    }
}

/// Types decodable from the canonical wire encoding.
pub trait WireDecode: Sized {
    /// Decode one value, consuming its bytes from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError>;

    /// Decode from a complete buffer, rejecting trailing bytes.
    fn from_wire(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.u8(0xab).u16(0xcdef).u32(0xdead_beef).u64(u64::MAX);
        let buf = w.into_vec();
        assert_eq!(buf.len(), 1 + 2 + 4 + 8);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xcdef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_read_errors() {
        let mut r = WireReader::new(&[1, 2]);
        let err = r.u32().unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn bytes_roundtrip_and_empty() {
        let mut w = WireWriter::new();
        w.bytes(b"").bytes(b"hello");
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert!(r.is_empty());
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = WireReader::new(&[0]);
        assert_eq!(r.finish().unwrap_err(), DecodeError::TrailingBytes(1));
    }

    #[test]
    fn bogus_length_prefix_is_truncation() {
        let mut w = WireWriter::new();
        w.u32(1000); // claims 1000 bytes follow
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            r.bytes().unwrap_err(),
            DecodeError::Truncated { .. }
        ));
    }

    #[test]
    fn owned_reader_shares_the_receive_buffer() {
        let mut w = WireWriter::new();
        w.u8(3).bytes(b"payload bytes").u64(17);
        let buf = bytes::Bytes::from(w.into_vec());
        let mut r = OwnedReader::new(buf.clone());
        assert_eq!(r.u8().unwrap(), 3);
        let before = bytes::stats::bytes_copied();
        let payload = r.bytes_shared().unwrap();
        assert_eq!(
            bytes::stats::bytes_copied(),
            before,
            "bytes_shared must not copy the payload"
        );
        assert_eq!(&payload[..], b"payload bytes");
        // The slice is a window of the original allocation.
        assert_eq!(
            payload.as_ref().as_ptr() as usize,
            buf.as_ref().as_ptr() as usize + 5
        );
        assert_eq!(r.with_borrowed(|r| r.u64()).unwrap(), 17);
        r.finish().unwrap();
    }

    #[test]
    fn owned_reader_truncation_and_trailing() {
        let mut w = WireWriter::new();
        w.u32(100);
        let mut r = OwnedReader::new(bytes::Bytes::from(w.into_vec()));
        assert!(matches!(
            r.bytes_shared().unwrap_err(),
            DecodeError::Truncated { .. }
        ));
        let r = OwnedReader::new(bytes::Bytes::from(vec![0u8; 2]));
        assert_eq!(r.finish().unwrap_err(), DecodeError::TrailingBytes(2));
    }

    #[test]
    fn rope_write_matches_flat_bytes_write() {
        let mut rope = bytes::ByteRope::new();
        rope.push(bytes::Bytes::from(vec![1u8, 2, 3]));
        rope.push(bytes::Bytes::from(vec![4u8, 5]));
        let mut a = WireWriter::new();
        a.rope(&rope);
        let mut b = WireWriter::new();
        b.bytes(&[1, 2, 3, 4, 5]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn error_display() {
        let e = DecodeError::BadTag {
            context: "request",
            value: 99,
        };
        assert_eq!(e.to_string(), "invalid request tag: 99");
    }
}
