//! Status codes returned by NASD drives.

use crate::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use std::fmt;

/// Result status of a drive operation.
///
/// Security failures are deliberately coarse: the paper sends the client
/// "back to the file manager" on any capability mismatch, without leaking
/// which field failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NasdStatus {
    /// Operation succeeded.
    Ok,
    /// The named partition does not exist.
    NoSuchPartition,
    /// The named object does not exist.
    NoSuchObject,
    /// An object with the requested name already exists.
    ObjectExists,
    /// Capability or request digest failed verification, the capability
    /// expired, its version is stale, or rights/region are insufficient.
    AccessDenied,
    /// The nonce was replayed or too old.
    Replay,
    /// Partition quota or drive capacity exhausted.
    NoSpace,
    /// Read/write outside the object region permitted by the capability.
    RangeViolation,
    /// The request was malformed.
    BadRequest,
    /// The drive hit an internal error (I/O failure, corrupt metadata).
    DriveError,
    /// The drive is transiently overloaded or mid-recovery; the request
    /// was not executed and may safely be retried.
    Busy,
}

/// How a client should react to a status — the fault-injection retry
/// matrix. nasd-lint (rule W1) verifies every [`NasdStatus`] variant is
/// mapped in [`NasdStatus::retry_class`], so a new status cannot silently
/// inherit retry behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RetryClass {
    /// The operation succeeded; nothing to retry.
    Done,
    /// The request was not executed; resending it (re-signed, with a
    /// fresh nonce) is safe and likely to succeed.
    Transient,
    /// The drive rejected the credentials; go back to the file manager
    /// for a fresh capability before retrying.
    Refresh,
    /// Retrying the same request cannot succeed; surface the error.
    Permanent,
}

impl NasdStatus {
    /// Whether this status indicates success.
    #[must_use]
    pub fn is_ok(self) -> bool {
        self == NasdStatus::Ok
    }

    /// Whether the failure is transient: the request was not executed
    /// and resending it (re-signed, with a fresh nonce) is safe.
    #[must_use]
    pub fn is_transient(self) -> bool {
        self.retry_class() == RetryClass::Transient
    }

    /// The fault-injection retry matrix: what a client holding this
    /// status should do next (§4.1 — security failures send the client
    /// "back to the file manager").
    #[must_use]
    pub fn retry_class(self) -> RetryClass {
        match self {
            NasdStatus::Ok => RetryClass::Done,
            NasdStatus::Busy => RetryClass::Transient,
            NasdStatus::AccessDenied | NasdStatus::Replay => RetryClass::Refresh,
            NasdStatus::NoSuchPartition
            | NasdStatus::NoSuchObject
            | NasdStatus::ObjectExists
            | NasdStatus::NoSpace
            | NasdStatus::RangeViolation
            | NasdStatus::BadRequest
            | NasdStatus::DriveError => RetryClass::Permanent,
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            NasdStatus::Ok => 0,
            NasdStatus::NoSuchPartition => 1,
            NasdStatus::NoSuchObject => 2,
            NasdStatus::ObjectExists => 3,
            NasdStatus::AccessDenied => 4,
            NasdStatus::Replay => 5,
            NasdStatus::NoSpace => 6,
            NasdStatus::RangeViolation => 7,
            NasdStatus::BadRequest => 8,
            NasdStatus::DriveError => 9,
            NasdStatus::Busy => 10,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => NasdStatus::Ok,
            1 => NasdStatus::NoSuchPartition,
            2 => NasdStatus::NoSuchObject,
            3 => NasdStatus::ObjectExists,
            4 => NasdStatus::AccessDenied,
            5 => NasdStatus::Replay,
            6 => NasdStatus::NoSpace,
            7 => NasdStatus::RangeViolation,
            8 => NasdStatus::BadRequest,
            9 => NasdStatus::DriveError,
            10 => NasdStatus::Busy,
            _ => return None,
        })
    }
}

impl fmt::Display for NasdStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NasdStatus::Ok => "ok",
            NasdStatus::NoSuchPartition => "no such partition",
            NasdStatus::NoSuchObject => "no such object",
            NasdStatus::ObjectExists => "object already exists",
            NasdStatus::AccessDenied => "access denied",
            NasdStatus::Replay => "replayed or stale nonce",
            NasdStatus::NoSpace => "no space",
            NasdStatus::RangeViolation => "access outside permitted region",
            NasdStatus::BadRequest => "malformed request",
            NasdStatus::DriveError => "drive internal error",
            NasdStatus::Busy => "drive busy, retry",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NasdStatus {}

impl WireEncode for NasdStatus {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.to_byte());
    }
}

impl WireDecode for NasdStatus {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let b = r.u8()?;
        NasdStatus::from_byte(b).ok_or(DecodeError::BadTag {
            context: "status",
            value: u64::from(b),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireDecode, WireEncode};

    #[test]
    fn roundtrip_all() {
        for b in 0..11u8 {
            let s = NasdStatus::from_byte(b).unwrap();
            assert_eq!(NasdStatus::from_wire(&s.to_wire()).unwrap(), s);
        }
        assert_eq!(NasdStatus::from_byte(200), None);
    }

    #[test]
    fn is_ok() {
        assert!(NasdStatus::Ok.is_ok());
        assert!(!NasdStatus::AccessDenied.is_ok());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(NasdStatus::NoSuchObject.to_string(), "no such object");
    }
}
