//! The NASD wire protocol.
//!
//! This crate defines everything that crosses the network in a NASD system
//! (§4.1 and Figure 5 of the paper): object naming, access rights,
//! per-object attributes, cryptographic capabilities, and the request /
//! reply messages of the drive interface — "less than 20 requests
//! including: read and write object data; read and write object attributes;
//! create and remove object; create, resize, and remove partition;
//! construct a copy-on-write object version; and set security key".
//!
//! All messages have a canonical byte encoding ([`wire`]) so that request
//! digests are well-defined and the network model can account for real
//! message sizes.
//!
//! # Example
//!
//! ```
//! use nasd_proto::{ObjectId, PartitionId, Rights, ByteRange};
//!
//! let rights = Rights::READ | Rights::GETATTR;
//! assert!(rights.allows(Rights::READ));
//! assert!(!rights.allows(Rights::WRITE));
//!
//! let region = ByteRange::new(0, 1 << 20);
//! assert!(region.contains_range(4096, 8192));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
mod capability;
mod ids;
mod message;
mod rights;
mod route;
mod status;
pub mod wire;

pub use attr::{ObjectAttributes, SetAttrMask, FS_SPECIFIC_ATTR_LEN};
pub use capability::{
    Capability, CapabilityPublic, ProtectionLevel, RequestDigest, SecurityHeader,
};
pub use ids::{ByteRange, DriveId, Nonce, ObjectId, PartitionId, Version};
pub use message::{Reply, ReplyBody, Request, RequestBody, WELL_KNOWN_OBJECT_LIST};
pub use rights::Rights;
pub use route::{route_hash, shard_index};
pub use status::{NasdStatus, RetryClass};
