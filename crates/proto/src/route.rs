//! Stable shard routing over protocol identifiers.
//!
//! File-manager sharding partitions the namespace by handle hash: every
//! party — clients picking which FM shard to call, the shards
//! themselves picking a directory lock stripe — must agree on the
//! mapping, and it must be stable across processes and runs (no
//! `std::hash` `RandomState`). A 64-bit FNV-1a over the identifier
//! triple does the job: cheap, seedless, and well distributed for the
//! small structured inputs involved.

use crate::ids::{DriveId, ObjectId, PartitionId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Stable 64-bit routing hash of an object address
/// `(drive, partition, object)`.
///
/// Deterministic across processes, runs and platforms — unlike
/// `std::hash`, which is seeded per process.
#[must_use]
pub fn route_hash(drive: DriveId, partition: PartitionId, object: ObjectId) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &drive.0.to_be_bytes());
    h = fnv1a(h, &partition.0.to_be_bytes());
    h = fnv1a(h, &object.0.to_be_bytes());
    h
}

/// SplitMix64 finalizer: full-avalanche mix of all 64 bits.
///
/// FNV-1a over inputs this short leaves the high bits badly clustered
/// (the prime only carries entropy upward slowly), which starves shards
/// under the multiply-shift below; the finalizer spreads every input
/// bit across the whole word first.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Map a routing hash onto one of `shards` indices.
///
/// `shards == 0` maps everything to 0 so degenerate configurations
/// stay total. Uses multiply-shift over the mixed hash rather than
/// modulo: no division, and immune to weak bit regions in the raw hash.
#[must_use]
pub fn shard_index(hash: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Multiply-shift: (mix(hash) * shards) >> 64, exact in u128.
    usize::try_from((u128::from(mix(hash)) * (shards as u128)) >> 64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_hash_is_stable() {
        // Pinned value: routing must never change across versions, or
        // deployed clients and shards would disagree.
        let h = route_hash(DriveId(1), PartitionId(2), ObjectId(3));
        assert_eq!(h, route_hash(DriveId(1), PartitionId(2), ObjectId(3)));
        assert_ne!(h, route_hash(DriveId(1), PartitionId(2), ObjectId(4)));
        assert_ne!(h, route_hash(DriveId(2), PartitionId(2), ObjectId(3)));
    }

    #[test]
    fn shard_index_in_range_and_spread() {
        let shards = 7;
        let mut seen = vec![0u32; shards];
        for obj in 0..10_000u64 {
            let h = route_hash(DriveId(obj % 13), PartitionId(1), ObjectId(obj));
            let idx = shard_index(h, shards);
            assert!(idx < shards);
            if let Some(slot) = seen.get_mut(idx) {
                *slot += 1;
            }
        }
        // Every shard sees a reasonable share (perfect = ~1428).
        for (i, &count) in seen.iter().enumerate() {
            assert!(
                count > 700,
                "shard {i} starved: {count} of 10000 ({seen:?})"
            );
        }
    }

    #[test]
    fn degenerate_shard_counts() {
        assert_eq!(shard_index(u64::MAX, 0), 0);
        assert_eq!(shard_index(12345, 1), 0);
    }
}
