//! Cryptographic capabilities (§4.1, Figure 5, \[Gobioff97\]).
//!
//! A capability has a **public** portion — "a description of what rights
//! are being granted for which object" — and a **private** portion, a keyed
//! digest of the public portion under one of the drive's working keys. The
//! file manager computes the private portion and hands both to the client
//! over a secure channel. The client proves possession by MACing each
//! request (and a nonce) with the private portion; the drive, knowing its
//! working keys, recomputes the private portion from the public fields it
//! received and verifies the request digest. No per-capability state is
//! exchanged between issuer (file manager) and validator (drive).

use crate::ids::{ByteRange, DriveId, Nonce, ObjectId, PartitionId, Version};
use crate::rights::Rights;
use crate::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use nasd_crypto::{Digest, KeyKind, SecretKey};
use std::fmt;

/// Minimum protection the issuer demands for requests under a capability.
///
/// Figure 5's security header "indicates key and security options to use
/// when handling request". Integrity of the arguments is always required;
/// data integrity and privacy cost per-byte cryptography (the paper's
/// prototype disabled them for lack of hardware support — our benches can
/// toggle them).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ProtectionLevel {
    /// MAC over request arguments only (the paper's measured mode).
    #[default]
    ArgsIntegrity,
    /// MAC over arguments and data payload.
    DataIntegrity,
    /// Arguments and data MACed and data encrypted.
    Privacy,
}

impl ProtectionLevel {
    fn to_byte(self) -> u8 {
        match self {
            ProtectionLevel::ArgsIntegrity => 0,
            ProtectionLevel::DataIntegrity => 1,
            ProtectionLevel::Privacy => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => ProtectionLevel::ArgsIntegrity,
            1 => ProtectionLevel::DataIntegrity,
            2 => ProtectionLevel::Privacy,
            _ => return None,
        })
    }
}

/// The public portion of a capability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapabilityPublic {
    /// Drive the capability is valid for.
    pub drive: DriveId,
    /// Partition holding the object.
    pub partition: PartitionId,
    /// Object the rights apply to.
    pub object: ObjectId,
    /// Approved logical version number; drive rejects if the object has
    /// been bumped past this (revocation).
    pub version: Version,
    /// Granted rights.
    pub rights: Rights,
    /// Accessible byte region of the object.
    pub region: ByteRange,
    /// Expiration time (drive clock, seconds). Requests after this fail.
    pub expires: u64,
    /// Which working key the private portion was minted under.
    pub key_kind: KeyKind,
    /// Minimum protection level for requests using this capability.
    pub min_protection: ProtectionLevel,
}

impl CapabilityPublic {
    /// Compute the private portion under `working_key`:
    /// `HMAC(working_key, encode(public))`.
    #[must_use]
    pub fn private_under(&self, working_key: &SecretKey) -> Digest {
        working_key.mac(&self.to_wire())
    }

    /// Mint a complete capability under `working_key`.
    #[must_use]
    pub fn mint(self, working_key: &SecretKey) -> Capability {
        let private = self.private_under(working_key);
        Capability {
            public: self,
            private,
        }
    }
}

impl WireEncode for CapabilityPublic {
    fn encode(&self, w: &mut WireWriter) {
        self.drive.encode(w);
        self.partition.encode(w);
        self.object.encode(w);
        self.version.encode(w);
        self.rights.encode(w);
        self.region.encode(w);
        w.u64(self.expires);
        w.u8(self.key_kind.to_byte());
        w.u8(self.min_protection.to_byte());
    }
}

impl WireDecode for CapabilityPublic {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let drive = DriveId::decode(r)?;
        let partition = PartitionId::decode(r)?;
        let object = ObjectId::decode(r)?;
        let version = Version::decode(r)?;
        let rights = Rights::decode(r)?;
        let region = ByteRange::decode(r)?;
        let expires = r.u64()?;
        let kk = r.u8()?;
        let key_kind = KeyKind::from_byte(kk).ok_or(DecodeError::BadTag {
            context: "key kind",
            value: u64::from(kk),
        })?;
        let pl = r.u8()?;
        let min_protection = ProtectionLevel::from_byte(pl).ok_or(DecodeError::BadTag {
            context: "protection level",
            value: u64::from(pl),
        })?;
        Ok(CapabilityPublic {
            drive,
            partition,
            object,
            version,
            rights,
            region,
            expires,
            key_kind,
            min_protection,
        })
    }
}

/// A complete capability: public portion plus the private key material.
///
/// Held by clients; the private portion never crosses the wire in a request
/// (only digests keyed by it do).
#[derive(Clone, PartialEq, Eq)]
pub struct Capability {
    /// The public portion, sent with every request.
    pub public: CapabilityPublic,
    /// The private portion, used to key request digests.
    pub private: Digest,
}

impl Capability {
    /// Compute the digest for a request under this capability:
    /// `HMAC(private, nonce || args)`.
    #[must_use]
    pub fn sign_request(&self, nonce: Nonce, args: &[u8]) -> RequestDigest {
        let mut keyed = nasd_crypto::HmacSha256::new(self.private.as_bytes());
        keyed.update(&nonce.to_wire());
        keyed.update(args);
        RequestDigest(keyed.finalize())
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Redact the private portion.
        f.debug_struct("Capability")
            .field("public", &self.public)
            .field("private", &"<redacted>")
            .finish()
    }
}

/// MAC over a request's arguments, keyed by a capability's private field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestDigest(pub Digest);

impl RequestDigest {
    /// Constant-time comparison with another digest.
    #[must_use]
    pub fn verify(&self, other: &RequestDigest) -> bool {
        nasd_crypto::ct_eq(self.0.as_ref(), other.0.as_ref())
    }
}

impl WireEncode for RequestDigest {
    fn encode(&self, w: &mut WireWriter) {
        w.raw(self.0.as_bytes());
    }
}

impl WireDecode for RequestDigest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        // `raw(32)` guarantees the length; the fallback is a typed
        // error, not a panic, keeping the decode path panic-free.
        let arr = <[u8; 32]>::try_from(r.raw(32)?).map_err(|_| DecodeError::Truncated {
            needed: 32,
            remaining: r.remaining(),
        })?;
        Ok(RequestDigest(Digest::from(arr)))
    }
}

/// The security header of a request (Figure 5): which protections the
/// client applied and the anti-replay nonce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SecurityHeader {
    /// Protection level actually applied to this request.
    pub protection: ProtectionLevel,
    /// Anti-replay nonce.
    pub nonce: Nonce,
}

impl WireEncode for SecurityHeader {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.protection.to_byte());
        self.nonce.encode(w);
    }
}

impl WireDecode for SecurityHeader {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let pl = r.u8()?;
        let protection = ProtectionLevel::from_byte(pl).ok_or(DecodeError::BadTag {
            context: "protection level",
            value: u64::from(pl),
        })?;
        let nonce = Nonce::decode(r)?;
        Ok(SecurityHeader { protection, nonce })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_public() -> CapabilityPublic {
        CapabilityPublic {
            drive: DriveId(1),
            partition: PartitionId(2),
            object: ObjectId(3),
            version: Version(4),
            rights: Rights::READ | Rights::GETATTR,
            region: ByteRange::new(0, 1 << 20),
            expires: 10_000,
            key_kind: KeyKind::Gold,
            min_protection: ProtectionLevel::ArgsIntegrity,
        }
    }

    #[test]
    fn public_wire_roundtrip() {
        let p = sample_public();
        assert_eq!(CapabilityPublic::from_wire(&p.to_wire()).unwrap(), p);
    }

    #[test]
    fn private_depends_on_every_field() {
        let key = SecretKey::from_bytes([5u8; 32]);
        let base = sample_public();
        let base_priv = base.private_under(&key);

        let mut alt = base.clone();
        alt.object = ObjectId(99);
        assert_ne!(alt.private_under(&key), base_priv);

        let mut alt = base.clone();
        alt.rights = Rights::ALL;
        assert_ne!(alt.private_under(&key), base_priv);

        let mut alt = base.clone();
        alt.version = Version(5);
        assert_ne!(alt.private_under(&key), base_priv);

        let mut alt = base.clone();
        alt.expires = 10_001;
        assert_ne!(alt.private_under(&key), base_priv);

        let mut alt = base;
        alt.region = ByteRange::new(0, 1 << 19);
        assert_ne!(alt.private_under(&key), base_priv);
    }

    #[test]
    fn private_depends_on_key() {
        let p = sample_public();
        let k1 = SecretKey::from_bytes([1u8; 32]);
        let k2 = SecretKey::from_bytes([2u8; 32]);
        assert_ne!(p.private_under(&k1), p.private_under(&k2));
    }

    #[test]
    fn sign_request_changes_with_nonce_and_args() {
        let cap = sample_public().mint(&SecretKey::from_bytes([7u8; 32]));
        let d1 = cap.sign_request(Nonce::new(1, 1), b"args");
        let d2 = cap.sign_request(Nonce::new(1, 2), b"args");
        let d3 = cap.sign_request(Nonce::new(1, 1), b"argz");
        assert!(!d1.verify(&d2));
        assert!(!d1.verify(&d3));
        assert!(d1.verify(&cap.sign_request(Nonce::new(1, 1), b"args")));
    }

    #[test]
    fn drive_can_recompute_private() {
        // The validator-side flow: drive receives the public portion,
        // recomputes the private field from its working key, and verifies
        // the request digest — no state from the file manager needed.
        let key = SecretKey::from_bytes([9u8; 32]);
        let cap = sample_public().mint(&key);
        let nonce = Nonce::new(3, 17);
        let digest = cap.sign_request(nonce, b"read 0..4096");

        // Drive side:
        let recomputed_private = cap.public.private_under(&key);
        let reconstructed = Capability {
            public: cap.public.clone(),
            private: recomputed_private,
        };
        assert!(digest.verify(&reconstructed.sign_request(nonce, b"read 0..4096")));
        assert!(!digest.verify(&reconstructed.sign_request(nonce, b"read 0..8192")));
    }

    #[test]
    fn security_header_roundtrip() {
        let h = SecurityHeader {
            protection: ProtectionLevel::DataIntegrity,
            nonce: Nonce::new(8, 21),
        };
        assert_eq!(SecurityHeader::from_wire(&h.to_wire()).unwrap(), h);
    }

    #[test]
    fn debug_redacts_private() {
        let cap = sample_public().mint(&SecretKey::from_bytes([7u8; 32]));
        assert!(format!("{cap:?}").contains("<redacted>"));
    }

    #[test]
    fn request_digest_roundtrip() {
        let cap = sample_public().mint(&SecretKey::from_bytes([7u8; 32]));
        let d = cap.sign_request(Nonce::new(0, 0), b"x");
        assert_eq!(RequestDigest::from_wire(&d.to_wire()).unwrap(), d);
    }

    #[test]
    fn protection_levels_ordered() {
        assert!(ProtectionLevel::ArgsIntegrity < ProtectionLevel::DataIntegrity);
        assert!(ProtectionLevel::DataIntegrity < ProtectionLevel::Privacy);
    }
}
