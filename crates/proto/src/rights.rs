//! Access rights carried in capabilities.

use crate::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A set of operations a capability authorizes.
///
/// Implemented as a small hand-rolled bitflag type (the `bitflags` crate is
/// outside the allowed dependency set). Each flag corresponds to a drive
/// request family in §4.1.
///
/// # Example
///
/// ```
/// use nasd_proto::Rights;
/// let rw = Rights::READ | Rights::WRITE;
/// assert!(rw.allows(Rights::READ | Rights::WRITE));
/// assert!(!rw.allows(Rights::SETATTR));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rights(u16);

impl Rights {
    /// No rights.
    pub const NONE: Rights = Rights(0);
    /// Read object data.
    pub const READ: Rights = Rights(1 << 0);
    /// Write object data.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Read object attributes.
    pub const GETATTR: Rights = Rights(1 << 2);
    /// Write object attributes (the filesystem-specific block and hints).
    pub const SETATTR: Rights = Rights(1 << 3);
    /// Create objects in the partition.
    pub const CREATE: Rights = Rights(1 << 4);
    /// Remove objects from the partition.
    pub const REMOVE: Rights = Rights(1 << 5);
    /// Construct a copy-on-write version of the object.
    pub const SNAPSHOT: Rights = Rights(1 << 6);
    /// Truncate / resize object data.
    pub const RESIZE: Rights = Rights(1 << 7);
    /// All of the above.
    pub const ALL: Rights = Rights(0xff);

    /// Whether every right in `needed` is present in `self`.
    #[must_use]
    pub fn allows(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Whether no rights are present.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bit pattern.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Reconstruct from raw bits, rejecting undefined bits.
    #[must_use]
    pub fn from_bits(bits: u16) -> Option<Rights> {
        if bits & !Rights::ALL.0 != 0 {
            None
        } else {
            Some(Rights(bits))
        }
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitOrAssign for Rights {
    fn bitor_assign(&mut self, rhs: Rights) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rights({self})")
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let names = [
            (Rights::READ, "read"),
            (Rights::WRITE, "write"),
            (Rights::GETATTR, "getattr"),
            (Rights::SETATTR, "setattr"),
            (Rights::CREATE, "create"),
            (Rights::REMOVE, "remove"),
            (Rights::SNAPSHOT, "snapshot"),
            (Rights::RESIZE, "resize"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.allows(flag) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

impl WireEncode for Rights {
    fn encode(&self, w: &mut WireWriter) {
        w.u16(self.0);
    }
}

impl WireDecode for Rights {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let bits = r.u16()?;
        Rights::from_bits(bits).ok_or(DecodeError::BadTag {
            context: "rights",
            value: u64::from(bits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireDecode, WireEncode};

    #[test]
    fn allows_subset_semantics() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.allows(Rights::READ));
        assert!(rw.allows(Rights::NONE));
        assert!(rw.allows(rw));
        assert!(!rw.allows(Rights::READ | Rights::CREATE));
        assert!(Rights::ALL.allows(rw));
    }

    #[test]
    fn display_names() {
        assert_eq!(Rights::NONE.to_string(), "none");
        assert_eq!((Rights::READ | Rights::GETATTR).to_string(), "read|getattr");
        assert_eq!(
            Rights::ALL.to_string(),
            "read|write|getattr|setattr|create|remove|snapshot|resize"
        );
    }

    #[test]
    fn from_bits_rejects_undefined() {
        assert_eq!(Rights::from_bits(0x100), None);
        assert_eq!(Rights::from_bits(0xff), Some(Rights::ALL));
    }

    #[test]
    fn wire_roundtrip_and_reject() {
        let r = Rights::READ | Rights::SNAPSHOT;
        assert_eq!(Rights::from_wire(&r.to_wire()).unwrap(), r);

        let mut w = crate::wire::WireWriter::new();
        w.u16(0xffff);
        assert!(Rights::from_wire(&w.into_vec()).is_err());
    }

    #[test]
    fn bitand_intersects() {
        let a = Rights::READ | Rights::WRITE;
        let b = Rights::WRITE | Rights::CREATE;
        assert_eq!(a & b, Rights::WRITE);
    }

    #[test]
    fn bitor_assign() {
        let mut r = Rights::READ;
        r |= Rights::WRITE;
        assert_eq!(r, Rights::READ | Rights::WRITE);
    }
}
