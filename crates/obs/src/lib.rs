//! Sim-clock-native observability for the NASD reproduction.
//!
//! The paper's entire argument is quantitative — Figures 4/6/7/9 and
//! Table 1 compare throughput, per-request CPU cost, and scaling knees —
//! so the reproduction needs a measurement layer of its own. This crate
//! is that layer, and it sits *below* the simulation kernel so every
//! other crate can use it:
//!
//! * [`SimTime`] — the simulated clock type. It lives here (and is
//!   re-exported by `nasd-sim`) because every metric and trace event is
//!   keyed on simulated time, never the wall clock: observability must
//!   not break the determinism invariant (nasd-lint rule D1) that makes
//!   chaos runs replayable.
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, log-bucketed
//!   [`Histogram`]s and per-resource [`Utilization`] interval sets.
//!   Handles are `Arc`s over atomics: resolve once, record per request.
//! * [`TraceSink`] — a bounded ring buffer of structured [`TraceEvent`]s
//!   (request id, drive id, op, phase) with a JSONL dump for debugging
//!   chaos-test failures.
//! * [`BenchReport`] — the versioned machine-readable schema every
//!   `nasd-bench` binary emits under `--json`, built on a dependency-free
//!   [`Json`] value type (the workspace's serde is an offline no-op shim).
//! * [`Throughput`] / [`UtilizationTracker`] — the original `nasd-sim`
//!   accounting helpers, folded in here and re-exported from `nasd-sim`
//!   for compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datapath;
pub mod json;
mod metrics;
mod report;
mod stats;
mod time;
mod trace;

pub use json::{Json, JsonError};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, Utilization,
    UtilizationSnapshot,
};
pub use report::{BenchReport, SchemaError, BENCH_REPORT_SCHEMA, BENCH_SUITE_SCHEMA};
pub use stats::{Throughput, UtilizationTracker};
pub use time::SimTime;
pub use trace::{TraceEvent, TraceSink};
