//! The versioned, machine-readable benchmark report.
//!
//! Every `nasd-bench` binary can emit its tables as a [`BenchReport`]
//! under `--json <path>`, so reproduction results can be diffed, plotted
//! and regression-checked without scraping ASCII tables. The schema is
//! versioned (`nasd-bench-report/v1`); [`BenchReport::from_json`]
//! validates the version and shape so a checked-in baseline that drifts
//! from the code fails loudly rather than silently misparsing.

use std::path::Path;

use crate::json::Json;

/// Schema identifier for a single report.
pub const BENCH_REPORT_SCHEMA: &str = "nasd-bench-report/v1";
/// Schema identifier for a suite (the output of `benchjson baseline`).
pub const BENCH_SUITE_SCHEMA: &str = "nasd-bench-suite/v1";

/// A report failed schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// What was wrong.
    pub message: String,
}

impl SchemaError {
    fn new(message: impl Into<String>) -> Self {
        SchemaError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bench report schema error: {}", self.message)
    }
}

impl std::error::Error for SchemaError {}

/// One benchmark's results in machine-readable form.
///
/// `rows` mirrors the bench's printed table: one entry per table row,
/// each an ordered list of `(column, value)` cells. `config` records the
/// knobs the run was parameterized with, `derived` holds scalar
/// summaries (a knee point, an aggregate bandwidth), and `metrics`
/// optionally embeds a [`Registry`](crate::Registry) snapshot taken
/// during the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Benchmark name, e.g. `"fig6"` or `"table1"`.
    pub bench: String,
    /// Run parameters, in insertion order.
    pub config: Vec<(String, Json)>,
    /// Table rows; each row is an ordered list of `(column, value)`.
    pub rows: Vec<Vec<(String, Json)>>,
    /// Scalar summary values.
    pub derived: Vec<(String, f64)>,
    /// Optional embedded metrics snapshot (`MetricsSnapshot::to_json`).
    pub metrics: Option<Json>,
}

impl BenchReport {
    /// An empty report for benchmark `bench`.
    #[must_use]
    pub fn new(bench: impl Into<String>) -> Self {
        BenchReport {
            bench: bench.into(),
            ..BenchReport::default()
        }
    }

    /// Record a run parameter (fluent).
    #[must_use]
    pub fn with_config(mut self, key: impl Into<String>, value: Json) -> Self {
        self.config.push((key.into(), value));
        self
    }

    /// Record a scalar summary (fluent).
    #[must_use]
    pub fn with_derived(mut self, key: impl Into<String>, value: f64) -> Self {
        self.derived.push((key.into(), value));
        self
    }

    /// Embed a metrics snapshot (fluent).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Json) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Append a table row given `(column, value)` cells.
    pub fn push_row(&mut self, cells: Vec<(&str, Json)>) {
        self.rows
            .push(cells.into_iter().map(|(k, v)| (k.to_owned(), v)).collect());
    }

    /// As a JSON object under [`BENCH_REPORT_SCHEMA`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("schema".to_owned(), Json::str(BENCH_REPORT_SCHEMA)),
            ("bench".to_owned(), Json::str(self.bench.clone())),
            ("config".to_owned(), Json::Obj(self.config.clone())),
            (
                "rows".to_owned(),
                Json::Arr(self.rows.iter().map(|r| Json::Obj(r.clone())).collect()),
            ),
            (
                "derived".to_owned(),
                Json::Obj(
                    self.derived
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(metrics) = &self.metrics {
            obj.push(("metrics".to_owned(), metrics.clone()));
        }
        Json::Obj(obj)
    }

    /// Serialize compactly.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Parse and validate a report object.
    ///
    /// # Errors
    ///
    /// [`SchemaError`] when the schema tag, `bench` name or row shape is
    /// missing or malformed.
    pub fn from_json(json: &Json) -> Result<BenchReport, SchemaError> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError::new("missing `schema` tag"))?;
        if schema != BENCH_REPORT_SCHEMA {
            return Err(SchemaError::new(format!(
                "schema `{schema}` is not `{BENCH_REPORT_SCHEMA}`"
            )));
        }
        let bench = json
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError::new("missing `bench` name"))?
            .to_owned();
        let config = match json.get("config") {
            None => Vec::new(),
            Some(c) => c
                .as_obj()
                .ok_or_else(|| SchemaError::new("`config` is not an object"))?
                .to_vec(),
        };
        let rows_json = json
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| SchemaError::new("missing `rows` array"))?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, row) in rows_json.iter().enumerate() {
            rows.push(
                row.as_obj()
                    .ok_or_else(|| SchemaError::new(format!("row {i} is not an object")))?
                    .to_vec(),
            );
        }
        let mut derived = Vec::new();
        if let Some(d) = json.get("derived") {
            for (k, v) in d
                .as_obj()
                .ok_or_else(|| SchemaError::new("`derived` is not an object"))?
            {
                let n = v
                    .as_f64()
                    .ok_or_else(|| SchemaError::new(format!("derived `{k}` is not a number")))?;
                derived.push((k.clone(), n));
            }
        }
        Ok(BenchReport {
            bench,
            config,
            rows,
            derived,
            metrics: json.get("metrics").cloned(),
        })
    }

    /// Parse and validate a report from its textual form.
    ///
    /// # Errors
    ///
    /// [`SchemaError`] on malformed JSON or schema violations.
    pub fn from_json_str(text: &str) -> Result<BenchReport, SchemaError> {
        let json = Json::parse(text).map_err(|e| SchemaError::new(e.to_string()))?;
        BenchReport::from_json(&json)
    }

    /// Write the report to `path` as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty_string())
    }

    /// Bundle several reports into a suite object under
    /// [`BENCH_SUITE_SCHEMA`] (what `benchjson baseline` emits).
    #[must_use]
    pub fn suite_to_json(reports: &[BenchReport]) -> Json {
        Json::Obj(vec![
            ("schema".to_owned(), Json::str(BENCH_SUITE_SCHEMA)),
            (
                "reports".to_owned(),
                Json::Arr(reports.iter().map(BenchReport::to_json).collect()),
            ),
        ])
    }

    /// Parse and validate a suite object back into its reports.
    ///
    /// # Errors
    ///
    /// [`SchemaError`] when the suite tag is wrong or any member report
    /// is malformed.
    pub fn suite_from_json(json: &Json) -> Result<Vec<BenchReport>, SchemaError> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError::new("missing suite `schema` tag"))?;
        if schema != BENCH_SUITE_SCHEMA {
            return Err(SchemaError::new(format!(
                "schema `{schema}` is not `{BENCH_SUITE_SCHEMA}`"
            )));
        }
        json.get("reports")
            .and_then(Json::as_arr)
            .ok_or_else(|| SchemaError::new("missing `reports` array"))?
            .iter()
            .map(BenchReport::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut report = BenchReport::new("fig6")
            .with_config("block_size", Json::num_u64(8192))
            .with_config("variant", Json::str("reads"))
            .with_derived("peak_mb_s", 6.2);
        report.push_row(vec![
            ("size", Json::num_u64(512)),
            ("raw_read", Json::Num(1.75)),
        ]);
        report.push_row(vec![
            ("size", Json::num_u64(65536)),
            ("raw_read", Json::Num(5.0)),
        ]);
        report
    }

    #[test]
    fn report_round_trips() {
        let report = sample();
        let back = BenchReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        // Pretty form parses to the same report too.
        let pretty = report.to_json().to_pretty_string();
        assert_eq!(BenchReport::from_json_str(&pretty).unwrap(), report);
    }

    #[test]
    fn report_with_metrics_round_trips() {
        let report = sample().with_metrics(Json::parse(r#"{"counters":{"ops":9}}"#).unwrap());
        let back = BenchReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        assert_eq!(
            back.metrics
                .as_ref()
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("ops"))
                .and_then(Json::as_u64),
            Some(9)
        );
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = BenchReport::from_json_str(
            r#"{"schema":"nasd-bench-report/v0","bench":"x","rows":[]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("v0"), "{err}");
        assert!(BenchReport::from_json_str(r#"{"bench":"x","rows":[]}"#).is_err());
        assert!(BenchReport::from_json_str("{not json").is_err());
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        let base = format!(r#"{{"schema":"{BENCH_REPORT_SCHEMA}","bench":"x""#);
        for tail in [
            r#","rows":[1]}"#,
            r#","rows":[],"config":3}"#,
            r#","rows":[],"derived":{"k":"not a number"}}"#,
            r#"}"#, // no rows at all
        ] {
            let text = format!("{base}{tail}");
            assert!(BenchReport::from_json_str(&text).is_err(), "{text}");
        }
    }

    #[test]
    fn suite_round_trips() {
        let reports = vec![sample(), BenchReport::new("table1")];
        let suite = BenchReport::suite_to_json(&reports);
        let back = BenchReport::suite_from_json(&suite).unwrap();
        assert_eq!(back, reports);
        assert!(BenchReport::suite_from_json(&sample().to_json()).is_err());
    }

    #[test]
    fn write_to_emits_valid_file() {
        let path = std::env::temp_dir().join("nasd_obs_report_test.json");
        sample().write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(BenchReport::from_json_str(&text).unwrap(), sample());
        let _ = std::fs::remove_file(&path);
    }
}
