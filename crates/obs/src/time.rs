//! Simulated time.
//!
//! `SimTime` is defined here, at the bottom of the crate graph, so the
//! observability primitives can be keyed on it; `nasd-sim` re-exports it
//! and the rest of the workspace keeps using `nasd_sim::SimTime`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// One type serves both roles, as with `std::time::Duration` arithmetic on
/// instants; simulations start at `SimTime::ZERO`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// As nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// As whole microseconds (truncating).
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// As whole milliseconds (truncating).
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// As fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    #[must_use]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    // nasd-lint: allow(transitive-panic, "simulated-clock arithmetic: checked_add makes overflow a deliberate abort; it means a sim bug, not hostile input")
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("sim time underflow"))
    }
}

fn fmt_time(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_time(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_time(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_millis(), 500);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(8));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
