//! A dependency-free JSON value, writer and parser.
//!
//! The workspace's `serde` is an offline no-op shim (see `shims/README.md`),
//! so machine-readable output is hand-rolled here. The representation is
//! deliberately small: objects preserve insertion order (a serialized
//! report re-parses and re-serializes to the identical string, which is
//! what the golden-file tests pin down), and numbers are `f64` — every
//! quantity the benches emit fits in the 53-bit exact-integer range.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on parse and write.
    Obj(Vec<(String, Json)>),
}

/// A parse or navigation error, with a byte offset when parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A number from any integer that fits exactly in an `f64`.
    #[must_use]
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if possible.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation (for checked-in baselines a
    /// human will diff).
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parse a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes.get(self.pos..self.pos + word.len()) == Some(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = self
                    .bytes
                    .get(start..self.pos)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| self.err("invalid utf-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\"", "1e-3"] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_json_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_json_string(), "5");
        assert_eq!(Json::num_u64(12345).to_json_string(), "12345");
        assert_eq!(Json::Num(2.5).to_json_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_json_string(), "null");
    }

    #[test]
    fn object_order_preserved() {
        let text = r#"{"b":1,"a":[true,{"x":null}],"c":"z"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_json_string(), text);
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::str("line\none\t\"quoted\" \\ back\u{1}");
        let parsed = Json::parse(&original.to_json_string()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let v = Json::parse(r#"{"rows":[{"a":1},{"a":2}],"empty":[],"n":{}}"#).unwrap();
        assert_eq!(Json::parse(&v.to_pretty_string()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["", "{", "[1,", "\"open", "{\"a\" 1}", "01x", "[1] junk"] {
            assert!(Json::parse(text).is_err(), "{text}");
        }
    }

    #[test]
    fn float_precision_survives() {
        let v = Json::Num(6.207_614_213_197_97);
        let back = Json::parse(&v.to_json_string()).unwrap();
        assert_eq!(back, v);
    }
}
