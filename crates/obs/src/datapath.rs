//! Data-path and kernel perf counters (`datapath/bytes_copied`,
//! `sim/event_allocs`).
//!
//! These back the `perf` bench harness, not the figure experiments: the
//! figures measure *simulated* time, while these count real work the
//! host CPU performs per operation — payload memcpies on the read/write
//! path and infrastructure growth inside the simulation kernel. They are
//! deliberately **not** [`Registry`](crate::Registry) counters: the
//! Table 1 report embeds a full registry snapshot, and its baseline JSON
//! must stay byte-identical across perf work.
//!
//! Counters are per-thread (the copy ledger lives in the `bytes` shim,
//! which every payload copy already flows through), so parallel test
//! threads never observe each other's traffic.

use std::cell::Cell;

thread_local! {
    static EVENT_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Payload bytes memcpied on this thread since the last
/// [`reset`] — every copy the `bytes` shim performs or is told about.
#[must_use]
pub fn bytes_copied() -> u64 {
    bytes::stats::bytes_copied()
}

/// Number of payload memcpy calls on this thread since the last
/// [`reset`].
#[must_use]
pub fn copy_calls() -> u64 {
    bytes::stats::copy_calls()
}

/// Record `n` simulation-kernel infrastructure allocations (event-slab
/// or heap growth) on this thread.
pub fn record_event_allocs(n: u64) {
    EVENT_ALLOCS.with(|c| c.set(c.get() + n));
}

/// Simulation-kernel infrastructure allocations on this thread since the
/// last [`reset`].
#[must_use]
pub fn event_allocs() -> u64 {
    EVENT_ALLOCS.with(Cell::get)
}

/// Zero this thread's data-path and kernel counters.
pub fn reset() {
    bytes::stats::reset();
    EVENT_ALLOCS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        let _ = bytes::Bytes::copy_from_slice(b"12345");
        record_event_allocs(3);
        assert_eq!(bytes_copied(), 5);
        assert_eq!(copy_calls(), 1);
        assert_eq!(event_allocs(), 3);
        reset();
        assert_eq!(bytes_copied(), 0);
        assert_eq!(event_allocs(), 0);
    }
}
