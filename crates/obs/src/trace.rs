//! A bounded ring buffer of structured trace events.
//!
//! Tracing complements the aggregate [`Registry`](crate::Registry): when a
//! chaos run fails, the last few thousand events — which request, which
//! drive, which phase, how long — are usually enough to localize the
//! divergence without re-running. The ring is bounded so always-on
//! tracing cannot grow without limit; overflow evicts the oldest event
//! and counts it in [`TraceSink::dropped`].
//!
//! This file is on the nasd-lint P1 sweep: no panics, no bare indexing.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::Json;
use crate::time::SimTime;

/// One structured event on the request path.
///
/// `op` and `phase` are `&'static str` by design: event labels are code,
/// not data, and this keeps recording allocation-free unless `detail` is
/// used.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event occurred.
    pub at: SimTime,
    /// Duration of the phase, if it has one.
    pub dur: SimTime,
    /// Request identifier (0 when not tied to a request).
    pub request: u64,
    /// Drive identifier (0 when not tied to a drive).
    pub drive: u64,
    /// Operation label, e.g. `"read"`, `"rpc_call"`.
    pub op: &'static str,
    /// Phase label, e.g. `"queue"`, `"seek"`, `"transfer"`, `"fault"`.
    pub phase: &'static str,
    /// Free-form context (fault action, byte count, error).
    pub detail: String,
}

impl TraceEvent {
    /// An event with the given labels at time `at`; set the remaining
    /// fields with struct update syntax or the `with_*` helpers.
    #[must_use]
    pub fn new(at: SimTime, op: &'static str, phase: &'static str) -> Self {
        TraceEvent {
            at,
            op,
            phase,
            ..TraceEvent::default()
        }
    }

    /// Attach a request id.
    #[must_use]
    pub fn with_request(mut self, request: u64) -> Self {
        self.request = request;
        self
    }

    /// Attach a drive id.
    #[must_use]
    pub fn with_drive(mut self, drive: u64) -> Self {
        self.drive = drive;
        self
    }

    /// Attach a duration.
    #[must_use]
    pub fn with_dur(mut self, dur: SimTime) -> Self {
        self.dur = dur;
        self
    }

    /// Attach free-form detail.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// As a JSON object (times in nanoseconds; empty fields omitted).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("at_ns".to_owned(), Json::num_u64(self.at.as_nanos())),
            ("op".to_owned(), Json::str(self.op)),
            ("phase".to_owned(), Json::str(self.phase)),
        ];
        if self.dur != SimTime::ZERO {
            obj.push(("dur_ns".to_owned(), Json::num_u64(self.dur.as_nanos())));
        }
        if self.request != 0 {
            obj.push(("request".to_owned(), Json::num_u64(self.request)));
        }
        if self.drive != 0 {
            obj.push(("drive".to_owned(), Json::num_u64(self.drive)));
        }
        if !self.detail.is_empty() {
            obj.push(("detail".to_owned(), Json::str(self.detail.clone())));
        }
        Json::Obj(obj)
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded, thread-safe sink of [`TraceEvent`]s.
pub struct TraceSink {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock();
        f.debug_struct("TraceSink")
            .field("capacity", &self.capacity)
            .field("len", &ring.events.len())
            .field("dropped", &ring.dropped)
            .finish()
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` events (at least 1), behind an
    /// `Arc` (sinks are shared by construction).
    #[must_use]
    pub fn new(capacity: usize) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        })
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// True when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted by overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// The retained events as JSON Lines (one object per line).
    #[must_use]
    pub fn to_jsonl_string(&self) -> String {
        let mut out = String::new();
        for event in self.ring.lock().events.iter() {
            out.push_str(&event.to_json().to_json_string());
            out.push('\n');
        }
        out
    }

    /// Write the retained events to `path` as JSON Lines.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn dump_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl_string().as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_stays_bounded_and_counts_drops() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.record(TraceEvent::new(SimTime::from_micros(i), "read", "queue").with_request(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let requests: Vec<u64> = sink.events().iter().map(|e| e.request).collect();
        assert_eq!(requests, vec![2, 3, 4]);
        assert_eq!(sink.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let sink = TraceSink::new(0);
        sink.record(TraceEvent::new(SimTime::ZERO, "a", "b"));
        sink.record(TraceEvent::new(SimTime::ZERO, "c", "d"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let sink = TraceSink::new(16);
        sink.record(
            TraceEvent::new(SimTime::from_millis(5), "write", "transfer")
                .with_request(7)
                .with_drive(2)
                .with_dur(SimTime::from_micros(30))
                .with_detail("8192 bytes"),
        );
        sink.record(TraceEvent::new(SimTime::from_millis(6), "write", "done"));
        let jsonl = sink.to_jsonl_string();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("at_ns").and_then(Json::as_u64), Some(5_000_000));
        assert_eq!(first.get("request").and_then(Json::as_u64), Some(7));
        assert_eq!(first.get("drive").and_then(Json::as_u64), Some(2));
        assert_eq!(
            first.get("detail").and_then(Json::as_str),
            Some("8192 bytes")
        );
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("request"), None);
        assert_eq!(second.get("dur_ns"), None);
    }

    #[test]
    fn dump_writes_file() {
        let sink = TraceSink::new(4);
        sink.record(TraceEvent::new(SimTime::ZERO, "read", "fault").with_detail("drop"));
        let path = std::env::temp_dir().join("nasd_obs_trace_test.jsonl");
        sink.dump_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"fault\""));
        let _ = std::fs::remove_file(&path);
    }
}
