//! Single-owner measurement helpers: throughput meters and busy/idle
//! tracking.
//!
//! These predate the shared [`Registry`](crate::Registry) and remain the
//! right tool when one harness owns the meter (`&mut self`, no atomics);
//! `nasd-sim` re-exports them for compatibility. For cross-thread or
//! cross-subsystem accounting use [`Counter`](crate::Counter) /
//! [`Utilization`](crate::Utilization) instead.

use crate::time::SimTime;

/// Accumulates bytes moved over a window and reports MB/s.
///
/// Figure 7 and Figure 9 report aggregate application bandwidth; this
/// meter is what the harnesses read at the end of a run.
///
/// # Example
///
/// ```
/// use nasd_obs::{SimTime, Throughput};
/// let mut t = Throughput::new();
/// t.record(SimTime::from_secs(1), 6_200_000);
/// assert!((t.mbytes_per_sec(SimTime::from_secs(1)) - 6.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    operations: u64,
    last_event: SimTime,
}

impl Throughput {
    /// Create an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Throughput::default()
    }

    /// Record `bytes` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.bytes += bytes;
        self.operations += 1;
        self.last_event = self.last_event.max(at);
    }

    /// Total bytes recorded.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Time of the last recorded completion.
    #[must_use]
    pub fn last_event(&self) -> SimTime {
        self.last_event
    }

    /// Mean bandwidth over `elapsed`, in decimal MB/s (the paper's unit).
    #[must_use]
    pub fn mbytes_per_sec(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / elapsed.as_secs_f64()
    }

    /// Mean operation rate over `elapsed`, in operations per second.
    #[must_use]
    pub fn ops_per_sec(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.operations as f64 / elapsed.as_secs_f64()
    }
}

/// Tracks the busy/idle timeline of an entity (a client or drive CPU) and
/// reports percent idle, as plotted in Figure 7.
///
/// Busy intervals may be reported out of order but must not overlap —
/// each entity is a single processor.
#[derive(Debug, Clone, Default)]
pub struct UtilizationTracker {
    busy: SimTime,
    horizon: SimTime,
}

impl UtilizationTracker {
    /// Create a tracker with no recorded activity.
    #[must_use]
    pub fn new() -> Self {
        UtilizationTracker::default()
    }

    /// Record a busy interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record_busy(&mut self, start: SimTime, end: SimTime) {
        assert!(end >= start, "busy interval ends before it starts");
        self.busy += end - start;
        self.horizon = self.horizon.max(end);
    }

    /// Total busy time recorded.
    #[must_use]
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Latest time seen.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Percent of `elapsed` spent idle (0–100).
    #[must_use]
    pub fn percent_idle(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 100.0;
        }
        let busy_frac = (self.busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0);
        (1.0 - busy_frac) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_accumulates() {
        let mut t = Throughput::new();
        t.record(SimTime::from_secs(1), 1_000_000);
        t.record(SimTime::from_secs(2), 3_000_000);
        assert_eq!(t.bytes(), 4_000_000);
        assert_eq!(t.operations(), 2);
        assert_eq!(t.last_event(), SimTime::from_secs(2));
        assert!((t.mbytes_per_sec(SimTime::from_secs(2)) - 2.0).abs() < 1e-12);
        assert!((t.ops_per_sec(SimTime::from_secs(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_zero_window() {
        let t = Throughput::new();
        assert_eq!(t.mbytes_per_sec(SimTime::ZERO), 0.0);
        assert_eq!(t.ops_per_sec(SimTime::ZERO), 0.0);
    }

    #[test]
    fn idle_percentage() {
        let mut u = UtilizationTracker::new();
        u.record_busy(SimTime::from_millis(0), SimTime::from_millis(30));
        u.record_busy(SimTime::from_millis(50), SimTime::from_millis(70));
        assert_eq!(u.busy_time(), SimTime::from_millis(50));
        assert!((u.percent_idle(SimTime::from_millis(100)) - 50.0).abs() < 1e-9);
        assert_eq!(u.horizon(), SimTime::from_millis(70));
    }

    #[test]
    fn idle_with_no_activity_is_100() {
        let u = UtilizationTracker::new();
        assert_eq!(u.percent_idle(SimTime::from_secs(1)), 100.0);
        assert_eq!(u.percent_idle(SimTime::ZERO), 100.0);
    }

    #[test]
    #[should_panic(expected = "busy interval")]
    fn inverted_interval_panics() {
        let mut u = UtilizationTracker::new();
        u.record_busy(SimTime::from_millis(2), SimTime::from_millis(1));
    }
}
