//! The shared metric registry: counters, gauges, log-bucketed histograms
//! and busy-interval utilization sets.
//!
//! Handles are `Arc`s over atomics (or a short critical section for
//! [`Utilization`]): resolve a handle once at wiring time, then record on
//! every request without touching the registry map again. All values are
//! keyed on [`SimTime`] where time is involved — never the wall clock —
//! so enabling metrics cannot perturb a deterministic chaos replay.
//!
//! This file is on the nasd-lint P1 sweep: no panics, no bare indexing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::Json;
use crate::time::SimTime;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, open handles).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
const BUCKETS: usize = 65;

/// A lock-free histogram over `u64` samples with power-of-two buckets.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds samples in
/// `[2^(i-1), 2^i)`. That gives ~2x resolution — coarse, but free to
/// record (one `fetch_add`) and exactly mergeable, which is what a
/// per-request latency/size metric needs.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Index of the bucket holding sample `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`, used as its representative value.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Fold another histogram's samples into this one.
    pub fn merge_from(&self, other: &Histogram) {
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile sample
    /// (`p` in 0–100), or 0 with no samples. Accurate to the 2x bucket
    /// width.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * count as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// A point-in-time summary.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median bucket bound.
    pub p50: u64,
    /// 95th-percentile bucket bound.
    pub p95: u64,
    /// 99th-percentile bucket bound.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// As a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_owned(), Json::num_u64(self.count)),
            ("sum".to_owned(), Json::num_u64(self.sum)),
            ("mean".to_owned(), Json::Num(self.mean)),
            ("p50".to_owned(), Json::num_u64(self.p50)),
            ("p95".to_owned(), Json::num_u64(self.p95)),
            ("p99".to_owned(), Json::num_u64(self.p99)),
        ])
    }
}

/// Busy-interval tracking for a shared resource (a drive arm, a link).
///
/// Overlapping and out-of-order intervals are coalesced into a sorted
/// disjoint set, so concurrent reservations on a shared resource don't
/// double-count busy time the way the scalar
/// [`UtilizationTracker`](crate::UtilizationTracker) would. Inverted or
/// empty intervals are ignored rather than panicking (P1).
#[derive(Debug, Default)]
pub struct Utilization {
    /// Sorted, pairwise-disjoint `[start, end)` intervals in nanoseconds.
    intervals: Mutex<Vec<(u64, u64)>>,
}

impl Utilization {
    /// An empty interval set.
    #[must_use]
    pub fn new() -> Self {
        Utilization::default()
    }

    /// Record a busy interval `[start, end)`; empty or inverted intervals
    /// are ignored.
    pub fn record_busy(&self, start: SimTime, end: SimTime) {
        let (s, e) = (start.as_nanos(), end.as_nanos());
        if e <= s {
            return;
        }
        let mut iv = self.intervals.lock();
        // First interval that ends at-or-after `s` (touching coalesces),
        // and first that starts strictly after `e`: everything in between
        // merges with [s, e).
        let lo = iv.partition_point(|&(_, int_end)| int_end < s);
        let hi = iv.partition_point(|&(int_start, _)| int_start <= e);
        let mut merged_start = s;
        let mut merged_end = e;
        if lo < hi {
            if let Some(&(a, _)) = iv.get(lo) {
                merged_start = merged_start.min(a);
            }
            if let Some(&(_, b)) = iv.get(hi - 1) {
                merged_end = merged_end.max(b);
            }
        }
        iv.splice(lo..hi, std::iter::once((merged_start, merged_end)));
    }

    /// Total busy time across all coalesced intervals.
    #[must_use]
    pub fn busy_time(&self) -> SimTime {
        let ns: u64 = self.intervals.lock().iter().map(|&(s, e)| e - s).sum();
        SimTime::from_nanos(ns)
    }

    /// End of the latest busy interval.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        let ns = self.intervals.lock().last().map_or(0, |&(_, e)| e);
        SimTime::from_nanos(ns)
    }

    /// Percent of `elapsed` spent idle (0–100).
    #[must_use]
    pub fn percent_idle(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 100.0;
        }
        let busy = (self.busy_time().as_secs_f64() / elapsed.as_secs_f64()).min(1.0);
        (1.0 - busy) * 100.0
    }

    /// The coalesced interval set.
    #[must_use]
    pub fn intervals(&self) -> Vec<(SimTime, SimTime)> {
        self.intervals
            .lock()
            .iter()
            .map(|&(s, e)| (SimTime::from_nanos(s), SimTime::from_nanos(e)))
            .collect()
    }

    /// A point-in-time summary.
    #[must_use]
    pub fn snapshot(&self) -> UtilizationSnapshot {
        let iv = self.intervals.lock();
        UtilizationSnapshot {
            busy: SimTime::from_nanos(iv.iter().map(|&(s, e)| e - s).sum()),
            horizon: SimTime::from_nanos(iv.last().map_or(0, |&(_, e)| e)),
            intervals: iv.len() as u64,
        }
    }
}

/// Summary of a [`Utilization`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtilizationSnapshot {
    /// Total coalesced busy time.
    pub busy: SimTime,
    /// End of the latest interval.
    pub horizon: SimTime,
    /// Number of disjoint intervals after coalescing.
    pub intervals: u64,
}

impl UtilizationSnapshot {
    /// As a JSON object (times in nanoseconds).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("busy_ns".to_owned(), Json::num_u64(self.busy.as_nanos())),
            (
                "horizon_ns".to_owned(),
                Json::num_u64(self.horizon.as_nanos()),
            ),
            ("intervals".to_owned(), Json::num_u64(self.intervals)),
        ])
    }
}

/// A namespace of metrics, keyed by name.
///
/// `counter`/`gauge`/`histogram`/`utilization` are get-or-create: the
/// first caller allocates, later callers share the same handle. Names
/// use `/`-separated paths by convention (`drive/0/cache_hits`).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    utilizations: Mutex<BTreeMap<String, Arc<Utilization>>>,
}

impl Registry {
    /// A fresh, empty registry behind an `Arc` (registries are shared by
    /// construction).
    #[must_use]
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    /// The counter named `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, creating it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The utilization set named `name`, creating it on first use.
    #[must_use]
    pub fn utilization(&self, name: &str) -> Arc<Utilization> {
        Arc::clone(
            self.utilizations
                .lock()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Utilization::new())),
        )
    }

    /// Snapshot every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            utilizations: self
                .utilizations
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Every metric in a [`Registry`] at one instant, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Utilization summaries.
    pub utilizations: Vec<(String, UtilizationSnapshot)>,
}

impl MetricsSnapshot {
    /// As a JSON object with `counters`/`gauges`/`histograms`/
    /// `utilizations` sub-objects (empty sections omitted).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Vec::new();
        if !self.counters.is_empty() {
            obj.push((
                "counters".to_owned(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num_u64(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.gauges.is_empty() {
            obj.push((
                "gauges".to_owned(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ));
        }
        if !self.histograms.is_empty() {
            obj.push((
                "histograms".to_owned(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        if !self.utilizations.is_empty() {
            obj.push((
                "utilizations".to_owned(),
                Json::Obj(
                    self.utilizations
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let h = Histogram::new();
        for v in [0, 1, 100, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5201);
        assert!((h.mean() - 1040.2).abs() < 1e-9);
        // p50 rank 3 lands in the [64,128) bucket holding the two 100s.
        assert_eq!(h.percentile(50.0), 127);
        assert_eq!(h.percentile(100.0), 8191);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p99), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
            combined.record(v);
        }
        for v in [1000u64, 10_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), combined.percentile(p));
        }
    }

    #[test]
    fn utilization_coalesces_overlap_and_touching() {
        let u = Utilization::new();
        u.record_busy(SimTime::from_millis(10), SimTime::from_millis(20));
        u.record_busy(SimTime::from_millis(15), SimTime::from_millis(25)); // overlaps
        u.record_busy(SimTime::from_millis(25), SimTime::from_millis(30)); // touches
        u.record_busy(SimTime::from_millis(50), SimTime::from_millis(60)); // disjoint
        assert_eq!(
            u.intervals(),
            vec![
                (SimTime::from_millis(10), SimTime::from_millis(30)),
                (SimTime::from_millis(50), SimTime::from_millis(60)),
            ]
        );
        assert_eq!(u.busy_time(), SimTime::from_millis(30));
        assert_eq!(u.horizon(), SimTime::from_millis(60));
        assert!((u.percent_idle(SimTime::from_millis(100)) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_out_of_order_and_bridging() {
        let u = Utilization::new();
        u.record_busy(SimTime::from_millis(40), SimTime::from_millis(50));
        u.record_busy(SimTime::from_millis(10), SimTime::from_millis(20));
        // Bridges both existing intervals.
        u.record_busy(SimTime::from_millis(15), SimTime::from_millis(45));
        assert_eq!(
            u.intervals(),
            vec![(SimTime::from_millis(10), SimTime::from_millis(50))]
        );
    }

    #[test]
    fn utilization_ignores_degenerate_intervals() {
        let u = Utilization::new();
        u.record_busy(SimTime::from_millis(5), SimTime::from_millis(5));
        u.record_busy(SimTime::from_millis(9), SimTime::from_millis(3));
        assert!(u.intervals().is_empty());
        assert_eq!(u.busy_time(), SimTime::ZERO);
        assert_eq!(u.percent_idle(SimTime::ZERO), 100.0);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("drive/0/ops");
        let b = r.counter("drive/0/ops");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(b.value(), 1);
        assert!(!Arc::ptr_eq(&a, &r.counter("drive/1/ops")));
    }

    #[test]
    fn snapshot_serializes_sorted() {
        let r = Registry::new();
        r.counter("z/ops").add(2);
        r.counter("a/ops").add(1);
        r.gauge("depth").set(-3);
        r.histogram("lat").record(7);
        r.utilization("arm")
            .record_busy(SimTime::ZERO, SimTime::from_millis(1));
        let json = r.snapshot().to_json();
        let counters = json.get("counters").and_then(Json::as_obj).unwrap();
        assert_eq!(counters[0].0, "a/ops");
        assert_eq!(counters[1].0, "z/ops");
        assert_eq!(
            json.get("gauges")
                .and_then(|g| g.get("depth"))
                .and_then(Json::as_f64),
            Some(-3.0)
        );
        assert_eq!(
            json.get("histograms")
                .and_then(|h| h.get("lat"))
                .and_then(|l| l.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("utilizations")
                .and_then(|u| u.get("arm"))
                .and_then(|a| a.get("busy_ns"))
                .and_then(Json::as_u64),
            Some(1_000_000)
        );
    }

    #[test]
    fn empty_snapshot_is_empty_object() {
        let r = Registry::new();
        assert_eq!(r.snapshot().to_json().to_json_string(), "{}");
    }
}
