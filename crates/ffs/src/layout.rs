//! On-disk layout: superblock and inode encodings.

/// Filesystem magic number ("FFS" + version).
pub const MAGIC: u64 = 0x4646_5331_4e41_5344;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 12;

/// Bytes per encoded inode on disk (20 header + 12 direct + 2 indirect
/// pointers = 132, padded for alignment and future fields).
pub const INODE_SIZE: usize = 160;

/// The superblock, stored in block 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Layout magic/version.
    pub magic: u64,
    /// Total device blocks.
    pub nblocks: u64,
    /// Number of inodes.
    pub ninodes: u64,
    /// First block of the inode bitmap.
    pub inode_bitmap_start: u64,
    /// First block of the data-block bitmap.
    pub block_bitmap_start: u64,
    /// First block of the inode table.
    pub inode_table_start: u64,
    /// First data block.
    pub data_start: u64,
    /// Number of cylinder-group-like allocation groups.
    pub ngroups: u64,
}

impl Superblock {
    /// Encode into the first bytes of a block buffer.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn encode_into(&self, buf: &mut [u8]) {
        let fields = [
            self.magic,
            self.nblocks,
            self.ninodes,
            self.inode_bitmap_start,
            self.block_bitmap_start,
            self.inode_table_start,
            self.data_start,
            self.ngroups,
        ];
        for (i, v) in fields.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_be_bytes());
        }
    }

    /// Decode from the first bytes of a block buffer; `None` if the magic
    /// does not match.
    #[must_use]
    pub fn decode_from(buf: &[u8]) -> Option<Self> {
        let get = |i: usize| u64::from_be_bytes(buf[i * 8..i * 8 + 8].try_into().ok().unwrap());
        let sb = Superblock {
            magic: get(0),
            nblocks: get(1),
            ninodes: get(2),
            inode_bitmap_start: get(3),
            block_bitmap_start: get(4),
            inode_table_start: get(5),
            data_start: get(6),
            ngroups: get(7),
        };
        if sb.magic == MAGIC {
            Some(sb)
        } else {
            None
        }
    }
}

/// An on-disk inode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskInode {
    /// 0 = free, 1 = file, 2 = directory.
    pub kind: u16,
    /// Link count.
    pub nlink: u16,
    /// File size in bytes.
    pub size: u64,
    /// Modification time (seconds).
    pub mtime: u64,
    /// Direct block pointers (0 = unallocated; block 0 is the superblock
    /// so it can never be file data).
    pub direct: [u64; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u64,
    /// Double-indirect block pointer.
    pub dindirect: u64,
}

impl DiskInode {
    /// A free inode slot.
    #[must_use]
    pub fn empty() -> Self {
        DiskInode {
            kind: 0,
            nlink: 0,
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
        }
    }

    /// Encode into `INODE_SIZE` bytes.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn encode_into(&self, buf: &mut [u8]) {
        buf[..2].copy_from_slice(&self.kind.to_be_bytes());
        buf[2..4].copy_from_slice(&self.nlink.to_be_bytes());
        buf[4..12].copy_from_slice(&self.size.to_be_bytes());
        buf[12..20].copy_from_slice(&self.mtime.to_be_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            buf[20 + i * 8..28 + i * 8].copy_from_slice(&d.to_be_bytes());
        }
        let base = 20 + NDIRECT * 8;
        buf[base..base + 8].copy_from_slice(&self.indirect.to_be_bytes());
        buf[base + 8..base + 16].copy_from_slice(&self.dindirect.to_be_bytes());
    }

    /// Decode from `INODE_SIZE` bytes.
    #[must_use]
    pub fn decode_from(buf: &[u8]) -> Self {
        let u16at = |i: usize| u16::from_be_bytes(buf[i..i + 2].try_into().unwrap());
        let u64at = |i: usize| u64::from_be_bytes(buf[i..i + 8].try_into().unwrap());
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u64at(20 + i * 8);
        }
        let base = 20 + NDIRECT * 8;
        DiskInode {
            kind: u16at(0),
            nlink: u16at(2),
            size: u64at(4),
            mtime: u64at(12),
            direct,
            indirect: u64at(base),
            dindirect: u64at(base + 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            magic: MAGIC,
            nblocks: 2048,
            ninodes: 256,
            inode_bitmap_start: 1,
            block_bitmap_start: 2,
            inode_table_start: 3,
            data_start: 10,
            ngroups: 8,
        };
        let mut buf = vec![0u8; 8192];
        sb.encode_into(&mut buf);
        assert_eq!(Superblock::decode_from(&buf), Some(sb));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 8192];
        assert_eq!(Superblock::decode_from(&buf), None);
    }

    #[test]
    fn inode_roundtrip() {
        let mut ino = DiskInode::empty();
        ino.kind = 2;
        ino.nlink = 3;
        ino.size = 123_456;
        ino.mtime = 99;
        ino.direct[0] = 42;
        ino.direct[11] = 43;
        ino.indirect = 44;
        ino.dindirect = 45;
        let mut buf = vec![0u8; INODE_SIZE];
        ino.encode_into(&mut buf);
        assert_eq!(DiskInode::decode_from(&buf), ino);
    }

    #[test]
    fn inode_fits_declared_size() {
        // 20 + 12*8 + 16 = 132: the encoding stays within bounds.
        const ENCODED: usize = 20 + NDIRECT * 8 + 16;
        const _: () = assert!(ENCODED <= INODE_SIZE);
        let mut buf = vec![0u8; INODE_SIZE];
        DiskInode::empty().encode_into(&mut buf); // must not panic
    }
}
