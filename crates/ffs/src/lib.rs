//! An FFS-like local filesystem — the baseline of Figure 6.
//!
//! The paper compares its NASD object system against "the local
//! filesystem (a variant of Berkeley's FFS)" \[McKusick84\]. This crate is
//! a compact but real fast-file-system: an on-disk layout with a
//! superblock, inode and block bitmaps, an inode table, directories, and
//! direct/single-indirect/double-indirect block pointers; cylinder-group
//! style placement (directories spread across groups, file data clustered
//! near its inode's group); and FFS's famous write acknowledgement
//! behaviour ("it acknowledges immediately for writes of up to 64 KB
//! (write-behind), and otherwise waits for disk media to be updated" —
//! Figure 6's caption) modelled in the timing harness.
//!
//! Everything persists: format, write, [`Ffs::sync`], re-mount from the
//! same device, read back.
//!
//! # Example
//!
//! ```
//! use nasd_disk::MemDisk;
//! use nasd_ffs::Ffs;
//!
//! let mut fs = Ffs::format(MemDisk::new(8192, 2048), 256)?;
//! fs.mkdir("/docs")?;
//! let ino = fs.create("/docs/paper.txt")?;
//! fs.write(ino, 0, b"network attached secure disks")?;
//! assert_eq!(&fs.read(ino, 8, 8)?[..], b"attached");
//! # Ok::<(), nasd_ffs::FfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fs;
mod layout;

pub use fs::{DirEntry, Ffs, FfsError, FileKind, InodeNo, Stat};
