//! The filesystem proper: allocation, inodes, directories, file I/O.

use crate::layout::{DiskInode, Superblock, INODE_SIZE, MAGIC, NDIRECT};
use nasd_disk::{BlockDevice, DiskError};
use std::collections::HashMap;
use std::fmt;

/// Inode number. Inode 0 is reserved; inode 1 is the root directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeNo(pub u64);

/// Root directory inode.
pub const ROOT: InodeNo = InodeNo(1);

/// Kind of a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Directory,
}

/// Result of [`Ffs::stat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: InodeNo,
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u16,
    /// Modification time.
    pub mtime: u64,
}

/// A directory entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Target inode.
    pub ino: InodeNo,
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FfsError {
    /// Path component or file not found.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// Operation needs a directory but found a file (or vice versa).
    NotADirectory(String),
    /// Directory operation on a non-empty directory.
    NotEmpty(String),
    /// Out of inodes or data blocks.
    NoSpace,
    /// Malformed path (empty, missing leading `/`, bad component).
    BadPath(String),
    /// Not a valid filesystem (bad magic on mount).
    BadSuperblock,
    /// Underlying device error.
    Disk(DiskError),
}

impl fmt::Display for FfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfsError::NotFound(p) => write!(f, "not found: {p}"),
            FfsError::Exists(p) => write!(f, "already exists: {p}"),
            FfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FfsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FfsError::NoSpace => f.write_str("no space"),
            FfsError::BadPath(p) => write!(f, "bad path: {p}"),
            FfsError::BadSuperblock => f.write_str("not an ffs filesystem"),
            FfsError::Disk(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for FfsError {}

impl From<DiskError> for FfsError {
    fn from(e: DiskError) -> Self {
        FfsError::Disk(e)
    }
}

/// The FFS-like filesystem over a block device.
pub struct Ffs<D> {
    device: D,
    sb: Superblock,
    /// In-memory inode table (write-through to device on sync).
    inodes: Vec<DiskInode>,
    inode_free: Vec<bool>,
    block_free: Vec<bool>,
    /// Dirty data blocks awaiting sync (write-behind), block -> data.
    dirty: HashMap<u64, Vec<u8>>,
    /// Clean read cache.
    clean: HashMap<u64, Vec<u8>>,
    metadata_dirty: bool,
    clock: u64,
    /// Round-robin cursor for directory placement (FFS spreads
    /// directories across cylinder groups).
    next_dir_group: u64,
}

impl<D: BlockDevice> Ffs<D> {
    /// Format `device` with `ninodes` inodes and mount it.
    ///
    /// # Errors
    ///
    /// Device errors, or `NoSpace` if the device is too small.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn format(device: D, ninodes: u64) -> Result<Self, FfsError> {
        let bs = device.block_size() as u64;
        let nblocks = device.num_blocks();
        let inode_bitmap_blocks = ninodes.div_ceil(bs * 8);
        let block_bitmap_blocks = nblocks.div_ceil(bs * 8);
        let inode_table_blocks = (ninodes * INODE_SIZE as u64).div_ceil(bs);
        let inode_bitmap_start = 1;
        let block_bitmap_start = inode_bitmap_start + inode_bitmap_blocks;
        let inode_table_start = block_bitmap_start + block_bitmap_blocks;
        let data_start = inode_table_start + inode_table_blocks;
        if data_start + 8 > nblocks {
            return Err(FfsError::NoSpace);
        }
        let sb = Superblock {
            magic: MAGIC,
            nblocks,
            ninodes,
            inode_bitmap_start,
            block_bitmap_start,
            inode_table_start,
            data_start,
            ngroups: ((nblocks - data_start) / 256).max(1),
        };
        let mut inodes = vec![DiskInode::empty(); ninodes as usize];
        let mut inode_free = vec![true; ninodes as usize];
        // Reserve inode 0; inode 1 = root directory.
        inode_free[0] = false;
        inode_free[1] = false;
        inodes[1] = DiskInode {
            kind: 2,
            nlink: 2,
            ..DiskInode::empty()
        };
        let mut block_free = vec![true; nblocks as usize];
        for b in block_free.iter_mut().take(data_start as usize) {
            *b = false;
        }
        let mut fs = Ffs {
            device,
            sb,
            inodes,
            inode_free,
            block_free,
            dirty: HashMap::new(),
            clean: HashMap::new(),
            metadata_dirty: true,
            clock: 1,
            next_dir_group: 0,
        };
        fs.sync()?;
        Ok(fs)
    }

    /// Mount an already-formatted device.
    ///
    /// # Errors
    ///
    /// [`FfsError::BadSuperblock`] if the device was never formatted.
    pub fn mount(device: D) -> Result<Self, FfsError> {
        let bs = device.block_size();
        let mut buf = vec![0u8; bs];
        device.read_block(0, &mut buf)?;
        let sb = Superblock::decode_from(&buf).ok_or(FfsError::BadSuperblock)?;

        // Load bitmaps.
        let read_bitmap = |device: &D, start: u64, bits: u64| -> Result<Vec<bool>, FfsError> {
            let mut out = Vec::with_capacity(bits as usize);
            let mut buf = vec![0u8; bs];
            let nblocks = bits.div_ceil(bs as u64 * 8);
            for i in 0..nblocks {
                device.read_block(start + i, &mut buf)?;
                for bit in 0..(bs * 8) {
                    if out.len() as u64 == bits {
                        break;
                    }
                    out.push(buf[bit / 8] & (1 << (bit % 8)) != 0);
                }
            }
            Ok(out)
        };
        let inode_free = read_bitmap(&device, sb.inode_bitmap_start, sb.ninodes)?;
        let block_free = read_bitmap(&device, sb.block_bitmap_start, sb.nblocks)?;

        // Load the inode table.
        let mut inodes = Vec::with_capacity(sb.ninodes as usize);
        let per_block = bs / INODE_SIZE;
        for i in 0..sb.ninodes as usize {
            let blk = sb.inode_table_start + (i / per_block) as u64;
            let off = (i % per_block) * INODE_SIZE;
            device.read_block(blk, &mut buf)?;
            inodes.push(DiskInode::decode_from(&buf[off..off + INODE_SIZE]));
        }

        Ok(Ffs {
            device,
            sb,
            inodes,
            inode_free,
            block_free,
            dirty: HashMap::new(),
            clean: HashMap::new(),
            metadata_dirty: false,
            clock: 1,
            next_dir_group: 0,
        })
    }

    /// The superblock (diagnostics).
    #[must_use]
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Advance the filesystem clock (drives mtimes).
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    fn bs(&self) -> usize {
        self.device.block_size()
    }

    // ----- allocation ---------------------------------------------------

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn alloc_inode(&mut self) -> Result<InodeNo, FfsError> {
        let ino = self
            .inode_free
            .iter()
            .position(|&f| f)
            .ok_or(FfsError::NoSpace)?;
        self.inode_free[ino] = false;
        self.metadata_dirty = true;
        Ok(InodeNo(ino as u64))
    }

    /// Allocate a data block, preferring allocation group `group`.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn alloc_block(&mut self, group: u64) -> Result<u64, FfsError> {
        let data_start = self.sb.data_start as usize;
        let total_data = self.sb.nblocks as usize - data_start;
        let group_size = (total_data as u64 / self.sb.ngroups).max(1) as usize;
        let start = data_start + (group as usize % self.sb.ngroups as usize) * group_size;
        // Search from the group start, wrapping.
        let n = self.sb.nblocks as usize;
        for i in 0..(n - data_start) {
            let b = data_start + (start - data_start + i) % (n - data_start);
            if self.block_free[b] {
                self.block_free[b] = false;
                self.metadata_dirty = true;
                return Ok(b as u64);
            }
        }
        Err(FfsError::NoSpace)
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn free_block(&mut self, b: u64) {
        debug_assert!(!self.block_free[b as usize], "double free of block {b}");
        self.block_free[b as usize] = true;
        self.dirty.remove(&b);
        self.clean.remove(&b);
        self.metadata_dirty = true;
    }

    fn group_of(&self, ino: InodeNo) -> u64 {
        ino.0 % self.sb.ngroups
    }

    // ----- buffer cache --------------------------------------------------

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn read_cached(&mut self, b: u64) -> Result<&[u8], FfsError> {
        if self.dirty.contains_key(&b) {
            return Ok(&self.dirty[&b]);
        }
        if !self.clean.contains_key(&b) {
            let mut buf = vec![0u8; self.bs()];
            self.device.read_block(b, &mut buf)?;
            self.clean.insert(b, buf);
        }
        Ok(&self.clean[&b])
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn write_cached(&mut self, b: u64, offset: usize, data: &[u8]) -> Result<(), FfsError> {
        let bs = self.bs();
        debug_assert!(offset + data.len() <= bs);
        if !self.dirty.contains_key(&b) {
            // Promote: full overwrite skips the read.
            let base = if offset == 0 && data.len() == bs {
                vec![0u8; bs]
            } else if let Some(clean) = self.clean.remove(&b) {
                clean
            } else {
                let mut buf = vec![0u8; bs];
                self.device.read_block(b, &mut buf)?;
                buf
            };
            self.dirty.insert(b, base);
            self.clean.remove(&b);
        }
        let buf = self.dirty.get_mut(&b).expect("just inserted");
        buf[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Flush dirty data and metadata to the device.
    ///
    /// # Errors
    ///
    /// Device errors.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn sync(&mut self) -> Result<(), FfsError> {
        let bs = self.bs();
        // Data blocks in elevator order.
        let mut blocks: Vec<u64> = self.dirty.keys().copied().collect();
        blocks.sort_unstable();
        for b in blocks {
            let data = self.dirty.remove(&b).expect("listed");
            self.device.write_block(b, &data)?;
            self.clean.insert(b, data);
        }
        if self.metadata_dirty {
            // Superblock.
            let mut buf = vec![0u8; bs];
            self.sb.encode_into(&mut buf);
            self.device.write_block(0, &buf)?;
            // Bitmaps.
            let write_bitmap =
                |device: &mut D, start: u64, bits: &[bool]| -> Result<(), FfsError> {
                    let nblocks = (bits.len() as u64).div_ceil(bs as u64 * 8);
                    for i in 0..nblocks {
                        let mut buf = vec![0u8; bs];
                        for bit in 0..(bs * 8) {
                            let idx = i as usize * bs * 8 + bit;
                            if idx >= bits.len() {
                                break;
                            }
                            if bits[idx] {
                                buf[bit / 8] |= 1 << (bit % 8);
                            }
                        }
                        device.write_block(start + i, &buf)?;
                    }
                    Ok(())
                };
            write_bitmap(
                &mut self.device,
                self.sb.inode_bitmap_start,
                &self.inode_free,
            )?;
            write_bitmap(
                &mut self.device,
                self.sb.block_bitmap_start,
                &self.block_free,
            )?;
            // Inode table.
            let per_block = bs / INODE_SIZE;
            for (chunk_idx, chunk) in self.inodes.chunks(per_block).enumerate() {
                let mut buf = vec![0u8; bs];
                for (i, ino) in chunk.iter().enumerate() {
                    ino.encode_into(&mut buf[i * INODE_SIZE..(i + 1) * INODE_SIZE]);
                }
                self.device
                    .write_block(self.sb.inode_table_start + chunk_idx as u64, &buf)?;
            }
            self.metadata_dirty = false;
        }
        Ok(())
    }

    // ----- block mapping --------------------------------------------------

    /// Device block holding logical block `l` of inode `ino`, allocating
    /// it (and any needed indirect blocks) when `allocate` is set.
    /// Returns 0 for an unallocated hole when not allocating.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn bmap(&mut self, ino: InodeNo, l: u64, allocate: bool) -> Result<u64, FfsError> {
        let bs = self.bs() as u64;
        let ptrs = bs / 8;
        let group = self.group_of(ino);
        let i = ino.0 as usize;

        if (l as usize) < NDIRECT {
            let cur = self.inodes[i].direct[l as usize];
            if cur != 0 || !allocate {
                return Ok(cur);
            }
            let b = self.alloc_block(group)?;
            self.inodes[i].direct[l as usize] = b;
            self.metadata_dirty = true;
            return Ok(b);
        }
        let l1 = l - NDIRECT as u64;
        if l1 < ptrs {
            let ind = self.indirect_block(ino, IndirectSlot::Single, allocate)?;
            if ind == 0 {
                return Ok(0);
            }
            return self.indirect_entry(ind, l1, group, allocate);
        }
        let l2 = l1 - ptrs;
        if l2 < ptrs * ptrs {
            let dind = self.indirect_block(ino, IndirectSlot::Double, allocate)?;
            if dind == 0 {
                return Ok(0);
            }
            let outer = self.indirect_entry_block(dind, l2 / ptrs, group, allocate)?;
            if outer == 0 {
                return Ok(0);
            }
            return self.indirect_entry(outer, l2 % ptrs, group, allocate);
        }
        Err(FfsError::NoSpace) // file too large for this layout
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn indirect_block(
        &mut self,
        ino: InodeNo,
        slot: IndirectSlot,
        allocate: bool,
    ) -> Result<u64, FfsError> {
        let i = ino.0 as usize;
        let cur = match slot {
            IndirectSlot::Single => self.inodes[i].indirect,
            IndirectSlot::Double => self.inodes[i].dindirect,
        };
        if cur != 0 || !allocate {
            return Ok(cur);
        }
        let b = self.alloc_block(self.group_of(ino))?;
        self.write_cached(b, 0, &vec![0u8; self.bs()])?;
        match slot {
            IndirectSlot::Single => self.inodes[i].indirect = b,
            IndirectSlot::Double => self.inodes[i].dindirect = b,
        }
        self.metadata_dirty = true;
        Ok(b)
    }

    /// Entry `idx` of indirect block `ind`, allocating a *data* block on
    /// demand.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn indirect_entry(
        &mut self,
        ind: u64,
        idx: u64,
        group: u64,
        allocate: bool,
    ) -> Result<u64, FfsError> {
        let off = (idx * 8) as usize;
        let cur = {
            let data = self.read_cached(ind)?;
            u64::from_be_bytes(data[off..off + 8].try_into().unwrap())
        };
        if cur != 0 || !allocate {
            return Ok(cur);
        }
        let b = self.alloc_block(group)?;
        self.write_cached(ind, off, &b.to_be_bytes())?;
        Ok(b)
    }

    /// Entry `idx` of indirect block `ind`, allocating an *indirect*
    /// block (zero-filled) on demand.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn indirect_entry_block(
        &mut self,
        ind: u64,
        idx: u64,
        group: u64,
        allocate: bool,
    ) -> Result<u64, FfsError> {
        let off = (idx * 8) as usize;
        let cur = {
            let data = self.read_cached(ind)?;
            u64::from_be_bytes(data[off..off + 8].try_into().unwrap())
        };
        if cur != 0 || !allocate {
            return Ok(cur);
        }
        let b = self.alloc_block(group)?;
        self.write_cached(b, 0, &vec![0u8; self.bs()])?;
        self.write_cached(ind, off, &b.to_be_bytes())?;
        Ok(b)
    }

    // ----- file I/O --------------------------------------------------------

    /// Write `data` at byte `offset` of `ino`, extending the file.
    ///
    /// # Errors
    ///
    /// `NotFound` for a free inode, `NoSpace`, device errors.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn write(&mut self, ino: InodeNo, offset: u64, data: &[u8]) -> Result<(), FfsError> {
        self.check_live(ino)?;
        let bs = self.bs() as u64;
        let mut pos = offset;
        let end = offset + data.len() as u64;
        let mut src = 0usize;
        while pos < end {
            let l = pos / bs;
            let within = (pos % bs) as usize;
            let take = (bs as usize - within).min((end - pos) as usize);
            let b = self.bmap(ino, l, true)?;
            self.write_cached(b, within, &data[src..src + take])?;
            pos += take as u64;
            src += take;
        }
        let i = ino.0 as usize;
        if end > self.inodes[i].size {
            self.inodes[i].size = end;
        }
        self.inodes[i].mtime = self.clock;
        self.metadata_dirty = true;
        Ok(())
    }

    /// Read up to `len` bytes at `offset`; short at end-of-file, zeros in
    /// holes.
    ///
    /// # Errors
    ///
    /// `NotFound` for a free inode, device errors.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn read(&mut self, ino: InodeNo, offset: u64, len: u64) -> Result<Vec<u8>, FfsError> {
        self.check_live(ino)?;
        let size = self.inodes[ino.0 as usize].size;
        if offset >= size {
            return Ok(Vec::new());
        }
        let end = (offset + len).min(size);
        let bs = self.bs() as u64;
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let l = pos / bs;
            let within = (pos % bs) as usize;
            let take = (bs as usize - within).min((end - pos) as usize);
            let b = self.bmap(ino, l, false)?;
            if b == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let data = self.read_cached(b)?;
                out.extend_from_slice(&data[within..within + take]);
            }
            pos += take as u64;
        }
        Ok(out)
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn check_live(&self, ino: InodeNo) -> Result<(), FfsError> {
        if ino.0 as usize >= self.inodes.len() || self.inodes[ino.0 as usize].kind == 0 {
            return Err(FfsError::NotFound(format!("inode {}", ino.0)));
        }
        Ok(())
    }

    /// Stat an inode.
    ///
    /// # Errors
    ///
    /// `NotFound` for a free inode.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn stat(&self, ino: InodeNo) -> Result<Stat, FfsError> {
        self.check_live(ino)?;
        let d = &self.inodes[ino.0 as usize];
        Ok(Stat {
            ino,
            kind: if d.kind == 2 {
                FileKind::Directory
            } else {
                FileKind::File
            },
            size: d.size,
            nlink: d.nlink,
            mtime: d.mtime,
        })
    }

    // ----- directories ------------------------------------------------------

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn read_dir_entries(&mut self, dir: InodeNo) -> Result<Vec<DirEntry>, FfsError> {
        let size = self.inodes[dir.0 as usize].size;
        let raw = self.read(dir, 0, size)?;
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while pos + 10 <= raw.len() {
            let ino = u64::from_be_bytes(raw[pos..pos + 8].try_into().unwrap());
            let nlen = u16::from_be_bytes(raw[pos + 8..pos + 10].try_into().unwrap()) as usize;
            let name = String::from_utf8_lossy(&raw[pos + 10..pos + 10 + nlen]).into_owned();
            entries.push(DirEntry {
                name,
                ino: InodeNo(ino),
            });
            pos += 10 + nlen;
        }
        Ok(entries)
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn write_dir_entries(&mut self, dir: InodeNo, entries: &[DirEntry]) -> Result<(), FfsError> {
        let mut raw = Vec::new();
        for e in entries {
            raw.extend_from_slice(&e.ino.0.to_be_bytes());
            raw.extend_from_slice(&(e.name.len() as u16).to_be_bytes());
            raw.extend_from_slice(e.name.as_bytes());
        }
        // Rewrite wholesale and shrink the size.
        self.inodes[dir.0 as usize].size = 0;
        if !raw.is_empty() {
            self.write(dir, 0, &raw)?;
        }
        self.inodes[dir.0 as usize].size = raw.len() as u64;
        self.metadata_dirty = true;
        Ok(())
    }

    fn split_path(path: &str) -> Result<Vec<&str>, FfsError> {
        if !path.starts_with('/') {
            return Err(FfsError::BadPath(path.to_string()));
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.iter().any(|c| *c == "." || *c == "..") {
            return Err(FfsError::BadPath(path.to_string()));
        }
        Ok(comps)
    }

    /// Resolve a path to an inode.
    ///
    /// # Errors
    ///
    /// `NotFound`, `NotADirectory`, `BadPath`.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn lookup(&mut self, path: &str) -> Result<InodeNo, FfsError> {
        let comps = Self::split_path(path)?;
        let mut cur = ROOT;
        for c in comps {
            if self.inodes[cur.0 as usize].kind != 2 {
                return Err(FfsError::NotADirectory(c.to_string()));
            }
            let entries = self.read_dir_entries(cur)?;
            cur = entries
                .iter()
                .find(|e| e.name == c)
                .map(|e| e.ino)
                .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn parent_and_name<'a>(&mut self, path: &'a str) -> Result<(InodeNo, &'a str), FfsError> {
        let comps = Self::split_path(path)?;
        let (&name, parents) = comps
            .split_last()
            .ok_or_else(|| FfsError::BadPath(path.to_string()))?;
        let mut cur = ROOT;
        for c in parents {
            let entries = self.read_dir_entries(cur)?;
            cur = entries
                .iter()
                .find(|e| e.name == *c)
                .map(|e| e.ino)
                .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
            if self.inodes[cur.0 as usize].kind != 2 {
                return Err(FfsError::NotADirectory((*c).to_string()));
            }
        }
        Ok((cur, name))
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn create_node(&mut self, path: &str, kind: FileKind) -> Result<InodeNo, FfsError> {
        let (parent, name) = self.parent_and_name(path)?;
        let mut entries = self.read_dir_entries(parent)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FfsError::Exists(path.to_string()));
        }
        let ino = self.alloc_inode()?;
        let i = ino.0 as usize;
        self.inodes[i] = DiskInode {
            kind: match kind {
                FileKind::File => 1,
                FileKind::Directory => 2,
            },
            nlink: match kind {
                FileKind::File => 1,
                FileKind::Directory => 2,
            },
            mtime: self.clock,
            ..DiskInode::empty()
        };
        if kind == FileKind::Directory {
            // FFS policy: spread directories across groups.
            self.next_dir_group = (self.next_dir_group + 1) % self.sb.ngroups;
        }
        entries.push(DirEntry {
            name: name.to_string(),
            ino,
        });
        self.write_dir_entries(parent, &entries)?;
        Ok(ino)
    }

    /// Create a regular file.
    ///
    /// # Errors
    ///
    /// `Exists`, `NotFound` (parent), `NoSpace`.
    pub fn create(&mut self, path: &str) -> Result<InodeNo, FfsError> {
        self.create_node(path, FileKind::File)
    }

    /// Create a directory.
    ///
    /// # Errors
    ///
    /// `Exists`, `NotFound` (parent), `NoSpace`.
    pub fn mkdir(&mut self, path: &str) -> Result<InodeNo, FfsError> {
        self.create_node(path, FileKind::Directory)
    }

    /// List a directory.
    ///
    /// # Errors
    ///
    /// `NotFound`, `NotADirectory`.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>, FfsError> {
        let ino = self.lookup(path)?;
        if self.inodes[ino.0 as usize].kind != 2 {
            return Err(FfsError::NotADirectory(path.to_string()));
        }
        self.read_dir_entries(ino)
    }

    /// Remove a file or empty directory.
    ///
    /// # Errors
    ///
    /// `NotFound`, `NotEmpty` for a non-empty directory.
    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    pub fn unlink(&mut self, path: &str) -> Result<(), FfsError> {
        let (parent, name) = self.parent_and_name(path)?;
        let mut entries = self.read_dir_entries(parent)?;
        let idx = entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        let ino = entries[idx].ino;
        let i = ino.0 as usize;
        if self.inodes[i].kind == 2 && !self.read_dir_entries(ino)?.is_empty() {
            return Err(FfsError::NotEmpty(path.to_string()));
        }
        entries.remove(idx);
        self.write_dir_entries(parent, &entries)?;
        self.truncate_inode(ino)?;
        self.inodes[i] = DiskInode::empty();
        self.inode_free[i] = true;
        self.metadata_dirty = true;
        Ok(())
    }

    // nasd-lint: allow(transitive-panic, "FFS comparison baseline: mounts only images it formatted itself; indices derive from its own superblock constants, not hostile input")
    fn truncate_inode(&mut self, ino: InodeNo) -> Result<(), FfsError> {
        let bs = self.bs() as u64;
        let ptrs = bs / 8;
        let i = ino.0 as usize;
        let nblocks = self.inodes[i].size.div_ceil(bs);
        for l in 0..nblocks {
            let b = self.bmap(ino, l, false)?;
            if b != 0 {
                self.free_block(b);
            }
        }
        let ind = self.inodes[i].indirect;
        if ind != 0 {
            self.free_block(ind);
        }
        let dind = self.inodes[i].dindirect;
        if dind != 0 {
            for idx in 0..ptrs {
                let outer = self.indirect_entry_block(dind, idx, 0, false)?;
                if outer != 0 {
                    self.free_block(outer);
                }
            }
            self.free_block(dind);
        }
        Ok(())
    }

    /// Free data blocks (diagnostic).
    #[must_use]
    pub fn free_data_blocks(&self) -> u64 {
        self.block_free.iter().filter(|&&f| f).count() as u64
    }
}

enum IndirectSlot {
    Single,
    Double,
}

impl<D: BlockDevice> fmt::Debug for Ffs<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ffs")
            .field("nblocks", &self.sb.nblocks)
            .field("ninodes", &self.sb.ninodes)
            .field("dirty_blocks", &self.dirty.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;

    const BS: usize = 8192;

    fn fs() -> Ffs<MemDisk> {
        Ffs::format(MemDisk::new(BS, 4096), 512).unwrap()
    }

    #[test]
    fn create_write_read() {
        let mut f = fs();
        let ino = f.create("/a.txt").unwrap();
        f.write(ino, 0, b"hello ffs").unwrap();
        assert_eq!(&f.read(ino, 0, 9).unwrap()[..], b"hello ffs");
        assert_eq!(&f.read(ino, 6, 100).unwrap()[..], b"ffs");
        let st = f.stat(ino).unwrap();
        assert_eq!(st.size, 9);
        assert_eq!(st.kind, FileKind::File);
    }

    #[test]
    fn directories_nest() {
        let mut f = fs();
        f.mkdir("/a").unwrap();
        f.mkdir("/a/b").unwrap();
        let ino = f.create("/a/b/c.txt").unwrap();
        f.write(ino, 0, b"deep").unwrap();
        assert_eq!(f.lookup("/a/b/c.txt").unwrap(), ino);
        let entries = f.readdir("/a/b").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "c.txt");
    }

    #[test]
    fn lookup_failures() {
        let mut f = fs();
        assert!(matches!(f.lookup("/nope"), Err(FfsError::NotFound(_))));
        assert!(matches!(f.lookup("relative"), Err(FfsError::BadPath(_))));
        assert!(matches!(f.lookup("/a/../b"), Err(FfsError::BadPath(_))));
        let ino = f.create("/file").unwrap();
        let _ = ino;
        assert!(matches!(
            f.create("/file/child"),
            Err(FfsError::NotADirectory(_))
        ));
        assert!(matches!(f.create("/file"), Err(FfsError::Exists(_))));
    }

    #[test]
    fn large_file_through_indirect_blocks() {
        // > 12 direct blocks (96 KB) and > single-indirect reach.
        let mut f = Ffs::format(MemDisk::new(BS, 16_384), 64).unwrap();
        let ino = f.create("/big").unwrap();
        let chunk: Vec<u8> = (0..BS).map(|i| (i % 253) as u8).collect();
        let nchunks = 12 + 1024 + 50; // direct + full single indirect + into double
        for c in 0..nchunks {
            f.write(ino, (c * BS) as u64, &chunk).unwrap();
        }
        assert_eq!(f.stat(ino).unwrap().size, (nchunks * BS) as u64);
        // Spot-check regions served by each mapping level.
        for probe in [0u64, 11, 12, 500, 1035, 1036, 1080] {
            let got = f.read(ino, probe * BS as u64 + 7, 16).unwrap();
            assert_eq!(&got[..], &chunk[7..23], "block {probe}");
        }
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut f = fs();
        let ino = f.create("/sparse").unwrap();
        f.write(ino, 5 * BS as u64, b"tail").unwrap();
        let hole = f.read(ino, BS as u64, 100).unwrap();
        assert!(hole.iter().all(|&b| b == 0));
        assert_eq!(&f.read(ino, 5 * BS as u64, 4).unwrap()[..], b"tail");
    }

    #[test]
    fn unlink_frees_space() {
        let mut f = fs();
        let free0 = f.free_data_blocks();
        let ino = f.create("/victim").unwrap();
        f.write(ino, 0, &vec![1u8; 20 * BS]).unwrap();
        assert!(f.free_data_blocks() < free0);
        f.unlink("/victim").unwrap();
        // The root dir grew a block for the entry, so allow one block
        // of slack.
        assert!(f.free_data_blocks() >= free0 - 1);
        assert!(matches!(f.lookup("/victim"), Err(FfsError::NotFound(_))));
    }

    #[test]
    fn unlink_nonempty_dir_rejected() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.create("/d/x").unwrap();
        assert!(matches!(f.unlink("/d"), Err(FfsError::NotEmpty(_))));
        f.unlink("/d/x").unwrap();
        f.unlink("/d").unwrap();
    }

    #[test]
    fn persistence_across_remount() {
        let mut f = fs();
        f.mkdir("/docs").unwrap();
        let ino = f.create("/docs/paper").unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        f.write(ino, 0, &data).unwrap();
        f.sync().unwrap();

        // Steal the device back and remount.
        let device = f.device.clone();
        let mut f2 = Ffs::mount(device).unwrap();
        let ino2 = f2.lookup("/docs/paper").unwrap();
        assert_eq!(ino2, ino);
        assert_eq!(f2.read(ino2, 0, 100_000).unwrap(), data);
        assert_eq!(f2.stat(ino2).unwrap().size, 100_000);
    }

    #[test]
    fn mount_unformatted_fails() {
        assert!(matches!(
            Ffs::mount(MemDisk::new(BS, 64)),
            Err(FfsError::BadSuperblock)
        ));
    }

    #[test]
    fn many_files_in_directory() {
        let mut f = fs();
        f.mkdir("/many").unwrap();
        for i in 0..200 {
            f.create(&format!("/many/file{i}")).unwrap();
        }
        let entries = f.readdir("/many").unwrap();
        assert_eq!(entries.len(), 200);
        assert!(entries.iter().any(|e| e.name == "file137"));
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut f = fs();
        let ino = f.create("/x").unwrap();
        f.write(ino, 0, &vec![1u8; 3 * BS]).unwrap();
        let free = f.free_data_blocks();
        f.write(ino, BS as u64, &vec![2u8; BS]).unwrap();
        assert_eq!(f.free_data_blocks(), free);
        assert_eq!(f.stat(ino).unwrap().size, 3 * BS as u64);
    }

    #[test]
    fn out_of_inodes() {
        let mut f = Ffs::format(MemDisk::new(BS, 2048), 4).unwrap();
        f.create("/a").unwrap();
        f.create("/b").unwrap();
        assert!(matches!(f.create("/c"), Err(FfsError::NoSpace)));
    }

    #[test]
    fn error_display() {
        assert_eq!(FfsError::NotFound("/x".into()).to_string(), "not found: /x");
        assert_eq!(FfsError::NoSpace.to_string(), "no space");
    }
}
