//! One-call assembly of a complete NASD PFS installation: drives, Cheops
//! manager, name service, and per-node clients — the Figure 8 stack.

use crate::name::NameService;
use crate::sio::PfsClient;
use nasd_cheops::{CheopsConnect, CheopsManager, CheopsRequest, CheopsResponse};
use nasd_fm::{DriveFleet, FmError};
use nasd_net::{Connector, Rpc, ServiceHandle};
use nasd_object::DriveConfig;
use nasd_proto::PartitionId;
use std::sync::Arc;

/// A running PFS installation.
pub struct PfsCluster {
    fleet: Arc<DriveFleet>,
    cheops: Rpc<CheopsRequest, CheopsResponse>,
    names: Rpc<crate::name::NameRequest, crate::name::NameResponse>,
    stripe_unit: u64,
    _handles: Vec<ServiceHandle>,
}

impl PfsCluster {
    /// Spawn `ndrives` memory-backed drives plus the managers, with the
    /// given stripe unit (the paper used 512 KB for the mining runs).
    ///
    /// # Errors
    ///
    /// Drive bootstrap failures.
    pub fn spawn(ndrives: usize, stripe_unit: u64) -> Result<Self, FmError> {
        Self::spawn_with_config(ndrives, stripe_unit, DriveConfig::prototype())
    }

    /// Spawn with a custom drive configuration.
    ///
    /// # Errors
    ///
    /// Drive bootstrap failures.
    pub fn spawn_with_config(
        ndrives: usize,
        stripe_unit: u64,
        config: DriveConfig,
    ) -> Result<Self, FmError> {
        let fleet = Arc::new(DriveFleet::spawn_memory(
            ndrives,
            config,
            PartitionId(1),
            1 << 32,
        )?);
        let (cheops, h1) = CheopsManager::new(Arc::clone(&fleet)).spawn();
        let (names, h2) = NameService::new().spawn();
        Ok(PfsCluster {
            fleet,
            cheops,
            names,
            stripe_unit,
            _handles: vec![h1, h2],
        })
    }

    /// Number of drives.
    #[must_use]
    pub fn ndrives(&self) -> usize {
        self.fleet.len()
    }

    /// The drive fleet.
    #[must_use]
    pub fn fleet(&self) -> &Arc<DriveFleet> {
        &self.fleet
    }

    /// The configured stripe unit.
    #[must_use]
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// A client for compute node `node` (clients are cheap; one per
    /// thread).
    #[must_use]
    pub fn client(&self, node: u64) -> PfsClient {
        let connector = Connector::new();
        let storage = connector.cheops(node, self.cheops.clone(), Arc::clone(&self.fleet));
        PfsClient::new(
            connector.in_proc(self.names.clone()),
            storage,
            self.stripe_unit,
        )
    }
}

impl std::fmt::Debug for PfsCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PfsCluster")
            .field("ndrives", &self.fleet.len())
            .field("stripe_unit", &self.stripe_unit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> PfsCluster {
        PfsCluster::spawn_with_config(n, 64 * 1024, DriveConfig::small()).unwrap()
    }

    #[test]
    fn create_open_read_write() {
        let c = cluster(4);
        let client = c.client(0);
        let f = client.create("/data", 4).unwrap();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        client.write_at(&f, 0, &data).unwrap();
        let back = client.read_at(&f, 0, data.len() as u64).unwrap();
        assert_eq!(back, data);
        assert_eq!(client.size(&f).unwrap(), data.len() as u64);
        assert_eq!(f.width(), 4);
        assert_eq!(f.stripe_unit(), 64 * 1024);
    }

    #[test]
    fn parallel_nodes_share_a_file() {
        // The Figure 9 access pattern in miniature: every node writes its
        // own round-robin chunks, then every node reads chunks written by
        // others.
        let c = Arc::new(cluster(4));
        let writer = c.client(0);
        let _ = writer.create("/shared", 4).unwrap();
        let chunk = 64 * 1024u64;
        let nodes = 4u64;

        let mut joins = Vec::new();
        for node in 0..nodes {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                let client = c.client(node);
                let f = client.open("/shared").unwrap();
                // Write chunks node, node+4, node+8, ...
                for k in (node..16).step_by(nodes as usize) {
                    let data = vec![k as u8; chunk as usize];
                    client.write_at(&f, k * chunk, &data).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }

        // Cross-check: every chunk readable by a different node.
        let mut joins = Vec::new();
        for node in 0..nodes {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                let client = c.client(100 + node);
                let f = client.open("/shared").unwrap();
                for k in ((node + 1) % nodes..16).step_by(nodes as usize) {
                    let back = client.read_at(&f, k * chunk, chunk).unwrap();
                    assert!(back.to_vec().iter().all(|&b| b == k as u8), "chunk {k}");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn namespace_operations() {
        let c = cluster(2);
        let client = c.client(0);
        client.create("/a", 2).unwrap();
        client.create("/b", 1).unwrap();
        assert!(matches!(
            client.create("/a", 2),
            Err(crate::PfsError::Exists(_))
        ));
        assert_eq!(client.list("/").unwrap().len(), 2);
        client.unlink("/a").unwrap();
        assert!(matches!(
            client.open("/a"),
            Err(crate::PfsError::NotFound(_))
        ));
        assert_eq!(client.list("/").unwrap(), vec!["/b".to_string()]);
    }

    #[test]
    fn read_list_gathers_extents() {
        let c = cluster(2);
        let client = c.client(0);
        let f = client.create("/l", 2).unwrap();
        client.write_at(&f, 0, &vec![7u8; 200_000]).unwrap();
        let parts = client
            .read_list(&f, &[(0, 1000), (100_000, 1000), (199_000, 1000)])
            .unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1000));
        assert!(parts.iter().all(|p| p.to_vec().iter().all(|&b| b == 7)));
    }
}
