//! NASD PFS — the parallel filesystem of §5.2.
//!
//! "To provide support for parallel applications, we implemented a simple
//! parallel filesystem, NASD PFS, which offers the SIO low-level parallel
//! filesystem interface \[Corbett96\] and employs Cheops as its storage
//! management layer."
//!
//! The filesystem itself is thin by design: a name service and access
//! control (inherited, as in the paper, from the filesystem layer) over
//! logical objects whose striping Cheops manages and whose data clients
//! move themselves, drive-direct and in parallel.
//!
//! # Example
//!
//! ```no_run
//! use nasd_pfs::PfsCluster;
//!
//! // 8 drives, as in the paper's Figure 9 testbed.
//! let cluster = PfsCluster::spawn(8, 512 * 1024).unwrap();
//! let client = cluster.client(0);
//! let f = client.create("/sales.db", 8).unwrap();
//! client.write_at(&f, 0, &vec![0u8; 4 << 20]).unwrap();
//! assert_eq!(client.size(&f).unwrap(), 4 << 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod name;
mod sio;

pub use cluster::PfsCluster;
pub use name::{NameRequest, NameResponse, NameService};
pub use sio::{PfsClient, PfsError, PfsFile};
