//! The SIO-style client interface.
//!
//! The Scalable I/O low-level API \[Corbett96\] is offset-explicit (no
//! shared file pointers) and built for parallel access: every compute
//! node reads and writes its own byte ranges, and collective operations
//! coordinate only through the (cheap) name and storage managers. That
//! is precisely what lets NASD PFS "pass the scalable bandwidth of
//! network-attached storage on to applications".

use crate::name::{NameRequest, NameResponse};
use bytes::ByteRope;
use nasd_cheops::{CheopsClient, CheopsFile, LogicalObjectId, Redundancy};
use nasd_fm::FmError;
use nasd_net::{CallOptions, Channel};
use nasd_proto::Rights;
use std::fmt;

/// PFS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// Path not bound.
    NotFound(String),
    /// Path already bound.
    Exists(String),
    /// Storage layer failure.
    Storage(FmError),
    /// Transport failure.
    Transport,
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::NotFound(p) => write!(f, "not found: {p}"),
            PfsError::Exists(p) => write!(f, "already exists: {p}"),
            PfsError::Storage(e) => write!(f, "storage error: {e}"),
            PfsError::Transport => f.write_str("transport failure"),
        }
    }
}

impl std::error::Error for PfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PfsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FmError> for PfsError {
    fn from(e: FmError) -> Self {
        PfsError::Storage(e)
    }
}

impl From<nasd_net::RpcError> for PfsError {
    fn from(_: nasd_net::RpcError) -> Self {
        PfsError::Transport
    }
}

/// An open PFS file: the Cheops file with its capability set.
#[derive(Clone, Debug)]
pub struct PfsFile {
    /// Bound path.
    pub path: String,
    /// Backing logical object.
    pub id: LogicalObjectId,
    inner: CheopsFile,
}

impl PfsFile {
    /// Stripe unit in bytes (applications align their chunks to this —
    /// the mining app uses it as its request size).
    #[must_use]
    pub fn stripe_unit(&self) -> u64 {
        self.inner.layout.stripe_unit
    }

    /// Stripe width (number of drives).
    #[must_use]
    pub fn width(&self) -> usize {
        self.inner.layout.width()
    }
}

/// A PFS client — one per compute node.
pub struct PfsClient {
    names: Channel<NameRequest, NameResponse>,
    storage: CheopsClient,
    stripe_unit: u64,
}

impl PfsClient {
    /// Assemble a client from its services.
    #[must_use]
    pub fn new(
        names: Channel<NameRequest, NameResponse>,
        storage: CheopsClient,
        stripe_unit: u64,
    ) -> Self {
        PfsClient {
            names,
            storage,
            stripe_unit,
        }
    }

    /// Create a file striped over `width` drives and bind it to `path`.
    ///
    /// # Errors
    ///
    /// `Exists`, storage failures.
    pub fn create(&self, path: &str, width: usize) -> Result<PfsFile, PfsError> {
        let id = self
            .storage
            .create(width, self.stripe_unit, Redundancy::None)?;
        match self.names.call_with(
            NameRequest::Bind {
                path: path.to_string(),
                id,
            },
            &CallOptions::blocking(),
        )? {
            NameResponse::Ok => {}
            NameResponse::Exists => {
                self.storage.remove(id)?;
                return Err(PfsError::Exists(path.to_string()));
            }
            _ => return Err(PfsError::Transport),
        }
        self.open(path)
    }

    /// Open a file by path, obtaining the layout and capability set.
    ///
    /// # Errors
    ///
    /// `NotFound`, storage failures.
    pub fn open(&self, path: &str) -> Result<PfsFile, PfsError> {
        let id = match self.names.call_with(
            NameRequest::Lookup {
                path: path.to_string(),
            },
            &CallOptions::blocking(),
        )? {
            NameResponse::Id(id) => id,
            NameResponse::NotFound => return Err(PfsError::NotFound(path.to_string())),
            _ => return Err(PfsError::Transport),
        };
        let inner = self.storage.open(id, Rights::ALL)?;
        Ok(PfsFile {
            path: path.to_string(),
            id,
            inner,
        })
    }

    /// Unbind and destroy a file.
    ///
    /// # Errors
    ///
    /// `NotFound`, storage failures.
    pub fn unlink(&self, path: &str) -> Result<(), PfsError> {
        let id = match self.names.call_with(
            NameRequest::Lookup {
                path: path.to_string(),
            },
            &CallOptions::blocking(),
        )? {
            NameResponse::Id(id) => id,
            NameResponse::NotFound => return Err(PfsError::NotFound(path.to_string())),
            _ => return Err(PfsError::Transport),
        };
        match self.names.call_with(
            NameRequest::Unbind {
                path: path.to_string(),
            },
            &CallOptions::blocking(),
        )? {
            NameResponse::Ok => {}
            _ => return Err(PfsError::Transport),
        }
        self.storage.remove(id)?;
        Ok(())
    }

    /// List paths under a prefix.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn list(&self, prefix: &str) -> Result<Vec<String>, PfsError> {
        match self.names.call_with(
            NameRequest::List {
                prefix: prefix.to_string(),
            },
            &CallOptions::blocking(),
        )? {
            NameResponse::Paths(p) => Ok(p),
            _ => Err(PfsError::Transport),
        }
    }

    /// Read at an explicit offset (SIO style; no file pointer).
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn read_at(&self, file: &PfsFile, offset: u64, len: u64) -> Result<ByteRope, PfsError> {
        Ok(self.storage.read(&file.inner, offset, len)?)
    }

    /// Write at an explicit offset.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn write_at(&self, file: &PfsFile, offset: u64, data: &[u8]) -> Result<u64, PfsError> {
        Ok(self.storage.write(&file.inner, offset, data)?)
    }

    /// List-directed read (SIO's `listio`): fetch several extents in one
    /// call; each extent's request pipeline runs concurrently.
    ///
    /// # Errors
    ///
    /// Storage failures (first failure wins).
    pub fn read_list(
        &self,
        file: &PfsFile,
        extents: &[(u64, u64)],
    ) -> Result<Vec<ByteRope>, PfsError> {
        extents
            .iter()
            .map(|&(offset, len)| self.read_at(file, offset, len))
            .collect()
    }

    /// Current file size.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn size(&self, file: &PfsFile) -> Result<u64, PfsError> {
        Ok(self.storage.size(&file.inner)?)
    }
}

impl fmt::Debug for PfsClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PfsClient { .. }")
    }
}
