//! PFS name service: a flat hierarchical namespace over Cheops logical
//! objects ("inherits a name service, directory hierarchy, and access
//! controls from the filesystem").

use nasd_cheops::LogicalObjectId;
use nasd_net::{spawn_service, Rpc, ServiceHandle};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Name service requests.
#[derive(Clone, Debug)]
pub enum NameRequest {
    /// Bind `path` to a logical object.
    Bind {
        /// Absolute path.
        path: String,
        /// Backing logical object.
        id: LogicalObjectId,
    },
    /// Resolve a path.
    Lookup {
        /// Absolute path.
        path: String,
    },
    /// Remove a binding.
    Unbind {
        /// Absolute path.
        path: String,
    },
    /// List paths under a prefix.
    List {
        /// Path prefix (`/` for everything).
        prefix: String,
    },
}

/// Name service replies.
#[derive(Clone, Debug)]
pub enum NameResponse {
    /// Resolved logical object.
    Id(LogicalObjectId),
    /// Listing.
    Paths(Vec<String>),
    /// Success.
    Ok,
    /// Name not bound.
    NotFound,
    /// Name already bound.
    Exists,
}

/// The (threaded) PFS name service.
#[derive(Default)]
pub struct NameService {
    names: Mutex<BTreeMap<String, LogicalObjectId>>,
}

impl NameService {
    /// Create an empty namespace.
    #[must_use]
    pub fn new() -> Self {
        NameService::default()
    }

    /// Handle one request.
    pub fn handle(&self, req: NameRequest) -> NameResponse {
        let mut names = self.names.lock();
        match req {
            NameRequest::Bind { path, id } => match names.entry(path) {
                std::collections::btree_map::Entry::Occupied(_) => NameResponse::Exists,
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(id);
                    NameResponse::Ok
                }
            },
            NameRequest::Lookup { path } => match names.get(&path) {
                Some(&id) => NameResponse::Id(id),
                None => NameResponse::NotFound,
            },
            NameRequest::Unbind { path } => {
                if names.remove(&path).is_some() {
                    NameResponse::Ok
                } else {
                    NameResponse::NotFound
                }
            }
            NameRequest::List { prefix } => NameResponse::Paths(
                names
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .map(|(k, _)| k.clone())
                    .collect(),
            ),
        }
    }

    /// Spawn as a threaded service.
    #[must_use]
    pub fn spawn(self) -> (Rpc<NameRequest, NameResponse>, ServiceHandle) {
        let svc = Arc::new(self);
        spawn_service(move |req| svc.handle(req))
    }
}

impl std::fmt::Debug for NameService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameService")
            .field("names", &self.names.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let ns = NameService::new();
        assert!(matches!(
            ns.handle(NameRequest::Bind {
                path: "/a".into(),
                id: LogicalObjectId(1)
            }),
            NameResponse::Ok
        ));
        assert!(matches!(
            ns.handle(NameRequest::Lookup { path: "/a".into() }),
            NameResponse::Id(LogicalObjectId(1))
        ));
        assert!(matches!(
            ns.handle(NameRequest::Bind {
                path: "/a".into(),
                id: LogicalObjectId(2)
            }),
            NameResponse::Exists
        ));
        assert!(matches!(
            ns.handle(NameRequest::Unbind { path: "/a".into() }),
            NameResponse::Ok
        ));
        assert!(matches!(
            ns.handle(NameRequest::Lookup { path: "/a".into() }),
            NameResponse::NotFound
        ));
    }

    #[test]
    fn list_by_prefix() {
        let ns = NameService::new();
        for (i, p) in ["/data/a", "/data/b", "/tmp/x"].iter().enumerate() {
            ns.handle(NameRequest::Bind {
                path: (*p).to_string(),
                id: LogicalObjectId(i as u64),
            });
        }
        let NameResponse::Paths(paths) = ns.handle(NameRequest::List {
            prefix: "/data/".into(),
        }) else {
            panic!();
        };
        assert_eq!(paths, vec!["/data/a".to_string(), "/data/b".to_string()]);
    }
}
