//! Fixture: D1 violation. Wall-clock read in a sim-visible crate with no
//! suppression — nasd-lint must report D1 and exit nonzero.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Returns a timestamp that differs between replays of the same seed.
pub fn nondeterministic_stamp() -> Instant {
    Instant::now()
}
