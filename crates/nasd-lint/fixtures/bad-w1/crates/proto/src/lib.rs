//! Fixture: W1 violation. `NasdStatus::Busy` is encoded and decoded but
//! missing from the retry matrix — nasd-lint must report W1 and exit
//! nonzero.

#![forbid(unsafe_code)]

/// Wire status codes.
pub enum NasdStatus {
    /// Success.
    Ok,
    /// Transient contention.
    Busy,
}

/// Retry classification.
pub enum RetryClass {
    /// Finished.
    Done,
    /// Retry later.
    Transient,
}

impl NasdStatus {
    /// Wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            NasdStatus::Ok => 0,
            NasdStatus::Busy => 1,
        }
    }

    /// Wire decoding.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(NasdStatus::Ok),
            1 => Some(NasdStatus::Busy),
            _ => None,
        }
    }

    /// Fault-injection retry matrix — forgot `Busy`.
    pub fn retry_class(self) -> RetryClass {
        match self {
            NasdStatus::Ok => RetryClass::Done,
            _ => RetryClass::Transient,
        }
    }
}
