//! Fixture: E1 violations. The reply path discards the send and flush
//! Results — a reply that silently fails to leave the drive breaks the
//! acknowledgement promise.

/// Both discard shapes: `let _ = …` and a statement-level `.ok()`.
pub fn reply(tx: &Sender, frame: Frame) {
    let _ = tx.send(frame);
    tx.flush().ok();
}

/// Binding the Option is not a discard; E1 must not flag this one.
pub fn keep(tx: &Sender) -> Option<Ticket> {
    let rx = tx.register().ok();
    rx
}
