//! Fixture: S0 violation. A suppression with no reason string — the
//! wall-clock finding itself is suppressed, but nasd-lint must report S0
//! for the reasonless allow and exit nonzero.

#![forbid(unsafe_code)]

use std::time::Duration;

/// Paces a real thread but does not justify why.
pub fn lazy_pace(d: Duration) {
    // nasd-lint: allow(wall-clock)
    std::thread::sleep(d);
}
