//! Fixture: H1 violations. Casual payload copies in a data-path module —
//! nasd-lint must report H1 and exit nonzero.

/// Reads a block, then throws the zero-copy view away with a flat copy.
pub fn read_flat(view: &[u8]) -> Vec<u8> {
    view.to_vec()
}

/// Store-and-forward staging copy on the write path.
pub fn stage(dst: &mut [u8], src: &[u8]) {
    dst.copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    #[test]
    fn copies_in_tests_are_fine() {
        let v = [1u8, 2].to_vec();
        assert_eq!(v.len(), 2);
    }
}
