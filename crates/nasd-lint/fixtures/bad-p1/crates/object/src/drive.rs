//! Fixture: P1 violations. Panicking operators in a request-path module —
//! nasd-lint must report P1 and exit nonzero.

/// Dispatch a request; panics on malformed input instead of returning a
/// status code.
pub fn dispatch(buf: &[u8]) -> u8 {
    let first = buf.first().unwrap();
    first + buf[1]
}
