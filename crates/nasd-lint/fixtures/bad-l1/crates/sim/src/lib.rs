//! Fixture: L1 violation. Two functions acquire the same pair of locks in
//! opposite orders — nasd-lint must report the lock-order cycle and exit
//! nonzero.

#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Two independently locked counters.
pub struct Counters {
    /// First counter.
    pub alpha: Mutex<u64>,
    /// Second counter.
    pub beta: Mutex<u64>,
}

/// Acquires alpha, then beta.
pub fn sum(c: &Counters) -> u64 {
    let alpha = c.alpha.lock();
    let beta = c.beta.lock();
    *alpha.unwrap_or_else(|e| e.into_inner()) + *beta.unwrap_or_else(|e| e.into_inner())
}

/// Acquires beta, then alpha — deadlocks against `sum`.
pub fn transfer(c: &Counters, n: u64) {
    let beta = c.beta.lock();
    let alpha = c.alpha.lock();
    *beta.unwrap_or_else(|e| e.into_inner()) += n;
    *alpha.unwrap_or_else(|e| e.into_inner()) -= n;
}
