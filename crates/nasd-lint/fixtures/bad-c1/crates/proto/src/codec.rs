//! Fixture: C1 violations. A wire-decoded integer narrowed with `as`
//! and combined with unchecked `+` — both silent-corruption shapes the
//! rule exists to catch.

/// Decode a frame header; `len` comes straight off the wire.
pub fn decode_header(r: &mut WireReader) -> (u16, u64) {
    let len = r.u32();
    let short = len as u16;
    let total = len + 8;
    (short, u64::from(total))
}
