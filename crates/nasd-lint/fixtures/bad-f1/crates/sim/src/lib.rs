//! Fixture: F1 violation. Crate root without `#![forbid(unsafe_code)]` —
//! nasd-lint must report F1 and exit nonzero.

/// Nothing unsafe here, but the guard rail attribute is missing.
pub fn double(x: u64) -> u64 {
    x.saturating_mul(2)
}
