//! Fixture: A1 violation. A fresh `fn call(` in the transport crate
//! resurrects the deleted blocking surface.

impl Rpc {
    /// The deleted API, sneaking back in.
    pub fn call(&self, req: Req) -> Result<Resp, RpcError> {
        self.call_with(req, &CallOptions::blocking())
    }
}

/// Same name as a free function with generics: still flagged.
pub fn call_timeout<T>(t: T) -> T {
    t
}
