//! Fixture: P2 targets. `locate` is panic-free but calls `run_len`,
//! which indexes unchecked — two hops from the entry point in
//! `drive.rs`. `encode` has two impls; only one panics, but a
//! name-resolved call graph must reach both (trait-method
//! over-approximation).

/// Panic-free middle hop.
pub fn locate(offset: u64) -> u64 {
    run_len(offset)
}

/// Panics when `offset` is out of range.
fn run_len(offset: u64) -> u64 {
    let runs = [1u64, 2, 3];
    runs[offset as usize]
}

pub struct Fixed;

impl Fixed {
    /// Panic-free impl: must NOT be reported.
    pub fn encode(&self) -> u8 {
        7
    }
}

pub struct Raw {
    pub data: Vec<u8>,
}

impl Raw {
    /// Panics on an empty payload: must be reported even though the
    /// entry point may actually call `Fixed::encode`.
    pub fn encode(&self) -> u8 {
        self.data[0]
    }
}
