//! Fixture: P2 entry point. This file is in P1 scope and is itself
//! panic-free — the panics live one and two calls away in `extent.rs`,
//! so only the transitive analysis can see them.

/// Dispatch a read. The panic is buried two hops away:
/// `dispatch -> locate -> run_len`.
pub fn dispatch(offset: u64) -> u64 {
    locate(offset)
}

/// Encode the reply header. `encode` resolves by name to every impl in
/// the workspace, including the panicking one in `extent.rs` — the
/// checker cannot know which impl runs, so it must reach both.
pub fn reply(hdr: &Header) -> u8 {
    hdr.encode()
}
