//! Fixture: L2 violations. Blocking calls — device I/O and the
//! sanctioned `pace` sleep — made while a mutex guard is live serialize
//! every contender on that lock for the whole call.

#![forbid(unsafe_code)]

impl Drive {
    /// Two violations: device I/O and a pace while `state` is held.
    pub fn flush(&self) {
        let guard = self.state.lock();
        self.media.write_block(guard.head);
        pace(guard.delay);
    }

    /// Dropping the guard first is the sanctioned shape; no finding.
    pub fn scoped(&self) {
        let guard = self.state.lock();
        let delay = guard.delay;
        drop(guard);
        pace(delay);
    }
}
