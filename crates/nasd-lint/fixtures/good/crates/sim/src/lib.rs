//! Fixture: a clean sim-visible crate root. Deterministic, panic-free,
//! forbids unsafe, and its one wall-clock site carries a reasoned
//! suppression — nasd-lint must exit 0 on this tree.

#![forbid(unsafe_code)]

use std::time::Duration;

/// Deterministic virtual clock.
pub struct Clock {
    now_ns: u64,
}

impl Clock {
    /// Advance by `d`, saturating.
    pub fn advance(&mut self, d: Duration) {
        self.now_ns = self.now_ns.saturating_add(d.as_nanos() as u64);
    }

    /// Pace a real thread while an interactive demo runs.
    pub fn demo_pace(&self, d: Duration) {
        // nasd-lint: allow(wall-clock, "demo-only pacing, never sim-visible")
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    // Test code is exempt from D1: wall-clock here must not be flagged.
    #[test]
    fn timer_smoke() {
        let _ = std::time::Instant::now();
    }
}
