//! Fixture: a clean request-path module. Errors flow out as status codes
//! and the one deliberate panic site carries a reasoned suppression.

/// Request outcome.
pub enum Status {
    /// Success.
    Ok,
    /// Malformed request.
    BadRequest,
}

/// Parse a request tag without panicking.
pub fn parse_tag(buf: &[u8]) -> Result<u8, Status> {
    buf.first().copied().ok_or(Status::BadRequest)
}

/// Debug-only invariant check, deliberately suppressed.
pub fn assert_wired(ready: bool) {
    if !ready {
        // nasd-lint: allow(panic, "startup wiring bug, not a request input")
        panic!("drive used before wiring completed");
    }
}
