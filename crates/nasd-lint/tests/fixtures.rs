//! Runs the nasd-lint binary against the fixture corpus: the good tree
//! must exit 0, and every known-bad tree must exit nonzero with the
//! expected rule ID in its report.

use std::path::PathBuf;
use std::process::Output;

fn run_on(fixture: &str) -> Output {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    std::process::Command::new(env!("CARGO_BIN_EXE_nasd-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("spawn nasd-lint")
}

fn expect_bad(fixture: &str, rule: &str) {
    let out = run_on(fixture);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "{fixture}: expected nonzero exit, got success\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("[{rule}]")),
        "{fixture}: expected a [{rule}] finding\n{stdout}"
    );
}

#[test]
fn good_tree_is_clean() {
    let out = run_on("good");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "good: expected exit 0\n{stdout}");
    assert!(stdout.contains("0 findings"), "good: {stdout}");
}

#[test]
fn d1_wall_clock_is_reported() {
    expect_bad("bad-d1", "D1");
}

#[test]
fn p1_panic_sites_are_reported() {
    expect_bad("bad-p1", "P1");
    let out = run_on("bad-p1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(".unwrap()") && stdout.contains("bare indexing"),
        "bad-p1 should flag both the unwrap and the slice index\n{stdout}"
    );
}

#[test]
fn w1_missing_matrix_arm_is_reported() {
    expect_bad("bad-w1", "W1");
    let out = run_on("bad-w1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("NasdStatus::Busy") && stdout.contains("retry"),
        "bad-w1 should name the variant missing from the retry matrix\n{stdout}"
    );
}

#[test]
fn l1_lock_order_cycle_is_reported() {
    expect_bad("bad-l1", "L1");
}

#[test]
fn f1_missing_forbid_is_reported() {
    expect_bad("bad-f1", "F1");
}

#[test]
fn suppressions_require_a_reason() {
    expect_bad("bad-suppress", "S0");
    let out = run_on("bad-suppress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("[D1]"),
        "the reasonless allow still suppresses the D1 finding itself\n{stdout}"
    );
}

#[test]
fn p2_two_hop_panic_is_reported_with_its_path() {
    expect_bad("bad-p2", "P2");
    let out = run_on("bad-p2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("dispatch -> locate -> run_len"),
        "the two-hop call path should be spelled out\n{stdout}"
    );
    assert!(
        !stdout.contains("[P1]"),
        "helpers outside the entry files are P2's business, not P1's\n{stdout}"
    );
}

#[test]
fn p2_name_resolution_reaches_every_same_named_method() {
    // `reply` calls `.encode()`; two impls share the name, one panics.
    // The over-approximating graph must flag the panicking impl (line
    // 34) and must NOT flag the clean one (line 22).
    let out = run_on("bad-p2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("extent.rs:34") && stdout.contains("`encode`"),
        "the panicking encode impl must be reached by name\n{stdout}"
    );
    assert!(
        !stdout.contains("extent.rs:22"),
        "the panic-free encode impl must not be flagged\n{stdout}"
    );
}

#[test]
fn c1_narrowing_and_tainted_arith_are_reported() {
    expect_bad("bad-c1", "C1");
    let out = run_on("bad-c1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("narrowing `as u16`"),
        "bad-c1 should flag the narrowing cast\n{stdout}"
    );
    assert!(
        stdout.contains("unchecked `+`/`*` on wire-derived integer `len`"),
        "bad-c1 should flag arithmetic on the wire-read binding\n{stdout}"
    );
    assert_eq!(
        stdout.matches("[C1]").count(),
        2,
        "exactly the cast and the `+` — `u64::from` widening is fine\n{stdout}"
    );
}

#[test]
fn e1_discards_are_reported_but_bindings_are_not() {
    expect_bad("bad-e1", "E1");
    let out = run_on("bad-e1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("`let _ = …`") && stdout.contains("statement-level `.ok()`"),
        "both discard shapes should be flagged\n{stdout}"
    );
    assert_eq!(
        stdout.matches("[E1]").count(),
        2,
        "`let rx = ….ok();` keeps the Option and must not be flagged\n{stdout}"
    );
}

#[test]
fn l2_blocking_calls_under_a_guard_are_reported() {
    expect_bad("bad-l2", "L2");
    let out = run_on("bad-l2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(".write_block(..)") && stdout.contains("pace(..)"),
        "device I/O and pace under the guard should both be flagged\n{stdout}"
    );
    assert_eq!(
        stdout.matches("[L2]").count(),
        2,
        "dropping the guard before pace is the sanctioned shape\n{stdout}"
    );
}

#[test]
fn json_report_is_valid_and_counts_match() {
    let report = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bad-c1-report.json");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad-c1");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nasd-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .arg("--json")
        .arg(&report)
        .output()
        .expect("spawn nasd-lint");
    assert!(!out.status.success(), "bad-c1 has findings");
    let text = std::fs::read_to_string(&report).expect("report file written");
    let json = nasd_obs::json::Json::parse(&text).expect("report parses as JSON");
    let get = |k: &str| match &json {
        nasd_obs::json::Json::Obj(fields) => fields
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v.clone())
            .expect("key present"),
        other => panic!("report root should be an object, got {other:?}"),
    };
    assert_eq!(
        get("schema"),
        nasd_obs::json::Json::str("nasd-lint-report/v1")
    );
    assert_eq!(get("finding_count"), nasd_obs::json::Json::num_u64(2));
    match get("findings") {
        nasd_obs::json::Json::Arr(items) => assert_eq!(items.len(), 2),
        other => panic!("findings should be an array, got {other:?}"),
    }
}

#[test]
fn explain_covers_every_new_rule_and_allow_class() {
    for query in [
        "P2",
        "C1",
        "E1",
        "L2",
        "transitive-panic",
        "swallowed-error",
    ] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_nasd-lint"))
            .args(["explain", query])
            .output()
            .expect("spawn nasd-lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "explain {query} should succeed\n{stdout}"
        );
        assert!(
            stdout.contains("nasd-lint: allow("),
            "explain {query} should show the allow syntax\n{stdout}"
        );
    }
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nasd-lint"))
        .args(["explain", "no-such-rule"])
        .output()
        .expect("spawn nasd-lint");
    assert!(!out.status.success(), "unknown rules should fail");
}

#[test]
fn h1_hot_path_copies_are_reported() {
    expect_bad("bad-h1", "H1");
    let out = run_on("bad-h1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(".to_vec()") && stdout.contains(".copy_from_slice()"),
        "bad-h1 should flag both the flat copy and the staging copy\n{stdout}"
    );
    assert!(
        !stdout.contains("copies_in_tests_are_fine"),
        "test-only copies must not be flagged\n{stdout}"
    );
}

#[test]
fn a1_resurrected_call_surface_is_reported() {
    expect_bad("bad-a1", "A1");
    let out = run_on("bad-a1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("`fn call`") && stdout.contains("`fn call_timeout`"),
        "bad-a1 should flag both legacy definitions\n{stdout}"
    );
    assert!(
        stdout.contains("call_with"),
        "the finding should point at the one surviving surface\n{stdout}"
    );
}
