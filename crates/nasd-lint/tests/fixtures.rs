//! Runs the nasd-lint binary against the fixture corpus: the good tree
//! must exit 0, and every known-bad tree must exit nonzero with the
//! expected rule ID in its report.

use std::path::PathBuf;
use std::process::Output;

fn run_on(fixture: &str) -> Output {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    std::process::Command::new(env!("CARGO_BIN_EXE_nasd-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("spawn nasd-lint")
}

fn expect_bad(fixture: &str, rule: &str) {
    let out = run_on(fixture);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "{fixture}: expected nonzero exit, got success\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("[{rule}]")),
        "{fixture}: expected a [{rule}] finding\n{stdout}"
    );
}

#[test]
fn good_tree_is_clean() {
    let out = run_on("good");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "good: expected exit 0\n{stdout}");
    assert!(stdout.contains("0 findings"), "good: {stdout}");
}

#[test]
fn d1_wall_clock_is_reported() {
    expect_bad("bad-d1", "D1");
}

#[test]
fn p1_panic_sites_are_reported() {
    expect_bad("bad-p1", "P1");
    let out = run_on("bad-p1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(".unwrap()") && stdout.contains("bare indexing"),
        "bad-p1 should flag both the unwrap and the slice index\n{stdout}"
    );
}

#[test]
fn w1_missing_matrix_arm_is_reported() {
    expect_bad("bad-w1", "W1");
    let out = run_on("bad-w1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("NasdStatus::Busy") && stdout.contains("retry"),
        "bad-w1 should name the variant missing from the retry matrix\n{stdout}"
    );
}

#[test]
fn l1_lock_order_cycle_is_reported() {
    expect_bad("bad-l1", "L1");
}

#[test]
fn f1_missing_forbid_is_reported() {
    expect_bad("bad-f1", "F1");
}

#[test]
fn suppressions_require_a_reason() {
    expect_bad("bad-suppress", "S0");
    let out = run_on("bad-suppress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("[D1]"),
        "the reasonless allow still suppresses the D1 finding itself\n{stdout}"
    );
}

#[test]
fn h1_hot_path_copies_are_reported() {
    expect_bad("bad-h1", "H1");
    let out = run_on("bad-h1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(".to_vec()") && stdout.contains(".copy_from_slice()"),
        "bad-h1 should flag both the flat copy and the staging copy\n{stdout}"
    );
    assert!(
        !stdout.contains("copies_in_tests_are_fine"),
        "test-only copies must not be flagged\n{stdout}"
    );
}
