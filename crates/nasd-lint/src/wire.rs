//! W1: wire exhaustiveness.
//!
//! Parses the watched protocol enums out of `crates/proto` and verifies
//! every variant appears in the wire encode arms, the wire decode arms,
//! and the fault-injection matrices (`NasdStatus::retry_class`,
//! `RequestBody::mutates`). The enums are `#[non_exhaustive]`, so a new
//! variant compiles even when a downstream `match` silently routes it
//! through a `_` arm — this rule is what makes forgetting an arm a CI
//! failure.

use crate::lexer::{matching, Token};
use crate::{RawFinding, Source};

enum RegionKind {
    /// Body of `impl <trait> for <enum>`.
    ImplFor(&'static str),
    /// Body of `fn <name>` anywhere in the enum's crate.
    Fn(&'static str),
}

struct Region {
    label: &'static str,
    kind: RegionKind,
}

struct Spec {
    enum_name: &'static str,
    regions: &'static [Region],
}

const SPECS: &[Spec] = &[
    Spec {
        enum_name: "NasdStatus",
        regions: &[
            Region {
                label: "wire encode (NasdStatus::to_byte)",
                kind: RegionKind::Fn("to_byte"),
            },
            Region {
                label: "wire decode (NasdStatus::from_byte)",
                kind: RegionKind::Fn("from_byte"),
            },
            Region {
                label: "fault-injection retry matrix (NasdStatus::retry_class)",
                kind: RegionKind::Fn("retry_class"),
            },
        ],
    },
    Spec {
        enum_name: "RequestBody",
        regions: &[
            Region {
                label: "wire encode (impl WireEncode)",
                kind: RegionKind::ImplFor("WireEncode"),
            },
            Region {
                label: "wire decode (impl WireDecode)",
                kind: RegionKind::ImplFor("WireDecode"),
            },
            Region {
                label: "fault-injection mutation matrix (RequestBody::mutates)",
                kind: RegionKind::Fn("mutates"),
            },
        ],
    },
    Spec {
        enum_name: "ReplyBody",
        regions: &[
            Region {
                label: "wire encode (impl WireEncode)",
                kind: RegionKind::ImplFor("WireEncode"),
            },
            // The borrowed `impl WireDecode` is a thin copy-in wrapper;
            // the real decode arms live in `ReplyBody::decode_owned`.
            Region {
                label: "wire decode (ReplyBody::decode_owned)",
                kind: RegionKind::Fn("decode_owned"),
            },
        ],
    },
];

pub(crate) fn check_w1(sources: &[Source], out: &mut Vec<RawFinding>) {
    for spec in SPECS {
        // Locate the enum definition.
        let Some((def_idx, enum_start, variants)) = find_enum(sources, spec.enum_name) else {
            continue; // enum not in this source set (e.g. fixtures)
        };
        let Some(def) = sources.get(def_idx) else {
            continue;
        };
        let crate_prefix = def
            .path
            .rsplit_once("/src/")
            .map(|(p, _)| format!("{p}/src/"))
            .unwrap_or_else(|| def.path.clone());

        for region in spec.regions {
            let spans = find_regions(sources, &crate_prefix, spec.enum_name, &region.kind);
            if spans.is_empty() {
                out.push(RawFinding {
                    rule: "W1",
                    file: def.path.clone(),
                    line: def.lexed.tokens.get(enum_start).map_or(0, |t| t.line),
                    message: format!(
                        "`{}` has no {} region; the codec/matrix is missing entirely",
                        spec.enum_name, region.label
                    ),
                    allow: None,
                });
                continue;
            }
            for (vname, vline) in &variants {
                let covered = spans.iter().any(|(src_idx, lo, hi)| {
                    sources.get(*src_idx).is_some_and(|s| {
                        let toks = &s.lexed.tokens;
                        (*lo..*hi).any(|i| {
                            toks.get(i)
                                .is_some_and(|t| t.is_ident(spec.enum_name) || t.is_ident("Self"))
                                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                                && toks.get(i + 3).is_some_and(|t| t.is_ident(vname))
                        })
                    })
                });
                if !covered {
                    out.push(RawFinding {
                        rule: "W1",
                        file: def.path.clone(),
                        line: *vline,
                        message: format!(
                            "`{}::{}` is not covered by the {}",
                            spec.enum_name, vname, region.label
                        ),
                        allow: None,
                    });
                }
            }
        }
    }
}

/// A located enum: source index, token index of the `enum` keyword, and
/// variants as `(name, line)`.
type EnumDef = (usize, usize, Vec<(String, u32)>);

/// Find `enum <name>` in any source.
fn find_enum(sources: &[Source], name: &str) -> Option<EnumDef> {
    for (si, src) in sources.iter().enumerate() {
        let toks = &src.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test || !t.is_ident("enum") {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
                continue;
            }
            let open =
                (i + 2..toks.len()).find(|&k| toks.get(k).is_some_and(|t| t.is_punct('{')))?;
            let close = matching(toks, open, '{', '}')?;
            return Some((si, i, extract_variants(toks, open, close)));
        }
    }
    None
}

/// Collect variant identifiers at brace depth 1 of the enum body, skipping
/// attributes, payloads (`{..}`, `(..)`) and discriminants.
fn extract_variants(toks: &[Token], open: usize, close: usize) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut bdepth = 1usize;
    let mut pdepth = 0usize;
    let mut expecting = true;
    let mut i = open + 1;
    while i < close {
        let Some(t) = toks.get(i) else { break };
        // Skip attribute groups like `#[doc = "…"]`.
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            if let Some(end) = matching(toks, i + 1, '[', ']') {
                i = end + 1;
                continue;
            }
        }
        match &t.tok {
            crate::lexer::Tok::Punct('{') => bdepth += 1,
            crate::lexer::Tok::Punct('}') => bdepth -= 1,
            crate::lexer::Tok::Punct('(') | crate::lexer::Tok::Punct('[') => pdepth += 1,
            crate::lexer::Tok::Punct(')') | crate::lexer::Tok::Punct(']') => pdepth -= 1,
            crate::lexer::Tok::Punct(',') if bdepth == 1 && pdepth == 0 => expecting = true,
            crate::lexer::Tok::Ident(name) if expecting && bdepth == 1 && pdepth == 0 => {
                variants.push((name.clone(), t.line));
                expecting = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// All `(source, start, end)` token spans for the requested region kind,
/// restricted to files in the enum's own crate.
fn find_regions(
    sources: &[Source],
    crate_prefix: &str,
    enum_name: &str,
    kind: &RegionKind,
) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    for (si, src) in sources.iter().enumerate() {
        if !src.path.starts_with(crate_prefix) {
            continue;
        }
        let toks = &src.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let body_start = match kind {
                RegionKind::ImplFor(trait_name) => {
                    if t.is_ident("impl")
                        && toks.get(i + 1).is_some_and(|t| t.is_ident(trait_name))
                        && toks.get(i + 2).is_some_and(|t| t.is_ident("for"))
                        && toks.get(i + 3).is_some_and(|t| t.is_ident(enum_name))
                    {
                        Some(i + 4)
                    } else {
                        None
                    }
                }
                RegionKind::Fn(fn_name) => {
                    if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident(fn_name)) {
                        Some(i + 2)
                    } else {
                        None
                    }
                }
            };
            let Some(from) = body_start else { continue };
            // Find the body's opening brace (a `;` first means a trait
            // method declaration with no body — not a region).
            let Some(open) = (from..toks.len()).find(|&k| {
                toks.get(k)
                    .is_some_and(|t| t.is_punct('{') || t.is_punct(';'))
            }) else {
                continue;
            };
            if toks.get(open).is_some_and(|t| t.is_punct(';')) {
                continue;
            }
            if let Some(close) = matching(toks, open, '{', '}') {
                spans.push((si, open, close));
            }
        }
    }
    spans
}
