//! nasd-lint: workspace invariant checker.
//!
//! Statically enforces the invariants the NASD reproduction relies on but
//! the compiler cannot check:
//!
//! - **D1 determinism** — simulation-visible crates must not read wall
//!   clocks, real entropy, or sleep real threads; all time comes from the
//!   simulated clock so chaos runs stay replayable.
//! - **P1 panic-free request paths** — drive / file-manager / Cheops
//!   request handling must return [`NasdStatus`]-style errors, never
//!   `unwrap()`, `expect()`, `panic!` or bare slice indexing.
//! - **H1 hot-path copy discipline** — data-path modules (drive, store,
//!   cache, wire codec, file-manager and striping clients) must not copy
//!   payload bytes casually: `.to_vec()`, `.copy_from_slice(..)`,
//!   `.extend_from_slice(..)` and `Bytes::copy_from_slice` each need a
//!   reasoned `allow(hot-path-copy)` explaining why the copy is the point.
//! - **W1 wire exhaustiveness** — every `RequestBody`, `ReplyBody` and
//!   `NasdStatus` variant must appear in the wire encode arms, the wire
//!   decode arms, and the fault-injection matrices.
//! - **L1 lock order** — nested `Mutex::lock()` acquisitions must form an
//!   acyclic global order.
//! - **F1 forbid-unsafe** — every crate root must carry
//!   `#![forbid(unsafe_code)]`.
//!
//! Findings can be suppressed at a site with a reasoned comment:
//!
//! ```text
//! // nasd-lint: allow(wall-clock, "real-thread RPC pacing, not sim-visible")
//! ```
//!
//! A suppression without a reason string is itself a finding (S0), as is a
//! suppression that no longer matches anything (S1).
//!
//! [`NasdStatus`]: https://www.pdl.cmu.edu/NASD/ — status codes from the
//! NASD drive interface (Gibson et al., ASPLOS '98).

#![forbid(unsafe_code)]

pub mod lexer;
mod locks;
mod rules;
mod wire;

use lexer::Lexed;
use std::fmt;

/// A single lint finding: stable rule ID plus file:line location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding before suppression filtering. `allow` names the suppression
/// class that can silence it (`None` = unsuppressable).
#[derive(Debug)]
pub(crate) struct RawFinding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub allow: Option<&'static str>,
}

/// One lexed source file, with a workspace-relative path.
pub(crate) struct Source {
    pub path: String,
    pub lexed: Lexed,
}

#[derive(Debug)]
struct Suppression {
    file_idx: usize,
    line: u32,
    name: String,
    /// Line of code the suppression applies to: the comment's own line if
    /// code shares it, otherwise the next line holding a token.
    target_line: Option<u32>,
    used: bool,
}

/// Run every rule over `(path, contents)` pairs and return the findings
/// that survive suppression, plus any suppression-hygiene findings.
pub fn check_sources(files: &[(String, String)]) -> Vec<Finding> {
    let sources: Vec<Source> = files
        .iter()
        .map(|(p, s)| Source {
            path: p.replace('\\', "/"),
            lexed: lexer::lex(s),
        })
        .collect();

    let mut raw: Vec<RawFinding> = Vec::new();
    for src in &sources {
        rules::check_d1(src, &mut raw);
        rules::check_p1(src, &mut raw);
        rules::check_h1(src, &mut raw);
        rules::check_f1(src, &mut raw);
    }
    wire::check_w1(&sources, &mut raw);
    locks::check_l1(&sources, &mut raw);

    let mut findings: Vec<Finding> = Vec::new();
    let mut supps: Vec<Suppression> = Vec::new();
    for (idx, src) in sources.iter().enumerate() {
        collect_suppressions(idx, src, &mut supps, &mut findings);
    }

    for r in raw {
        let suppressed = r.allow.is_some_and(|class| {
            supps.iter_mut().any(|s| {
                let hit = sources[s.file_idx].path == r.file
                    && s.name == class
                    && s.target_line == Some(r.line);
                if hit {
                    s.used = true;
                }
                hit
            })
        });
        if !suppressed {
            findings.push(Finding {
                rule: r.rule,
                file: r.file,
                line: r.line,
                message: r.message,
            });
        }
    }

    // S1: suppressions that silence nothing are stale and must be removed
    // (skip suppressions that target test-only code, which rules ignore).
    for s in &supps {
        if s.used {
            continue;
        }
        let src = &sources[s.file_idx];
        let targets_test_code = s.target_line.is_some_and(|tl| {
            let on_line: Vec<_> = src.lexed.tokens.iter().filter(|t| t.line == tl).collect();
            !on_line.is_empty() && on_line.iter().all(|t| t.in_test)
        });
        if !targets_test_code {
            findings.push(Finding {
                rule: "S1",
                file: src.path.clone(),
                line: s.line,
                message: format!(
                    "suppression `allow({})` does not match any finding; remove it",
                    s.name
                ),
            });
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

fn collect_suppressions(
    file_idx: usize,
    src: &Source,
    supps: &mut Vec<Suppression>,
    findings: &mut Vec<Finding>,
) {
    for c in &src.lexed.comments {
        // Only plain `// nasd-lint: …` line comments are suppressions; doc
        // comments (`///`, `//!`) may mention the syntax without effect.
        let Some(rest) = c.text.strip_prefix("//") else {
            continue;
        };
        if rest.starts_with('/') || rest.starts_with('!') {
            continue;
        }
        if !rest.trim_start().starts_with("nasd-lint") {
            continue;
        }
        match parse_suppression(&c.text) {
            Some((name, reason)) => {
                let has_reason = reason.is_some_and(|r| !r.trim().is_empty());
                if !has_reason {
                    findings.push(Finding {
                        rule: "S0",
                        file: src.path.clone(),
                        line: c.line,
                        message: format!(
                            "suppression `allow({name})` has no reason; write \
                             `// nasd-lint: allow({name}, \"why this is safe\")`"
                        ),
                    });
                }
                // Reason-less suppressions still suppress, so CI reports
                // exactly one error (the S0 above) per such site.
                supps.push(Suppression {
                    file_idx,
                    line: c.line,
                    name,
                    target_line: target_line(&src.lexed, c.line),
                    used: false,
                });
            }
            None => {
                findings.push(Finding {
                    rule: "S0",
                    file: src.path.clone(),
                    line: c.line,
                    message: "malformed nasd-lint comment; expected \
                              `// nasd-lint: allow(<rule-class>, \"reason\")`"
                        .to_owned(),
                });
            }
        }
    }
}

/// Parse `nasd-lint: allow(name)` / `nasd-lint: allow(name, "reason")` out
/// of a comment. Returns `(name, reason)`, or `None` if malformed.
fn parse_suppression(text: &str) -> Option<(String, Option<String>)> {
    let rest = text.split_once("nasd-lint")?.1;
    let rest = rest.trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix("allow")?;
    let rest = rest.trim_start().strip_prefix('(')?;
    let end = rest.find([',', ')'])?;
    let name = rest[..end].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return None;
    }
    let after = &rest[end..];
    if let Some(tail) = after.strip_prefix(',') {
        let tail = tail.trim_start();
        let tail = tail.strip_prefix('"')?;
        let (reason, rest) = tail.split_once('"')?;
        rest.trim_start().strip_prefix(')')?;
        Some((name.to_owned(), Some(reason.to_owned())))
    } else {
        after.strip_prefix(')')?;
        Some((name.to_owned(), None))
    }
}

fn target_line(lexed: &Lexed, comment_line: u32) -> Option<u32> {
    if lexed.tokens.iter().any(|t| t.line == comment_line) {
        return Some(comment_line);
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > comment_line)
        .min()
}

/// The crate directory name (`object` in `crates/object/src/...`), if any.
pub(crate) fn crate_of(path: &str) -> Option<&str> {
    let (_, rest) = path.split_once("crates/")?;
    rest.split('/').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_suppression_forms() {
        assert_eq!(
            parse_suppression("// nasd-lint: allow(wall-clock, \"rpc pacing\")"),
            Some(("wall-clock".into(), Some("rpc pacing".into())))
        );
        assert_eq!(
            parse_suppression("// nasd-lint: allow(panic)"),
            Some(("panic".into(), None))
        );
        assert_eq!(parse_suppression("// nasd-lint: allow()"), None);
        assert_eq!(parse_suppression("// nasd-lint allow(panic)"), None);
        assert_eq!(
            parse_suppression("// nasd-lint: allow(panic, reason)"),
            None
        );
    }

    #[test]
    fn crate_of_extracts_dir() {
        assert_eq!(crate_of("crates/object/src/store.rs"), Some("object"));
        assert_eq!(crate_of("shims/rand/src/lib.rs"), None);
    }
}
