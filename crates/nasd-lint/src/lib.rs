//! nasd-lint: workspace invariant checker.
//!
//! Statically enforces the invariants the NASD reproduction relies on but
//! the compiler cannot check:
//!
//! - **D1 determinism** — simulation-visible crates must not read wall
//!   clocks, real entropy, or sleep real threads; all time comes from the
//!   simulated clock so chaos runs stay replayable.
//! - **P1 panic-free request paths** — drive / file-manager / Cheops
//!   request handling must return [`NasdStatus`]-style errors, never
//!   `unwrap()`, `expect()`, `panic!` or bare slice indexing.
//! - **H1 hot-path copy discipline** — data-path modules (drive, store,
//!   cache, wire codec, file-manager and striping clients) must not copy
//!   payload bytes casually: `.to_vec()`, `.copy_from_slice(..)`,
//!   `.extend_from_slice(..)` and `Bytes::copy_from_slice` each need a
//!   reasoned `allow(hot-path-copy)` explaining why the copy is the point.
//! - **P2 transitive panic-freedom** — the same panic patterns reachable
//!   *through helpers* from request entry points, found by BFS over a
//!   workspace call graph (pass 1 of the two-pass analyzer, `graph.rs`).
//! - **C1 cast/arithmetic safety** — narrowing `as` casts and unchecked
//!   `+`/`*` on wire-decoded or on-disk integers in the codec and replay
//!   modules must use `try_from`/`checked_*` or carry a reasoned allow.
//! - **E1 swallowed results** — `let _ = …` and statement-level `.ok()`
//!   on ack/durability/repair paths must handle, propagate or count the
//!   error in an obs metric.
//! - **W1 wire exhaustiveness** — every `RequestBody`, `ReplyBody` and
//!   `NasdStatus` variant must appear in the wire encode arms, the wire
//!   decode arms, and the fault-injection matrices.
//! - **L1 lock order** — nested `Mutex::lock()` acquisitions must form an
//!   acyclic global order.
//! - **L2 guard-across-blocking** — no lock guard may be held across
//!   `pace(..)`, `.observe(..)` or device I/O.
//! - **F1 forbid-unsafe** — every crate root must carry
//!   `#![forbid(unsafe_code)]`.
//! - **A1 one call surface** — the deleted `Rpc::call` /
//!   `call_timeout` / `call_retry` methods must not be redefined in the
//!   transport crate; every caller goes through
//!   `call_with(&CallOptions)`.
//!
//! The analyzer runs in two passes: pass 1 lexes every source file,
//! builds a symbol table of `fn` definitions and an over-approximated
//! name-resolved call graph (pruned by crate dependencies parsed from
//! the workspace `Cargo.toml` manifests); pass 2 runs the per-file rules
//! plus the graph-based P2 over it.
//!
//! Findings can be suppressed at a site with a reasoned comment:
//!
//! ```text
//! // nasd-lint: allow(wall-clock, "real-thread RPC pacing, not sim-visible")
//! ```
//!
//! A suppression without a reason string is itself a finding (S0), as is a
//! suppression that no longer matches anything (S1).
//!
//! [`NasdStatus`]: https://www.pdl.cmu.edu/NASD/ — status codes from the
//! NASD drive interface (Gibson et al., ASPLOS '98).

#![forbid(unsafe_code)]

pub mod lexer;

mod casts;
mod graph;
mod locks;
mod rules;
mod wire;

use lexer::Lexed;
use nasd_obs::Json;
use std::fmt;

/// A single lint finding: stable rule ID plus file:line location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding before suppression filtering. `allow` names the suppression
/// class that can silence it (`None` = unsuppressable).
#[derive(Debug)]
pub(crate) struct RawFinding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub allow: Option<&'static str>,
}

/// One lexed source file, with a workspace-relative path.
pub(crate) struct Source {
    pub path: String,
    pub lexed: Lexed,
}

#[derive(Debug)]
struct Suppression {
    file_idx: usize,
    line: u32,
    name: String,
    /// Line of code the suppression applies to: the comment's own line if
    /// code shares it, otherwise the next line holding a token.
    target_line: Option<u32>,
    used: bool,
}

/// Run every rule over `(path, contents)` pairs and return the findings
/// that survive suppression, plus any suppression-hygiene findings.
///
/// Paths ending in `Cargo.toml` are treated as workspace manifests: they
/// feed the call graph's crate-dependency map (pruning cross-crate P2
/// edges) and are not lexed as Rust. Without manifests every call-graph
/// edge resolves, which is what small fixture trees want.
pub fn check_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut manifests: Vec<(String, String)> = Vec::new();
    let mut sources: Vec<Source> = Vec::new();
    for (p, s) in files {
        let path = p.replace('\\', "/");
        if path.ends_with("Cargo.toml") {
            manifests.push((path, s.clone()));
        } else {
            sources.push(Source {
                path,
                lexed: lexer::lex(s),
            });
        }
    }

    let mut raw: Vec<RawFinding> = Vec::new();
    for src in &sources {
        rules::check_d1(src, &mut raw);
        rules::check_p1(src, &mut raw);
        rules::check_e1(src, &mut raw);
        rules::check_h1(src, &mut raw);
        rules::check_f1(src, &mut raw);
        rules::check_a1(src, &mut raw);
        casts::check_c1(src, &mut raw);
    }
    wire::check_w1(&sources, &mut raw);
    locks::check_l1(&sources, &mut raw);
    let call_graph = graph::build(&sources, &manifests);
    graph::check_p2(&sources, &call_graph, &mut raw);

    let mut findings: Vec<Finding> = Vec::new();
    let mut supps: Vec<Suppression> = Vec::new();
    for (idx, src) in sources.iter().enumerate() {
        collect_suppressions(idx, src, &mut supps, &mut findings);
    }

    for r in raw {
        let suppressed = r.allow.is_some_and(|class| {
            supps.iter_mut().any(|s| {
                let hit = sources.get(s.file_idx).is_some_and(|f| f.path == r.file)
                    && s.name == class
                    && s.target_line == Some(r.line);
                if hit {
                    s.used = true;
                }
                hit
            })
        });
        if !suppressed {
            findings.push(Finding {
                rule: r.rule,
                file: r.file,
                line: r.line,
                message: r.message,
            });
        }
    }

    // S1: suppressions that silence nothing are stale and must be removed
    // (skip suppressions that target test-only code, which rules ignore).
    for s in &supps {
        if s.used {
            continue;
        }
        let Some(src) = sources.get(s.file_idx) else {
            continue;
        };
        let targets_test_code = s.target_line.is_some_and(|tl| {
            let on_line: Vec<_> = src.lexed.tokens.iter().filter(|t| t.line == tl).collect();
            !on_line.is_empty() && on_line.iter().all(|t| t.in_test)
        });
        if !targets_test_code {
            findings.push(Finding {
                rule: "S1",
                file: src.path.clone(),
                line: s.line,
                message: format!(
                    "suppression `allow({})` does not match any finding; remove it",
                    s.name
                ),
            });
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

fn collect_suppressions(
    file_idx: usize,
    src: &Source,
    supps: &mut Vec<Suppression>,
    findings: &mut Vec<Finding>,
) {
    for c in &src.lexed.comments {
        // Only plain `// nasd-lint: …` line comments are suppressions; doc
        // comments (`///`, `//!`) may mention the syntax without effect.
        let Some(rest) = c.text.strip_prefix("//") else {
            continue;
        };
        if rest.starts_with('/') || rest.starts_with('!') {
            continue;
        }
        if !rest.trim_start().starts_with("nasd-lint") {
            continue;
        }
        match parse_suppression(&c.text) {
            Some((name, reason)) => {
                let has_reason = reason.is_some_and(|r| !r.trim().is_empty());
                if !has_reason {
                    findings.push(Finding {
                        rule: "S0",
                        file: src.path.clone(),
                        line: c.line,
                        message: format!(
                            "suppression `allow({name})` has no reason; write \
                             `// nasd-lint: allow({name}, \"why this is safe\")`"
                        ),
                    });
                }
                // Reason-less suppressions still suppress, so CI reports
                // exactly one error (the S0 above) per such site.
                supps.push(Suppression {
                    file_idx,
                    line: c.line,
                    name,
                    target_line: target_line(&src.lexed, c.line),
                    used: false,
                });
            }
            None => {
                findings.push(Finding {
                    rule: "S0",
                    file: src.path.clone(),
                    line: c.line,
                    message: "malformed nasd-lint comment; expected \
                              `// nasd-lint: allow(<rule-class>, \"reason\")`"
                        .to_owned(),
                });
            }
        }
    }
}

/// Parse `nasd-lint: allow(name)` / `nasd-lint: allow(name, "reason")` out
/// of a comment. Returns `(name, reason)`, or `None` if malformed.
fn parse_suppression(text: &str) -> Option<(String, Option<String>)> {
    let rest = text.split_once("nasd-lint")?.1;
    let rest = rest.trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix("allow")?;
    let rest = rest.trim_start().strip_prefix('(')?;
    let end = rest.find([',', ')'])?;
    let name = rest.get(..end)?.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return None;
    }
    let after = rest.get(end..)?;
    if let Some(tail) = after.strip_prefix(',') {
        let tail = tail.trim_start();
        let tail = tail.strip_prefix('"')?;
        let (reason, rest) = tail.split_once('"')?;
        rest.trim_start().strip_prefix(')')?;
        Some((name.to_owned(), Some(reason.to_owned())))
    } else {
        after.strip_prefix(')')?;
        Some((name.to_owned(), None))
    }
}

fn target_line(lexed: &Lexed, comment_line: u32) -> Option<u32> {
    if lexed.tokens.iter().any(|t| t.line == comment_line) {
        return Some(comment_line);
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > comment_line)
        .min()
}

/// The crate directory name (`object` in `crates/object/src/...`), if any.
pub(crate) fn crate_of(path: &str) -> Option<&str> {
    let (_, rest) = path.split_once("crates/")?;
    rest.split('/').next()
}

/// One entry in the rule registry, driving `explain <rule>` and the JSON
/// report's rule table.
pub struct RuleInfo {
    pub id: &'static str,
    pub title: &'static str,
    /// Suppression class accepted at a site, `None` = unsuppressable.
    pub allow: Option<&'static str>,
    pub rationale: &'static str,
}

/// Every rule the analyzer runs, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        title: "determinism in sim-visible crates",
        allow: Some("wall-clock"),
        rationale: "Chaos runs replay from a seed; any wall clock, OS entropy or \
                    real-thread sleep in a sim-visible crate makes replays diverge. \
                    All time comes from the simulated clock; real-thread pacing goes \
                    through nasd_net::pace.",
    },
    RuleInfo {
        id: "P1",
        title: "panic-free request paths (direct)",
        allow: Some("panic"),
        rationale: "A drive promises every request completes or returns a typed \
                    NasdStatus error; unwrap/expect/panic!/bare indexing in a request \
                    module breaks the acknowledgement promise the chaos suite checks.",
    },
    RuleInfo {
        id: "P2",
        title: "panic-free request paths (transitive, call-graph)",
        allow: Some("transitive-panic"),
        rationale: "P1 is module-local; a helper two hops away can still panic on \
                    behalf of a request. Pass 1 builds a workspace call graph (name- \
                    resolved, so trait-method calls over-approximate to every impl, \
                    pruned by crate dependencies); P2 BFS-reaches helpers from the \
                    request entry modules and flags panic sites there, each with an \
                    example call path.",
    },
    RuleInfo {
        id: "C1",
        title: "cast/arithmetic safety on wire and on-disk integers",
        allow: Some("cast / arith"),
        rationale: "A hostile frame length survives a narrowing `as` cast and \
                    corrupts the replay cursor silently; unchecked +/* on decoded \
                    offsets overflows the same way. Decode paths use try_from and \
                    checked_add/checked_mul mapped to typed Corrupt errors.",
    },
    RuleInfo {
        id: "E1",
        title: "no swallowed Results on ack/durability/repair paths",
        allow: Some("swallowed-error"),
        rationale: "`let _ = send(..)` turns a lost acknowledgement or a failed \
                    repair step into silence. Such sites must handle the error, \
                    propagate it, or at minimum count it in an obs error metric so \
                    operators can see the loss rate.",
    },
    RuleInfo {
        id: "H1",
        title: "hot-path copy discipline",
        allow: Some("hot-path-copy"),
        rationale: "The zero-copy read path dies one to_vec() at a time; every \
                    payload copy on a data-path module must argue why the copy is \
                    the point.",
    },
    RuleInfo {
        id: "W1",
        title: "wire exhaustiveness",
        allow: None,
        rationale: "Every RequestBody/ReplyBody/NasdStatus variant must appear in \
                    wire encode, wire decode and the fault-injection matrices; a \
                    missing arm is a silent protocol hole. Unsuppressable.",
    },
    RuleInfo {
        id: "L1",
        title: "lock-order acyclicity",
        allow: Some("lock-order"),
        rationale: "Nested Mutex acquisitions must follow one global order per \
                    crate; any cycle is a latent deadlock.",
    },
    RuleInfo {
        id: "L2",
        title: "no lock guard held across blocking calls",
        allow: Some("lock-across-blocking"),
        rationale: "pace(..), .observe(..) and device I/O can block; holding a \
                    guard across them serializes every contender for the whole \
                    call. Benign under today's in-process transport, a real stall \
                    under the threaded TCP transport the ROADMAP plans.",
    },
    RuleInfo {
        id: "F1",
        title: "forbid unsafe code",
        allow: None,
        rationale: "Every crate root carries #![forbid(unsafe_code)]; the \
                    reproduction needs no unsafe and allowing any would undermine \
                    the panic-freedom analysis. Unsuppressable.",
    },
    RuleInfo {
        id: "A1",
        title: "one call surface on the transport",
        allow: None,
        rationale: "The transport exposes exactly one blocking entry, \
                    call_with(&CallOptions), shared by the in-proc and socket \
                    implementations; redefining the deleted call/call_timeout/\
                    call_retry methods in crates/net would fork retry/timeout \
                    policy away from CallOptions again. Unsuppressable.",
    },
    RuleInfo {
        id: "S0",
        title: "suppressions carry a reason",
        allow: None,
        rationale: "An allow() without a reason string is a finding itself: the \
                    reason is the review artifact.",
    },
    RuleInfo {
        id: "S1",
        title: "suppressions stay load-bearing",
        allow: None,
        rationale: "An allow() that no longer matches any finding is stale and \
                    must be removed, so the suppression inventory never outgrows \
                    the real exception list.",
    },
];

/// Registry lookup by rule id (case-insensitive) or allow class.
#[must_use]
pub fn rule_info(query: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| {
        r.id.eq_ignore_ascii_case(query)
            || r.allow
                .is_some_and(|a| a.split('/').any(|c| c.trim() == query))
    })
}

/// Build the machine-readable findings report (`nasd-lint-report/v1`),
/// shaped like the bench reports CI already archives.
#[must_use]
pub fn report_json(files_checked: usize, findings: &[Finding]) -> Json {
    let mut by_rule: Vec<(String, u64)> = Vec::new();
    for f in findings {
        match by_rule.iter_mut().find(|(r, _)| r == f.rule) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.to_owned(), 1)),
        }
    }
    Json::Obj(vec![
        ("schema".to_owned(), Json::str("nasd-lint-report/v1")),
        (
            "files_checked".to_owned(),
            Json::num_u64(files_checked as u64),
        ),
        (
            "finding_count".to_owned(),
            Json::num_u64(findings.len() as u64),
        ),
        (
            "by_rule".to_owned(),
            Json::Obj(
                by_rule
                    .into_iter()
                    .map(|(r, n)| (r, Json::num_u64(n)))
                    .collect(),
            ),
        ),
        (
            "findings".to_owned(),
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("rule".to_owned(), Json::str(f.rule)),
                            ("file".to_owned(), Json::str(f.file.clone())),
                            ("line".to_owned(), Json::num_u64(u64::from(f.line))),
                            ("message".to_owned(), Json::str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_suppression_forms() {
        assert_eq!(
            parse_suppression("// nasd-lint: allow(wall-clock, \"rpc pacing\")"),
            Some(("wall-clock".into(), Some("rpc pacing".into())))
        );
        assert_eq!(
            parse_suppression("// nasd-lint: allow(panic)"),
            Some(("panic".into(), None))
        );
        assert_eq!(parse_suppression("// nasd-lint: allow()"), None);
        assert_eq!(parse_suppression("// nasd-lint allow(panic)"), None);
        assert_eq!(
            parse_suppression("// nasd-lint: allow(panic, reason)"),
            None
        );
    }

    #[test]
    fn crate_of_extracts_dir() {
        assert_eq!(crate_of("crates/object/src/store.rs"), Some("object"));
        assert_eq!(crate_of("shims/rand/src/lib.rs"), None);
    }
}
