//! Pass 1 of the workspace analyzer: a symbol table and intra-workspace
//! call graph, plus the P2 transitive-panic rule built on top of it.
//!
//! The graph is deliberately name-resolved, not type-resolved: a call
//! edge `foo(` or `.foo(` points at *every* workspace `fn foo`. That
//! over-approximation is the point — a trait-method call must reach all
//! of its impls, because the checker cannot know which one runs. Edges
//! are pruned by crate dependency (from the workspace `Cargo.toml`
//! manifests): `a::f` can only call `b::g` when crate `a` declares a
//! dependency on crate `b` (or `a == b`). Without manifests (fixture
//! trees), every edge is allowed.

use crate::lexer::{matching, Tok, Token};
use crate::rules::{in_file_scope, panic_at, P1_FILES};
use crate::{crate_of, RawFinding, Source};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifiers that look like `name(` but are control flow, not calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "loop", "match", "return", "break", "continue", "move",
    "let", "mut", "ref", "as", "where", "unsafe", "async", "await", "dyn", "impl", "fn", "_",
];

/// One `fn` item: where it lives and which tokens it owns.
pub(crate) struct FnDef {
    pub(crate) name: String,
    pub(crate) file: usize,
    /// Line of the `fn` keyword — P2 findings anchor here, so one
    /// reasoned allow above the definition covers the whole helper.
    pub(crate) line: u32,
    /// Body token range `(open_brace, close_brace)`; `None` for
    /// body-less trait-method declarations.
    pub(crate) body: Option<(usize, usize)>,
    pub(crate) in_test: bool,
}

/// A call edge origin: callee name plus the call site's line.
pub(crate) struct CallSite {
    pub(crate) callee: String,
    pub(crate) line: u32,
}

pub(crate) struct CallGraph {
    pub(crate) defs: Vec<FnDef>,
    /// Name → indices of every def with that name (the over-approximation).
    pub(crate) by_name: BTreeMap<String, Vec<usize>>,
    /// Per def: calls made from tokens the def owns (nested fns excluded).
    pub(crate) calls: Vec<Vec<CallSite>>,
    /// Per def: potential panic sites `(line, description, is_indexing)`.
    pub(crate) panics: Vec<Vec<(u32, String, bool)>>,
    /// Crate-dir dependency edges parsed from workspace manifests, or
    /// `None` when no manifests were provided (then all edges resolve).
    pub(crate) deps: Option<BTreeMap<String, BTreeSet<String>>>,
}

/// Parse the bits of a `Cargo.toml` the graph needs: the `[package]`
/// name and the `[dependencies]` keys. Hand-rolled on purpose — the
/// checker stays dependency-free.
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut section = String::new();
    let mut pkg_name = None;
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if section == "package" && key == "name" {
            pkg_name = Some(value.trim().trim_matches('"').to_owned());
        } else if section == "dependencies" {
            // `nasd-disk.workspace = true` keys the dep before the dot.
            let dep = key.split('.').next().unwrap_or(key);
            deps.push(dep.trim().to_owned());
        }
    }
    (pkg_name, deps)
}

/// Build the crate-dir dependency map from `(path, contents)` manifest
/// pairs. Paths look like `crates/<dir>/Cargo.toml`; dependency keys are
/// package names, mapped back to dirs via the other manifests.
pub(crate) fn parse_dep_map(
    manifests: &[(String, String)],
) -> Option<BTreeMap<String, BTreeSet<String>>> {
    if manifests.is_empty() {
        return None;
    }
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    let mut dir_pkgs: Vec<(String, Vec<String>)> = Vec::new();
    for (path, text) in manifests {
        let Some(dir) = crate_of(path) else {
            continue;
        };
        let (pkg, deps) = parse_manifest(text);
        if let Some(pkg) = pkg {
            pkg_to_dir.insert(pkg, dir.to_owned());
        }
        dir_pkgs.push((dir.to_owned(), deps));
    }
    let mut map = BTreeMap::new();
    for (dir, deps) in dir_pkgs {
        let resolved: BTreeSet<String> = deps
            .iter()
            .filter_map(|d| pkg_to_dir.get(d).cloned())
            .collect();
        map.insert(dir, resolved);
    }
    Some(map)
}

/// Collect every `fn` item in one file: `fn` keyword, name, then the
/// first `{` (body) or `;` (trait declaration) ends the signature.
fn collect_defs(file: usize, toks: &[Token], defs: &mut Vec<FnDef>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        let Some(name) = name_tok.ident() else {
            continue;
        };
        let mut body = None;
        let mut k = i + 2;
        while let Some(tk) = toks.get(k) {
            if tk.is_punct('{') {
                let close = matching(toks, k, '{', '}').unwrap_or(toks.len() - 1);
                body = Some((k, close));
                break;
            }
            if tk.is_punct(';') {
                break;
            }
            k += 1;
        }
        defs.push(FnDef {
            name: name.to_owned(),
            file,
            line: t.line,
            body,
            in_test: t.in_test,
        });
    }
}

/// Build the graph over all sources: defs, token ownership (innermost
/// def wins, so a nested `fn` keeps its tokens out of its parent), call
/// edges and panic sites.
pub(crate) fn build(sources: &[Source], manifests: &[(String, String)]) -> CallGraph {
    let mut defs = Vec::new();
    for (fi, src) in sources.iter().enumerate() {
        collect_defs(fi, &src.lexed.tokens, &mut defs);
    }

    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (d, def) in defs.iter().enumerate() {
        by_name.entry(def.name.clone()).or_default().push(d);
    }

    let mut calls: Vec<Vec<CallSite>> = Vec::new();
    let mut panics: Vec<Vec<(u32, String, bool)>> = Vec::new();
    calls.resize_with(defs.len(), Vec::new);
    panics.resize_with(defs.len(), Vec::new);

    for (fi, src) in sources.iter().enumerate() {
        let toks = &src.lexed.tokens;
        // Innermost ownership: defs were collected in token order, so a
        // nested fn (seen later) overwrites its parent's claim.
        let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
        for (d, def) in defs.iter().enumerate() {
            if def.file != fi {
                continue;
            }
            if let Some((open, close)) = def.body {
                for slot in owner.iter_mut().take(close + 1).skip(open) {
                    *slot = Some(d);
                }
            }
        }
        for (k, t) in toks.iter().enumerate() {
            let Some(&Some(d)) = owner.get(k) else {
                continue;
            };
            if let Some(site) = panic_at(toks, k) {
                if let Some(p) = panics.get_mut(d) {
                    p.push(site);
                }
            }
            let Tok::Ident(name) = &t.tok else {
                continue;
            };
            if !toks.get(k + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if CALL_KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            if k > 0 && toks.get(k - 1).is_some_and(|p| p.is_ident("fn")) {
                continue;
            }
            if let Some(c) = calls.get_mut(d) {
                c.push(CallSite {
                    callee: name.clone(),
                    line: t.line,
                });
            }
        }
    }

    CallGraph {
        defs,
        by_name,
        calls,
        panics,
        deps: parse_dep_map(manifests),
    }
}

impl CallGraph {
    /// Whether a call from `from_crate` may resolve into `to_crate`.
    fn edge_allowed(&self, from_crate: Option<&str>, to_crate: Option<&str>) -> bool {
        let Some(deps) = &self.deps else {
            return true; // fixture mode: no manifests, every edge resolves
        };
        match (from_crate, to_crate) {
            (Some(a), Some(b)) => a == b || deps.get(a).is_some_and(|d| d.contains(b)),
            _ => true,
        }
    }
}

/// P2: transitive panic-freedom. BFS the call graph from every fn
/// defined in a P1 request-path file; any panic site in a *reached*
/// helper outside those files is a finding (sites inside P1 files are
/// P1's own business). Each finding carries one example call path so
/// the report is actionable.
pub(crate) fn check_p2(sources: &[Source], g: &CallGraph, out: &mut Vec<RawFinding>) {
    let entry_file: Vec<bool> = sources
        .iter()
        .map(|s| in_file_scope(&s.path, P1_FILES, true))
        .collect();
    // Shim and umbrella sources are outside the workspace-crate model;
    // they are neither entry points nor flagged targets.
    let crate_dir: Vec<Option<&str>> = sources.iter().map(|s| crate_of(&s.path)).collect();

    let ndefs = g.defs.len();
    let mut visited = vec![false; ndefs];
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; ndefs];
    let mut queue = VecDeque::new();
    for (d, def) in g.defs.iter().enumerate() {
        if def.in_test {
            continue;
        }
        if entry_file.get(def.file).copied().unwrap_or(false) {
            if let Some(v) = visited.get_mut(d) {
                *v = true;
            }
            queue.push_back(d);
        }
    }
    while let Some(d) = queue.pop_front() {
        let Some(def) = g.defs.get(d) else { continue };
        let from_crate = crate_dir.get(def.file).copied().flatten();
        let Some(call_list) = g.calls.get(d) else {
            continue;
        };
        for call in call_list {
            let Some(targets) = g.by_name.get(&call.callee) else {
                continue;
            };
            for &t in targets {
                let Some(tdef) = g.defs.get(t) else { continue };
                if visited.get(t).copied().unwrap_or(true) || tdef.in_test {
                    continue;
                }
                let to_crate = crate_dir.get(tdef.file).copied().flatten();
                if to_crate.is_none() {
                    continue; // shims / umbrella: not analyzable targets
                }
                if !g.edge_allowed(from_crate, to_crate) {
                    continue;
                }
                if let Some(v) = visited.get_mut(t) {
                    *v = true;
                }
                if let Some(p) = parent.get_mut(t) {
                    *p = Some((d, call.line));
                }
                queue.push_back(t);
            }
        }
    }

    for (d, def) in g.defs.iter().enumerate() {
        if !visited.get(d).copied().unwrap_or(false) || def.in_test {
            continue;
        }
        if entry_file.get(def.file).copied().unwrap_or(false) {
            continue; // P1 already covers direct sites in entry files
        }
        let Some(sites) = g.panics.get(d) else {
            continue;
        };
        if sites.is_empty() {
            continue;
        }
        let path = example_path(g, &parent, d);
        let Some(src) = sources.get(def.file) else {
            continue;
        };
        // One finding per helper, anchored at the definition: the unit
        // of transitive reachability is the function, and the fix (or
        // the reasoned allow) belongs on the helper as a whole.
        let mut kinds: Vec<String> = Vec::new();
        for (line, what, _is_index) in sites {
            let entry = format!("{what} at line {line}");
            if !kinds.contains(&entry) {
                kinds.push(entry);
            }
        }
        let shown = kinds.len().min(4);
        let mut detail = kinds.get(..shown).unwrap_or_default().join(", ");
        if kinds.len() > shown {
            detail.push_str(&format!(" (+{} more)", kinds.len() - shown));
        }
        out.push(RawFinding {
            rule: "P2",
            file: src.path.clone(),
            line: def.line,
            message: format!(
                "`{}` is reachable from a request entry point (via {path}) \
                 and may panic: {detail}; return typed errors or justify \
                 with allow(transitive-panic)",
                def.name
            ),
            allow: Some("transitive-panic"),
        });
    }
}

/// One example path `entry -> … -> def`, capped for readability.
fn example_path(g: &CallGraph, parent: &[Option<(usize, u32)>], mut d: usize) -> String {
    let mut names = Vec::new();
    let mut hops = 0;
    while let Some(def) = g.defs.get(d) {
        names.push(def.name.clone());
        match parent.get(d).copied().flatten() {
            Some((p, _)) if hops < 8 => {
                d = p;
                hops += 1;
            }
            Some(_) => {
                names.push("…".to_owned());
                break;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parse_extracts_name_and_deps() {
        let (pkg, deps) = parse_manifest(
            "[package]\nname = \"nasd-object\"\n\n[dependencies]\nnasd-proto = { workspace = true }\nnasd-disk.workspace = true\n\n[dev-dependencies]\ntempfile = \"3\"\n",
        );
        assert_eq!(pkg.as_deref(), Some("nasd-object"));
        assert_eq!(deps, vec!["nasd-proto".to_owned(), "nasd-disk".to_owned()]);
    }

    #[test]
    fn nested_fn_tokens_belong_to_inner_def() {
        let src = Source {
            path: "crates/x/src/lib.rs".to_owned(),
            lexed: crate::lexer::lex("fn outer() { fn inner() { a.unwrap(); } inner(); }"),
        };
        let g = build(std::slice::from_ref(&src), &[]);
        assert_eq!(g.defs.len(), 2);
        let outer = g.defs.iter().position(|d| d.name == "outer").unwrap_or(0);
        let inner = g.defs.iter().position(|d| d.name == "inner").unwrap_or(0);
        assert!(g.panics.get(outer).is_some_and(Vec::is_empty));
        assert!(g.panics.get(inner).is_some_and(|p| p.len() == 1));
        assert!(g
            .calls
            .get(outer)
            .is_some_and(|c| c.iter().any(|c| c.callee == "inner")));
    }
}
