//! L1: lock-order analysis.
//!
//! Scans each function body for `.lock()` call chains, names each lock by
//! the field/variable it is called on (`self.state.lock()` → `state`),
//! tracks which guards are still live (let-bound guards live to the end of
//! their block unless `drop(guard)` kills them; temporaries die with their
//! statement), and records an edge A → B whenever B is acquired while A is
//! held. Edges are aggregated per crate into a digraph; any cycle — or a
//! re-acquisition of a lock already held — is a finding. The sanctioned
//! global order is documented in DESIGN.md §Static invariants.

use crate::lexer::{matching, Tok, Token};
use crate::{crate_of, RawFinding, Source};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug)]
struct Edge {
    file: String,
    line: u32,
}

pub(crate) fn check_l1(sources: &[Source], out: &mut Vec<RawFinding>) {
    // (crate, from-lock, to-lock) -> first site observed
    let mut edges: BTreeMap<(String, String, String), Edge> = BTreeMap::new();
    for src in sources {
        let Some(krate) = crate_of(&src.path) else {
            continue;
        };
        let toks = &src.lexed.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].in_test && toks[i].is_ident("fn") {
                if let Some(open) =
                    (i + 1..toks.len()).find(|&k| toks[k].is_punct('{') || toks[k].is_punct(';'))
                {
                    if toks[open].is_punct('{') {
                        if let Some(close) = matching(toks, open, '{', '}') {
                            scan_body(src, krate, toks, open, close, &mut edges, out);
                        }
                    }
                }
            }
            i += 1;
        }
    }

    // Detect cycles per crate.
    let crates: BTreeSet<&str> = edges.keys().map(|(c, _, _)| c.as_str()).collect();
    for krate in crates {
        let adj: BTreeMap<&str, Vec<&str>> = {
            let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for (c, from, to) in edges.keys() {
                if c == krate {
                    m.entry(from.as_str()).or_default().push(to.as_str());
                }
            }
            m
        };
        for cycle in find_cycles(&adj) {
            let (from, to) = (cycle[cycle.len() - 1], cycle[0]);
            let site = &edges[&(krate.to_owned(), from.to_owned(), to.to_owned())];
            out.push(RawFinding {
                rule: "L1",
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "lock-order cycle in crate `{}`: {} -> {}; acquire locks in the \
                     global order documented in DESIGN.md",
                    krate,
                    cycle.join(" -> "),
                    cycle[0]
                ),
                allow: Some("lock-order"),
            });
        }
    }
}

#[derive(Debug)]
struct Guard {
    lock: String,
    var: Option<String>,
    depth: usize,
}

#[allow(clippy::too_many_arguments)]
fn scan_body(
    src: &Source,
    krate: &str,
    toks: &[Token],
    open: usize,
    close: usize,
    edges: &mut BTreeMap<(String, String, String), Edge>,
    out: &mut Vec<RawFinding>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize;
    let mut stmt_start = open + 1;
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt_start = k + 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_start = k + 1;
            }
            Tok::Punct(';') => {
                stmt_start = k + 1;
            }
            // drop(guard) releases a named guard early.
            Tok::Ident(name)
                if name == "drop"
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                if let Some(var) = toks.get(k + 2).and_then(|t| t.ident()) {
                    guards.retain(|g| g.var.as_deref() != Some(var));
                }
            }
            Tok::Punct('.')
                if toks.get(k + 1).is_some_and(|t| t.is_ident("lock"))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                let line = toks[k + 1].line;
                if let Some(lock) = lock_name(toks, k) {
                    for g in &guards {
                        if g.lock == lock {
                            out.push(RawFinding {
                                rule: "L1",
                                file: src.path.clone(),
                                line,
                                message: format!(
                                    "`{lock}` acquired while a guard on `{lock}` is \
                                     still live (self-deadlock)"
                                ),
                                allow: Some("lock-order"),
                            });
                        } else {
                            edges
                                .entry((krate.to_owned(), g.lock.clone(), lock.clone()))
                                .or_insert(Edge {
                                    file: src.path.clone(),
                                    line,
                                });
                        }
                    }
                    // Let-bound guards stay live; temporaries die with the
                    // statement and contribute only outgoing edges above.
                    if let Some(var) = binding_of(toks, stmt_start, k) {
                        guards.push(Guard { lock, var, depth });
                    }
                }
                k += 3;
            }
            _ => {}
        }
        k += 1;
    }
}

/// The lock's name: walk back from the `.` over index/call groups to the
/// nearest identifier (`self.slots[idx].lock()` → `slots`).
fn lock_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match &toks[j].tok {
            Tok::Punct(']') => j = matching_back(toks, j, '[', ']')?.checked_sub(1)?,
            Tok::Punct(')') => j = matching_back(toks, j, '(', ')')?.checked_sub(1)?,
            Tok::Ident(s) => return Some(s.clone()),
            Tok::Punct('.') => j = j.checked_sub(1)?,
            _ => return None,
        }
    }
}

fn matching_back(toks: &[Token], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close_idx).rev() {
        if toks[k].is_punct(close) {
            depth += 1;
        } else if toks[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// If the statement is `let [mut] <var> = … .lock()`, return `Some(Some(var))`;
/// `let <pattern> = …` returns `Some(None)` (guard live, unnamed); a bare
/// expression returns `None` (temporary).
fn binding_of(toks: &[Token], stmt_start: usize, lock_dot: usize) -> Option<Option<String>> {
    let first = toks.get(stmt_start)?;
    if !first.is_ident("let") {
        return None;
    }
    let mut j = stmt_start + 1;
    while j < lock_dot && toks[j].is_ident("mut") {
        j += 1;
    }
    match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Ident(v)) => Some(Some(v.clone())),
        _ => Some(None),
    }
}

/// All elementary cycles' node lists (deduplicated by node set); simple DFS,
/// fine for the handful of locks per crate.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut cycles: Vec<Vec<&str>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<&str>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut path: Vec<&str> = vec![start];
        dfs(start, start, adj, &mut path, &mut cycles, &mut seen_sets, 0);
    }
    cycles
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<&'a str>>,
    seen: &mut BTreeSet<Vec<&'a str>>,
    depth: usize,
) {
    if depth > 16 {
        return;
    }
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start && path.len() > 1 {
            let mut key = path.clone();
            key.sort_unstable();
            if seen.insert(key) {
                cycles.push(path.clone());
            }
        } else if !path.contains(&next) {
            path.push(next);
            dfs(start, next, adj, path, cycles, seen, depth + 1);
            path.pop();
        }
    }
}
