//! L1 lock-order and L2 guard-across-blocking analysis.
//!
//! Scans each function body for `.lock()` call chains, names each lock by
//! the field/variable it is called on (`self.state.lock()` → `state`),
//! tracks which guards are still live (let-bound guards live to the end of
//! their block unless `drop(guard)` kills them; temporaries die with their
//! statement), and records an edge A → B whenever B is acquired while A is
//! held. Edges are aggregated per crate into a digraph; any cycle — or a
//! re-acquisition of a lock already held — is a finding. The sanctioned
//! global order is documented in DESIGN.md §Static invariants.
//!
//! L2 reuses the same guard-scope tracking: a call to `pace(..)` (the
//! sanctioned real-thread sleep), `.observe(..)` (histogram under its own
//! lock) or device I/O (`.read_block(..)` / `.write_block(..)`) while any
//! guard is live serializes every contender on that lock for the whole
//! blocking call — benign today, a real stall once the threaded TCP
//! transport lands (ROADMAP). Drop or scope the guard first, or justify
//! with `allow(lock-across-blocking, "…")`.

use crate::lexer::{matching, Tok, Token};
use crate::{crate_of, RawFinding, Source};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug)]
struct Edge {
    file: String,
    line: u32,
}

pub(crate) fn check_l1(sources: &[Source], out: &mut Vec<RawFinding>) {
    // (crate, from-lock, to-lock) -> first site observed
    let mut edges: BTreeMap<(String, String, String), Edge> = BTreeMap::new();
    for src in sources {
        let Some(krate) = crate_of(&src.path) else {
            continue;
        };
        let toks = &src.lexed.tokens;
        let mut i = 0;
        while let Some(t) = toks.get(i) {
            if !t.in_test && t.is_ident("fn") {
                if let Some(open) = (i + 1..toks.len()).find(|&k| {
                    toks.get(k)
                        .is_some_and(|t| t.is_punct('{') || t.is_punct(';'))
                }) {
                    if toks.get(open).is_some_and(|t| t.is_punct('{')) {
                        if let Some(close) = matching(toks, open, '{', '}') {
                            scan_body(src, krate, toks, open, close, &mut edges, out);
                        }
                    }
                }
            }
            i += 1;
        }
    }

    // Detect cycles per crate.
    let crates: BTreeSet<&str> = edges.keys().map(|(c, _, _)| c.as_str()).collect();
    for krate in crates {
        let adj: BTreeMap<&str, Vec<&str>> = {
            let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for (c, from, to) in edges.keys() {
                if c == krate {
                    m.entry(from.as_str()).or_default().push(to.as_str());
                }
            }
            m
        };
        for cycle in find_cycles(&adj) {
            let (Some(&from), Some(&to)) = (cycle.last(), cycle.first()) else {
                continue;
            };
            let Some(site) = edges.get(&(krate.to_owned(), from.to_owned(), to.to_owned())) else {
                continue;
            };
            out.push(RawFinding {
                rule: "L1",
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "lock-order cycle in crate `{}`: {} -> {}; acquire locks in the \
                     global order documented in DESIGN.md",
                    krate,
                    cycle.join(" -> "),
                    to
                ),
                allow: Some("lock-order"),
            });
        }
    }
}

#[derive(Debug)]
struct Guard {
    lock: String,
    var: Option<String>,
    depth: usize,
}

/// Method calls L2 treats as blocking: histogram recording (takes the
/// histogram's own lock) and the simulated-device I/O entry points.
const BLOCKING_METHODS: &[&str] = &["observe", "read_block", "write_block"];

/// L2: report `what` called at `line` while any guard is live.
fn check_l2(src: &Source, line: u32, what: &str, guards: &[Guard], out: &mut Vec<RawFinding>) {
    let Some(g) = guards.last() else {
        return;
    };
    out.push(RawFinding {
        rule: "L2",
        file: src.path.clone(),
        line,
        message: format!(
            "`{what}` called while a guard on `{}` is live; every contender \
             on that lock stalls for the whole call — drop/scope the guard \
             first, or justify with allow(lock-across-blocking)",
            g.lock
        ),
        allow: Some("lock-across-blocking"),
    });
}

#[allow(clippy::too_many_arguments)]
fn scan_body(
    src: &Source,
    krate: &str,
    toks: &[Token],
    open: usize,
    close: usize,
    edges: &mut BTreeMap<(String, String, String), Edge>,
    out: &mut Vec<RawFinding>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize;
    let mut stmt_start = open + 1;
    let mut k = open + 1;
    while k < close {
        let Some(t) = toks.get(k) else { break };
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt_start = k + 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_start = k + 1;
            }
            Tok::Punct(';') => {
                stmt_start = k + 1;
            }
            // L2: pace(..) while a guard is live blocks all contenders.
            Tok::Ident(name)
                if name == "pace" && toks.get(k + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                check_l2(src, t.line, "pace(..)", &guards, out);
            }
            // L2: observe/device-I/O method calls while a guard is live.
            Tok::Punct('.')
                if toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                    && toks
                        .get(k + 1)
                        .is_some_and(|t| BLOCKING_METHODS.iter().any(|m| t.is_ident(m))) =>
            {
                if let Some(m) = toks.get(k + 1).and_then(|t| t.ident()) {
                    check_l2(src, t.line, &format!(".{m}(..)"), &guards, out);
                }
            }
            // drop(guard) releases a named guard early.
            Tok::Ident(name)
                if name == "drop"
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                if let Some(var) = toks.get(k + 2).and_then(|t| t.ident()) {
                    guards.retain(|g| g.var.as_deref() != Some(var));
                }
            }
            Tok::Punct('.')
                if toks.get(k + 1).is_some_and(|t| t.is_ident("lock"))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                let line = toks.get(k + 1).map_or(t.line, |n| n.line);
                if let Some(lock) = lock_name(toks, k) {
                    for g in &guards {
                        if g.lock == lock {
                            out.push(RawFinding {
                                rule: "L1",
                                file: src.path.clone(),
                                line,
                                message: format!(
                                    "`{lock}` acquired while a guard on `{lock}` is \
                                     still live (self-deadlock)"
                                ),
                                allow: Some("lock-order"),
                            });
                        } else {
                            edges
                                .entry((krate.to_owned(), g.lock.clone(), lock.clone()))
                                .or_insert(Edge {
                                    file: src.path.clone(),
                                    line,
                                });
                        }
                    }
                    // Let-bound guards stay live; temporaries die with the
                    // statement and contribute only outgoing edges above.
                    if let Some(var) = binding_of(toks, stmt_start, k) {
                        guards.push(Guard { lock, var, depth });
                    }
                }
                k += 3;
            }
            _ => {}
        }
        k += 1;
    }
}

/// The lock's name: walk back from the `.` over index/call groups to the
/// nearest identifier (`self.slots[idx].lock()` → `slots`).
fn lock_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match &toks.get(j)?.tok {
            Tok::Punct(']') => j = matching_back(toks, j, '[', ']')?.checked_sub(1)?,
            Tok::Punct(')') => j = matching_back(toks, j, '(', ')')?.checked_sub(1)?,
            Tok::Ident(s) => return Some(s.clone()),
            Tok::Punct('.') => j = j.checked_sub(1)?,
            _ => return None,
        }
    }
}

fn matching_back(toks: &[Token], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close_idx).rev() {
        let Some(t) = toks.get(k) else { continue };
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// If the statement is `let [mut] <var> = … .lock()`, return `Some(Some(var))`;
/// `let <pattern> = …` returns `Some(None)` (guard live, unnamed); a bare
/// expression returns `None` (temporary).
fn binding_of(toks: &[Token], stmt_start: usize, lock_dot: usize) -> Option<Option<String>> {
    let first = toks.get(stmt_start)?;
    if !first.is_ident("let") {
        return None;
    }
    let mut j = stmt_start + 1;
    while j < lock_dot && toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Ident(v)) => Some(Some(v.clone())),
        _ => Some(None),
    }
}

/// All elementary cycles' node lists (deduplicated by node set); simple DFS,
/// fine for the handful of locks per crate.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut cycles: Vec<Vec<&str>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<&str>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut path: Vec<&str> = vec![start];
        dfs(start, start, adj, &mut path, &mut cycles, &mut seen_sets, 0);
    }
    cycles
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<&'a str>>,
    seen: &mut BTreeSet<Vec<&'a str>>,
    depth: usize,
) {
    if depth > 16 {
        return;
    }
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start && path.len() > 1 {
            let mut key = path.clone();
            key.sort_unstable();
            if seen.insert(key) {
                cycles.push(path.clone());
            }
        } else if !path.contains(&next) {
            path.push(next);
            dfs(start, next, adj, path, cycles, seen, depth + 1);
            path.pop();
        }
    }
}
