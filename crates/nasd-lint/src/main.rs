//! nasd-lint CLI.
//!
//! Usage: `cargo run -p nasd-lint -- check [--root <workspace-dir>]`
//!
//! Scans `crates/*/src/**/*.rs`, every shim crate root and the umbrella
//! `src/lib.rs`, prints findings as `file:line: [RULE] message`, and exits
//! nonzero if any finding survives suppression.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" => cmd = Some("check"),
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if cmd != Some("check") {
        return usage("expected the `check` subcommand");
    }

    // When invoked via `cargo run -p nasd-lint` the cwd is already the
    // workspace root; honour --root for out-of-tree invocation.
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_crate_sources(&root, &mut paths);
    if paths.is_empty() {
        eprintln!(
            "nasd-lint: no crates/*/src/**/*.rs under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    for shim in list_dir(&root.join("shims")) {
        let lib = shim.join("src").join("lib.rs");
        if lib.is_file() {
            paths.push(lib);
        }
    }
    let umbrella = root.join("src").join("lib.rs");
    if umbrella.is_file() {
        paths.push(umbrella);
    }
    paths.sort();

    let mut files: Vec<(String, String)> = Vec::new();
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(contents) => files.push((relative(&root, p), contents)),
            Err(e) => {
                eprintln!("nasd-lint: cannot read {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let findings = nasd_lint::check_sources(&files);
    for f in &findings {
        println!("{f}");
    }
    println!(
        "nasd-lint: {} files checked, {} finding{}",
        files.len(),
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("nasd-lint: {err}");
    eprintln!("usage: cargo run -p nasd-lint -- check [--root <workspace-dir>]");
    ExitCode::FAILURE
}

fn collect_crate_sources(root: &Path, out: &mut Vec<PathBuf>) {
    for krate in list_dir(&root.join("crates")) {
        walk_rs(&krate.join("src"), out);
    }
}

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut v: Vec<PathBuf> = rd
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    v.sort();
    v
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn relative(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.to_string_lossy().replace('\\', "/")
}
