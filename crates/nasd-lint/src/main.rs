//! nasd-lint CLI.
//!
//! Usage:
//!   `cargo run -p nasd-lint -- check [--root <workspace-dir>] [--json <path>]`
//!   `cargo run -p nasd-lint -- explain <rule-or-allow-class>`
//!
//! `check` scans `crates/*/src/**/*.rs`, every shim crate root and the
//! umbrella `src/lib.rs` (plus the `crates/*/Cargo.toml` manifests, which
//! feed the call graph's crate-dependency map), prints findings as
//! `file:line: [RULE] message`, optionally writes the machine-readable
//! `nasd-lint-report/v1` JSON, and exits nonzero if any finding survives
//! suppression. `explain` prints a rule's rationale and allow syntax.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => check(it),
        Some("explain") => explain(it),
        _ => usage("expected the `check` or `explain` subcommand"),
    }
}

fn check<'a>(mut it: impl Iterator<Item = &'a String>) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json needs a file path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // When invoked via `cargo run -p nasd-lint` the cwd is already the
    // workspace root; honour --root for out-of-tree invocation.
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_crate_sources(&root, &mut paths);
    if paths.is_empty() {
        eprintln!(
            "nasd-lint: no crates/*/src/**/*.rs under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    for shim in list_dir(&root.join("shims")) {
        let lib = shim.join("src").join("lib.rs");
        if lib.is_file() {
            paths.push(lib);
        }
    }
    let umbrella = root.join("src").join("lib.rs");
    if umbrella.is_file() {
        paths.push(umbrella);
    }
    // Manifests prune cross-crate call-graph edges; not lexed as Rust.
    for krate in list_dir(&root.join("crates")) {
        let m = krate.join("Cargo.toml");
        if m.is_file() {
            paths.push(m);
        }
    }
    paths.sort();

    let mut files: Vec<(String, String)> = Vec::new();
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(contents) => files.push((relative(&root, p), contents)),
            Err(e) => {
                eprintln!("nasd-lint: cannot read {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let rs_count = files.iter().filter(|(p, _)| p.ends_with(".rs")).count();

    let findings = nasd_lint::check_sources(&files);
    for f in &findings {
        println!("{f}");
    }
    println!(
        "nasd-lint: {} files checked, {} finding{}",
        rs_count,
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );

    if let Some(path) = json_out {
        let report = nasd_lint::report_json(rs_count, &findings);
        let mut text = report.to_pretty_string();
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("nasd-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("nasd-lint: report written to {}", path.display());
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain<'a>(mut it: impl Iterator<Item = &'a String>) -> ExitCode {
    let Some(query) = it.next() else {
        eprintln!("nasd-lint: explain needs a rule id or allow class; one of:");
        for r in nasd_lint::RULES {
            eprintln!("  {:3} {}", r.id, r.title);
        }
        return ExitCode::FAILURE;
    };
    let Some(rule) = nasd_lint::rule_info(query) else {
        eprintln!("nasd-lint: no rule or allow class named `{query}`");
        return ExitCode::FAILURE;
    };
    println!("{} — {}", rule.id, rule.title);
    println!();
    println!("{}", unwrap_ws(rule.rationale));
    println!();
    match rule.allow {
        Some(class) => {
            println!("suppress a reviewed site with (reason string required):");
            for c in class.split('/') {
                println!("  // nasd-lint: allow({}, \"why this is safe\")", c.trim());
            }
        }
        None => println!("this rule is unsuppressable."),
    }
    ExitCode::SUCCESS
}

/// Collapse the multi-line rationale literals' internal padding.
fn unwrap_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn usage(err: &str) -> ExitCode {
    eprintln!("nasd-lint: {err}");
    eprintln!("usage: cargo run -p nasd-lint -- check [--root <workspace-dir>] [--json <path>]");
    eprintln!("       cargo run -p nasd-lint -- explain <rule-or-allow-class>");
    ExitCode::FAILURE
}

fn collect_crate_sources(root: &Path, out: &mut Vec<PathBuf>) {
    for krate in list_dir(&root.join("crates")) {
        walk_rs(&krate.join("src"), out);
    }
}

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut v: Vec<PathBuf> = rd
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    v.sort();
    v
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(Result::ok) {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn relative(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.to_string_lossy().replace('\\', "/")
}
