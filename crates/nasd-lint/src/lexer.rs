//! A small hand-written Rust lexer.
//!
//! This is not a full Rust grammar: the invariant rules only need a
//! faithful token stream with comments, string/char literals and
//! `#[cfg(test)]` regions correctly recognised, so that pattern matches
//! never fire inside a literal, a comment or test-only code.

/// Token kind. Literals are collapsed to a single opaque kind: no rule
/// ever matches on literal contents, only on identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Punct(char),
    Lit,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]` or `#[test]`
    /// item; rules skip such tokens.
    pub in_test: bool,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, collecting comments and marking test regions.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line: u32 = 1;
    let mut i = 0;
    while let Some(&c) = chars.get(i) {
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while chars.get(i).is_some_and(|&ch| ch != '\n') {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars.get(start..i).unwrap_or_default().iter().collect(),
            });
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1;
            while depth > 0 {
                match chars.get(i) {
                    None => break,
                    Some('\n') => {
                        line += 1;
                        i += 1;
                    }
                    Some('/') if chars.get(i + 1) == Some(&'*') => {
                        depth += 1;
                        i += 2;
                    }
                    Some('*') if chars.get(i + 1) == Some(&'/') => {
                        depth -= 1;
                        i += 2;
                    }
                    Some(_) => i += 1,
                }
            }
        } else if c == '"' {
            i = scan_string(&chars, i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Lit,
                line,
                in_test: false,
            });
        } else if c == '\'' {
            // Lifetime or char literal. A lifetime is a quote followed by an
            // identifier NOT closed by another quote ('a vs 'a').
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(n) if is_ident_start(n))
                && after != Some('\'')
                && next != Some('\\');
            if is_lifetime {
                i += 1;
                while chars.get(i).is_some_and(|&ch| is_ident_continue(ch)) {
                    i += 1;
                }
            } else {
                // Char literal, possibly escaped ('\n', '\x7f', '\u{1f4a9}').
                let mut j = i + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 2;
                } else {
                    j += 1;
                }
                while let Some(&cj) = chars.get(j) {
                    if cj == '\'' {
                        break;
                    }
                    if cj == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                i = j + 1;
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                    in_test: false,
                });
            }
        } else if is_ident_start(c) {
            let start = i;
            while chars.get(i).is_some_and(|&ch| is_ident_continue(ch)) {
                i += 1;
            }
            let word: String = chars.get(start..i).unwrap_or_default().iter().collect();
            // Raw / byte string prefixes glue onto the following quote.
            let raw_follows =
                matches!(chars.get(i), Some(&'"') | Some(&'#')) && (word == "r" || word == "br");
            let byte_str_follows = chars.get(i) == Some(&'"') && word == "b";
            if raw_follows {
                i = scan_raw_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                    in_test: false,
                });
            } else if byte_str_follows {
                i = scan_string(&chars, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                    in_test: false,
                });
            } else {
                out.tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                    in_test: false,
                });
            }
        } else if c.is_ascii_digit() {
            while chars.get(i).is_some_and(|&ch| is_ident_continue(ch)) {
                i += 1;
            }
            // Fractional part: `1.5` but not `1.foo()` / `1..n`.
            if chars.get(i) == Some(&'.')
                && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())
            {
                i += 1;
                while chars.get(i).is_some_and(|&ch| is_ident_continue(ch)) {
                    i += 1;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Lit,
                line,
                in_test: false,
            });
        } else {
            out.tokens.push(Token {
                tok: Tok::Punct(c),
                line,
                in_test: false,
            });
            i += 1;
        }
    }
    mark_test_regions(&mut out.tokens);
    out
}

/// Scan a (possibly byte-) string literal starting at the opening quote or
/// at a `b` prefix whose next char is the quote. Returns the index past the
/// closing quote.
fn scan_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while chars.get(i).is_some_and(|&c| c != '"') {
        i += 1;
    }
    i += 1; // past opening quote
    while let Some(&c) = chars.get(i) {
        match c {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scan a raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`) starting at the
/// prefix's end (first `#` or `"`). Returns the index past the closing quote.
fn scan_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // past opening quote
    while let Some(&c) = chars.get(i) {
        if c == '\n' {
            *line += 1;
            i += 1;
        } else if c == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Find the index of the token matching `open` at `open_idx`.
pub fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Mark every token belonging to a `#[cfg(test)]` or `#[test]` item.
///
/// When such an attribute is seen, any further attributes are skipped and
/// the following item — up to its closing brace or terminating semicolon —
/// is flagged `in_test`.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_punct('#'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let Some(close) = matching(tokens, i + 1, '[', ']') else {
                break;
            };
            let idents: Vec<&str> = tokens
                .get(i + 1..close)
                .unwrap_or_default()
                .iter()
                .filter_map(|t| t.ident())
                .collect();
            let is_test_attr =
                idents == ["test"] || (idents.contains(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                let mut j = close + 1;
                // Skip any further attributes on the same item.
                while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                // Find the item end: first `;` at depth 0 or the matching
                // brace of the first `{`.
                let mut end = tokens.len() - 1;
                let mut k = j;
                while let Some(tk) = tokens.get(k) {
                    if tk.is_punct(';') {
                        end = k;
                        break;
                    }
                    if tk.is_punct('{') {
                        end = matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                    k += 1;
                }
                for t in tokens.get_mut(i..=end).into_iter().flatten() {
                    t.in_test = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in a block /* nested */ comment */
            let s = "unwrap() inside a string";
            let r = r#"thread_rng in a raw "string""#;
            let b = b"bytes";
            let c = '\'';
            let l: &'static str = s;
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "panic" || i == "thread_rng"));
        // Lifetimes are consumed without emitting tokens.
        assert!(!ids.contains(&"static".to_owned()));
        assert!(ids.contains(&"str".to_owned()));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let lexed = lex("let a = 1;\n// nasd-lint: allow(panic, \"x\")\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("nasd-lint"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live2 = lexed.tokens.iter().find(|t| t.is_ident("live2")).unwrap();
        assert!(!live2.in_test);
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lexed.tokens.iter().all(|t| t.tok != Tok::Lit));
    }
}
