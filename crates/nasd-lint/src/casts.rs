//! C1: cast and arithmetic safety on wire-decoded / on-disk integers.
//!
//! Two sub-rules over the codec and replay modules:
//!
//! - **narrowing `as` casts** — `x as u32`, `x as usize`, … silently
//!   truncate; a hostile frame length survives the cast and corrupts the
//!   replay cursor. Sites must use `try_from` (mapping the error to a
//!   typed `Corrupt`/`Malformed` status) or carry `allow(cast, "…")`.
//! - **unchecked `+`/`*` on tainted values** — a single forward pass
//!   marks `let` bindings whose initializer reads wire/disk integers
//!   (`.u32()`, `read_u64(..)`, `from_be_bytes`, or another tainted
//!   binding) as tainted; `+`, `*` or `+=` touching a tainted name must
//!   be `checked_add`/`checked_mul` or carry `allow(arith, "…")`.

use crate::lexer::{Tok, Token};
use crate::rules::in_file_scope;
use crate::{RawFinding, Source};
use std::collections::BTreeSet;

/// Decode/replay modules where integer provenance is the wire or the
/// platter — exactly where truncation becomes silent corruption.
pub(crate) const C1_FILES: &[&str] = &[
    "crates/object/src/layout.rs",
    "crates/object/src/wal.rs",
    "crates/object/src/persist.rs",
    "crates/dedup/src/blob.rs",
    "crates/dedup/src/index.rs",
    "crates/dedup/src/manifest.rs",
];

/// Path prefixes in C1 scope: the whole wire codec, and the checker
/// itself (self-check — nasd-lint decodes untrusted source text).
const C1_PREFIXES: &[&str] = &["crates/proto/src/", "crates/nasd-lint/src/"];

/// Target types for which `as` narrows (from the wider wire/disk types).
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Methods/functions whose result is wire- or disk-derived.
const TAINT_SOURCES: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "read_u32",
    "read_u64",
    "from_be_bytes",
    "from_le_bytes",
];

pub(crate) fn in_c1_scope(path: &str) -> bool {
    in_file_scope(path, C1_FILES, false) || C1_PREFIXES.iter().any(|p| path.contains(p))
}

pub(crate) fn check_c1(src: &Source, out: &mut Vec<RawFinding>) {
    if !in_c1_scope(&src.path) {
        return;
    }
    let toks = &src.lexed.tokens;
    check_narrowing(src, toks, out);
    check_taint_arith(src, toks, out);
}

fn check_narrowing(src: &Source, toks: &[Token], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_ident("as") {
            continue;
        }
        // `use x as y` renames rather than casts, but a rename target is
        // never a primitive type name, so the NARROW_TYPES check below
        // already excludes it.
        let Some(ty_tok) = toks.get(i + 1) else {
            continue;
        };
        let Some(ty) = ty_tok.ident() else {
            continue;
        };
        if !NARROW_TYPES.contains(&ty) {
            continue;
        }
        out.push(RawFinding {
            rule: "C1",
            file: src.path.clone(),
            line: ty_tok.line,
            message: format!(
                "narrowing `as {ty}` can silently truncate a wire/on-disk \
                 integer; use {ty}::try_from(..) mapped to a typed error, or \
                 justify with allow(cast)"
            ),
            allow: Some("cast"),
        });
    }
}

/// True when the token ends an operand (so a following `*` is binary
/// multiplication, not a dereference).
fn ends_operand(t: &Token) -> bool {
    matches!(
        &t.tok,
        Tok::Ident(_) | Tok::Lit | Tok::Punct(')') | Tok::Punct(']')
    )
}

fn check_taint_arith(src: &Source, toks: &[Token], out: &mut Vec<RawFinding>) {
    // Forward pass: collect tainted binding names.
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    let mut i = 0;
    while let Some(t) = toks.get(i) {
        if !t.in_test && t.is_ident("let") {
            // `let (mut)? name (: ty)? = rhs… ;` — taint `name` if the rhs
            // calls a taint source or mentions an already-tainted name.
            // `let Some(name) = …` / `let Ok(name) = …` bind through the
            // single-field pattern.
            let mut ni = i + 1;
            if toks
                .get(ni)
                .is_some_and(|t| t.is_ident("mut") || t.is_ident("ref"))
            {
                ni += 1;
            }
            if toks.get(ni).is_some_and(|t| t.ident().is_some())
                && toks.get(ni + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(ni + 2).is_some_and(|t| t.ident().is_some())
                && toks.get(ni + 3).is_some_and(|t| t.is_punct(')'))
            {
                ni += 2;
            }
            let name = toks.get(ni).and_then(|t| t.ident());
            if let Some(name) = name {
                let mut k = ni + 1;
                let mut eq = None;
                while let Some(tk) = toks.get(k) {
                    if tk.is_punct('=') {
                        eq = Some(k);
                        break;
                    }
                    if tk.is_punct(';') || tk.is_punct('{') {
                        break;
                    }
                    k += 1;
                }
                if let Some(eq) = eq {
                    let mut k = eq + 1;
                    let mut is_tainted = false;
                    while let Some(tk) = toks.get(k) {
                        if tk.is_punct(';') {
                            break;
                        }
                        if let Some(id) = tk.ident() {
                            let called = toks.get(k + 1).is_some_and(|n| n.is_punct('('));
                            if (called && TAINT_SOURCES.contains(&id)) || tainted.contains(id) {
                                is_tainted = true;
                            }
                        }
                        k += 1;
                    }
                    if is_tainted {
                        tainted.insert(name);
                    }
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }
    if tainted.is_empty() {
        return;
    }

    // Flag unchecked +/* adjacent to a tainted name. One finding per
    // line keeps `a + b` (both tainted) from double-reporting.
    let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else {
            continue;
        };
        if !tainted.contains(name) {
            continue;
        }
        let next = toks.get(i + 1);
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let prev2 = i.checked_sub(2).and_then(|j| toks.get(j));
        // `name + …` / `name += …` / `name * …`
        let next_arith = next.is_some_and(|n| n.is_punct('+'))
            || (next.is_some_and(|n| n.is_punct('*'))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.ident().is_some() || n.tok == Tok::Lit));
        // `… + name` / `… * name` (binary `*` only) / `x += name`
        let prev_arith = prev.is_some_and(|p| p.is_punct('+'))
            || (prev.is_some_and(|p| p.is_punct('*')) && prev2.is_some_and(ends_operand))
            || (prev.is_some_and(|p| p.is_punct('='))
                && prev2.is_some_and(|p| p.is_punct('+') || p.is_punct('*')));
        if !(next_arith || prev_arith) {
            continue;
        }
        if !seen_lines.insert(t.line) {
            continue;
        }
        out.push(RawFinding {
            rule: "C1",
            file: src.path.clone(),
            line: t.line,
            message: format!(
                "unchecked `+`/`*` on wire-derived integer `{name}`; use \
                 checked_add/checked_mul mapped to a typed error, or justify \
                 with allow(arith)"
            ),
            allow: Some("arith"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(body: &str) -> Vec<RawFinding> {
        let src = Source {
            path: "crates/proto/src/wire.rs".to_owned(),
            lexed: lex(body),
        };
        let mut out = Vec::new();
        check_c1(&src, &mut out);
        out
    }

    #[test]
    fn narrowing_cast_flagged_widening_not() {
        let out = run("fn f(x: u64) -> u32 { let a = x as u32; let b = x as u64; a }");
        assert_eq!(out.len(), 1);
        assert!(out.first().is_some_and(|f| f.message.contains("as u32")));
    }

    #[test]
    fn taint_propagates_through_bindings() {
        let out =
            run("fn f(r: &mut R) { let n = r.u32()?; let m = n; let p = base + m; body(p); }");
        assert!(out.iter().any(|f| f.message.contains("`m`")));
    }

    #[test]
    fn deref_is_not_multiplication() {
        let out = run("fn f(r: &mut R) { let n = r.u32()?; g(*n_ref, n); }");
        assert!(out.is_empty());
    }

    #[test]
    fn compound_add_flagged() {
        let out = run("fn f(r: &mut R) { let n = r.u64()?; let mut pos = 0; pos += n; }");
        assert!(!out.is_empty());
    }
}
