//! Token-scan rules: D1 determinism, P1 panic-free request paths, H1
//! hot-path copy discipline, E1 swallowed results, C1 cast/arithmetic
//! safety (in `casts.rs`), and F1 forbid-unsafe.

use crate::lexer::{Tok, Token};
use crate::{crate_of, RawFinding, Source};

/// Crates whose behaviour is visible to the simulation. Wall-clock time,
/// OS entropy and real-thread sleeps in these crates would make chaos-test
/// replays diverge. `net` is included: its single legitimate pacing sleep
/// carries an explicit suppression.
pub(crate) const D1_CRATES: &[&str] = &[
    "sim", "disk", "object", "proto", "cheops", "fm", "pfs", "net", "obs", "mgmt", "dedup",
    "workload",
];

/// Request-path modules that must return `NasdStatus` errors rather than
/// panic: a drive that panics mid-request breaks the acknowledgement
/// promise the chaos suite verifies dynamically. These files double as
/// the *entry points* of the P2 transitive-panic analysis (`graph.rs`).
pub(crate) const P1_FILES: &[&str] = &[
    "crates/object/src/drive.rs",
    "crates/object/src/store.rs",
    "crates/object/src/persist.rs",
    "crates/object/src/layout.rs",
    "crates/object/src/wal.rs",
    "crates/object/src/cache.rs",
    "crates/object/src/security.rs",
    "crates/fm/src/server.rs",
    "crates/fm/src/drives.rs",
    "crates/fm/src/nfs.rs",
    "crates/fm/src/afs.rs",
    "crates/fm/src/handle.rs",
    "crates/fm/src/dirfmt.rs",
    "crates/cheops/src/manager.rs",
    "crates/cheops/src/client.rs",
    "crates/mgmt/src/service.rs",
    "crates/mgmt/src/rebuild.rs",
    "crates/mgmt/src/scrub.rs",
    "crates/mgmt/src/health.rs",
    "crates/mgmt/src/spare.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/trace.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/socket.rs",
    "crates/net/src/transport.rs",
    "crates/net/src/connect.rs",
    "crates/dedup/src/blob.rs",
    "crates/dedup/src/checksum.rs",
    "crates/dedup/src/chunker.rs",
    "crates/dedup/src/client.rs",
    "crates/dedup/src/error.rs",
    "crates/dedup/src/gc.rs",
    "crates/dedup/src/index.rs",
    "crates/dedup/src/manifest.rs",
    "crates/dedup/src/prune.rs",
    "crates/dedup/src/store.rs",
];

/// Path prefixes additionally swept by P1/E1 (and C1, see `casts.rs`):
/// the checker itself must satisfy its own rules — a lint that panics on
/// a hostile source file is no better than a drive that panics on a
/// hostile frame.
pub(crate) const SELF_CHECK_PREFIX: &str = "crates/nasd-lint/src/";

/// Whether `path` is in scope for a rule given its file list, honouring
/// the self-check prefix when `self_check` is set.
pub(crate) fn in_file_scope(path: &str, files: &[&str], self_check: bool) -> bool {
    files.iter().any(|f| path.ends_with(f)) || (self_check && path.contains(SELF_CHECK_PREFIX))
}

/// Keywords that can legitimately precede `[` without it being an index
/// expression (slice patterns, array literals in returns, etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "else", "match", "if", "while", "for", "loop",
    "move", "box", "yield", "dyn", "as", "const", "static", "pub", "use", "where", "unsafe",
    "async", "await", "impl", "fn", "enum", "struct", "trait", "type", "mod", "crate",
];

fn seq_path(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(a))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// D1: no wall-clock, OS entropy or real-thread sleeps in sim-visible crates.
pub(crate) fn check_d1(src: &Source, out: &mut Vec<RawFinding>) {
    let Some(krate) = crate_of(&src.path) else {
        return;
    };
    if !D1_CRATES.contains(&krate) {
        return;
    }
    let toks = &src.lexed.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(RawFinding {
            rule: "D1",
            file: src.path.clone(),
            line,
            message: format!(
                "`{what}` in sim-visible crate `{krate}`; use the simulated \
                 clock/rng (nasd-sim) or nasd_net::pace for real-thread pacing"
            ),
            allow: Some("wall-clock"),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if seq_path(toks, i, "Instant", "now") {
            push(t.line, "Instant::now");
        } else if t.is_ident("SystemTime") {
            push(t.line, "SystemTime");
        } else if t.is_ident("thread_rng") {
            push(t.line, "thread_rng");
        } else if seq_path(toks, i, "thread", "sleep") {
            push(t.line, "thread::sleep");
        }
    }
}

/// A potential panic at token `i`: `(line, description, is_indexing)`.
/// Shared between P1 (direct sites in request modules) and P2 (sites in
/// helpers reachable from request modules through the call graph).
pub(crate) fn panic_at(toks: &[Token], i: usize) -> Option<(u32, String, bool)> {
    let t = toks.get(i)?;
    if t.is_punct('.') && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
        let next = toks.get(i + 1)?;
        if let Some(name) = next.ident() {
            if name == "unwrap" || name == "expect" {
                return Some((next.line, format!("`.{name}()`"), false));
            }
        }
    } else if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
        if let Some(name) = t.ident() {
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                return Some((t.line, format!("`{name}!`"), false));
            }
        }
    } else if t.is_punct('[') && i > 0 {
        let indexes = match toks.get(i - 1).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
            _ => false,
        };
        if indexes {
            return Some((t.line, "bare indexing".to_owned(), true));
        }
    }
    None
}

/// P1: no panics or bare indexing in request-path modules.
pub(crate) fn check_p1(src: &Source, out: &mut Vec<RawFinding>) {
    if !in_file_scope(&src.path, P1_FILES, true) {
        return;
    }
    let toks = &src.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some((line, what, is_index)) = panic_at(toks, i) else {
            continue;
        };
        let message = if is_index {
            "bare indexing may panic on out-of-range; use .get()/.get_mut() \
             and map None to a NasdStatus error"
                .to_owned()
        } else {
            format!("{what} in request path; return a NasdStatus error instead")
        };
        out.push(RawFinding {
            rule: "P1",
            file: src.path.clone(),
            line,
            message,
            allow: Some("panic"),
        });
    }
}

/// Ack/durability/repair paths where a silently discarded `Result` hides
/// a failure the protocol promised to surface: the RPC reply path, the
/// drive's durable-write stack, the Cheops managers, and the nasd-mgmt
/// repair bookkeeping.
pub(crate) const E1_FILES: &[&str] = &[
    "crates/net/src/rpc.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/socket.rs",
    "crates/net/src/transport.rs",
    "crates/net/src/connect.rs",
    "crates/mgmt/src/service.rs",
    "crates/mgmt/src/rebuild.rs",
    "crates/mgmt/src/scrub.rs",
    "crates/mgmt/src/health.rs",
    "crates/mgmt/src/spare.rs",
    "crates/object/src/drive.rs",
    "crates/object/src/store.rs",
    "crates/object/src/persist.rs",
    "crates/object/src/wal.rs",
    "crates/cheops/src/manager.rs",
    "crates/cheops/src/client.rs",
    "crates/fm/src/server.rs",
    "crates/fm/src/drives.rs",
    "crates/fm/src/nfs.rs",
    "crates/fm/src/afs.rs",
    "crates/dedup/src/store.rs",
    "crates/dedup/src/gc.rs",
    "crates/dedup/src/client.rs",
];

/// E1: swallowed results on ack/durability/repair paths. Flags
/// `let _ = …;` discards and statement-level `.ok();` — each surviving
/// site must handle the error, propagate it, count it in an obs metric,
/// or justify the discard with `allow(swallowed-error, "…")`.
pub(crate) fn check_e1(src: &Source, out: &mut Vec<RawFinding>) {
    if !in_file_scope(&src.path, E1_FILES, true) {
        return;
    }
    let toks = &src.lexed.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(RawFinding {
            rule: "E1",
            file: src.path.clone(),
            line,
            message: format!(
                "{what} swallows a Result on an ack/durability/repair path; \
                 handle it, propagate it, or count it in an obs error metric \
                 (or justify with allow(swallowed-error))"
            ),
            allow: Some("swallowed-error"),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            push(t.line, "`let _ = …`");
        } else if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("ok"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(';'))
            && ok_result_discarded(toks, i)
        {
            push(t.line, "statement-level `.ok()`");
        }
    }
}

/// Whether the `.ok()` ending at token `dot` throws its Option away.
/// `let rx = x.ok();` or `return x.ok();` keeps the value — only a bare
/// expression statement discards it. Walk back to the statement start
/// looking for a binding (`=`) or a value-producing keyword.
fn ok_result_discarded(toks: &[Token], dot: usize) -> bool {
    for t in toks.iter().take(dot).rev() {
        match &t.tok {
            Tok::Punct(';' | '{' | '}') => return true,
            Tok::Punct('=') => return false,
            Tok::Ident(w) if w == "return" || w == "break" => return false,
            _ => {}
        }
    }
    true
}

/// Data-path modules where every payload memcpy must be deliberate.
/// The zero-copy read path (cache-block views riding a `ByteRope` from
/// the cache through the wire to the client) dies one `to_vec()` at a
/// time; any copy on these paths carries a reasoned suppression.
pub(crate) const H1_FILES: &[&str] = &[
    "crates/object/src/drive.rs",
    "crates/object/src/store.rs",
    "crates/object/src/wal.rs",
    "crates/object/src/cache.rs",
    "crates/proto/src/message.rs",
    "crates/proto/src/wire.rs",
    "crates/fm/src/drives.rs",
    "crates/fm/src/nfs.rs",
    "crates/fm/src/afs.rs",
    "crates/cheops/src/client.rs",
    "crates/pfs/src/sio.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/socket.rs",
    "crates/dedup/src/blob.rs",
    "crates/dedup/src/checksum.rs",
    "crates/dedup/src/client.rs",
    "crates/dedup/src/store.rs",
];

/// Copying method calls H1 flags when they appear as `.name(`.
const H1_METHODS: &[&str] = &["to_vec", "copy_from_slice", "extend_from_slice"];

/// H1: no casual payload copies in data-path modules. Flags
/// `.to_vec()` / `.copy_from_slice(..)` / `.extend_from_slice(..)`
/// method calls and the `Bytes::copy_from_slice` constructor; each
/// surviving site must justify itself with
/// `// nasd-lint: allow(hot-path-copy, "why the copy is the point")`.
pub(crate) fn check_h1(src: &Source, out: &mut Vec<RawFinding>) {
    if !in_file_scope(&src.path, H1_FILES, false) {
        return;
    }
    let toks = &src.lexed.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(RawFinding {
            rule: "H1",
            file: src.path.clone(),
            line,
            message: format!(
                "`{what}` copies payload bytes on the data path; keep the \
                 zero-copy rope/Bytes views, or justify the copy with a \
                 reasoned allow(hot-path-copy)"
            ),
            allow: Some("hot-path-copy"),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.is_punct('.') && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                if H1_METHODS.contains(&name) {
                    if let Some(next) = toks.get(i + 1) {
                        push(next.line, &format!(".{name}()"));
                    }
                }
            }
        } else if seq_path(toks, i, "Bytes", "copy_from_slice") {
            push(t.line, "Bytes::copy_from_slice");
        }
    }
}

/// The deleted blocking call surface: defining any of these in the
/// transport crate resurrects the pre-`CallOptions` API.
const A1_LEGACY_METHODS: &[&str] = &["call", "call_timeout", "call_retry"];

/// A1: the deprecated blocking call methods stay deleted. PR 8 collapsed
/// `Rpc::call` / `call_timeout` / `call_retry` onto the single
/// `call_with(&CallOptions)` surface shared by every transport; a fresh
/// `fn call(` in `crates/net` would fork the API again, and callers
/// would silently lose retry/timeout/stats policy. Unsuppressable.
pub(crate) fn check_a1(src: &Source, out: &mut Vec<RawFinding>) {
    if crate_of(&src.path) != Some("net") {
        return;
    }
    let toks = &src.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|n| n.ident()) else {
            continue;
        };
        if A1_LEGACY_METHODS.contains(&name)
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('<'))
        {
            out.push(RawFinding {
                rule: "A1",
                file: src.path.clone(),
                line: t.line,
                message: format!(
                    "`fn {name}` reintroduces the deleted blocking call surface; \
                     route callers through `call_with(&CallOptions)` on a \
                     Channel/Transport instead"
                ),
                allow: None,
            });
        }
    }
}

/// F1: every crate root keeps `#![forbid(unsafe_code)]`.
pub(crate) fn check_f1(src: &Source, out: &mut Vec<RawFinding>) {
    if !src.path.ends_with("src/lib.rs") {
        return;
    }
    let toks = &src.lexed.tokens;
    let found = (0..toks.len()).any(|i| {
        toks.get(i).is_some_and(|t| t.is_punct('#'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 7).is_some_and(|t| t.is_punct(']'))
    });
    if !found {
        out.push(RawFinding {
            rule: "F1",
            file: src.path.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            allow: None,
        });
    }
}
