//! Token-scan rules: D1 determinism, P1 panic-free request paths, H1
//! hot-path copy discipline, and F1 forbid-unsafe.

use crate::lexer::{Tok, Token};
use crate::{crate_of, RawFinding, Source};

/// Crates whose behaviour is visible to the simulation. Wall-clock time,
/// OS entropy and real-thread sleeps in these crates would make chaos-test
/// replays diverge. `net` is included: its single legitimate pacing sleep
/// carries an explicit suppression.
pub(crate) const D1_CRATES: &[&str] = &[
    "sim", "disk", "object", "proto", "cheops", "fm", "pfs", "net", "obs", "mgmt",
];

/// Request-path modules that must return `NasdStatus` errors rather than
/// panic: a drive that panics mid-request breaks the acknowledgement
/// promise the chaos suite verifies dynamically.
pub(crate) const P1_FILES: &[&str] = &[
    "crates/object/src/drive.rs",
    "crates/object/src/store.rs",
    "crates/object/src/persist.rs",
    "crates/object/src/layout.rs",
    "crates/object/src/wal.rs",
    "crates/object/src/cache.rs",
    "crates/object/src/security.rs",
    "crates/fm/src/server.rs",
    "crates/fm/src/drives.rs",
    "crates/fm/src/nfs.rs",
    "crates/fm/src/afs.rs",
    "crates/fm/src/handle.rs",
    "crates/fm/src/dirfmt.rs",
    "crates/cheops/src/manager.rs",
    "crates/cheops/src/client.rs",
    "crates/mgmt/src/service.rs",
    "crates/mgmt/src/rebuild.rs",
    "crates/mgmt/src/scrub.rs",
    "crates/mgmt/src/health.rs",
    "crates/mgmt/src/spare.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/trace.rs",
];

/// Keywords that can legitimately precede `[` without it being an index
/// expression (slice patterns, array literals in returns, etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "else", "match", "if", "while", "for", "loop",
    "move", "box", "yield", "dyn", "as", "const", "static", "pub", "use", "where", "unsafe",
    "async", "await", "impl", "fn", "enum", "struct", "trait", "type", "mod", "crate",
];

fn seq_path(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    toks[i].is_ident(a)
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// D1: no wall-clock, OS entropy or real-thread sleeps in sim-visible crates.
pub(crate) fn check_d1(src: &Source, out: &mut Vec<RawFinding>) {
    let Some(krate) = crate_of(&src.path) else {
        return;
    };
    if !D1_CRATES.contains(&krate) {
        return;
    }
    let toks = &src.lexed.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(RawFinding {
            rule: "D1",
            file: src.path.clone(),
            line,
            message: format!(
                "`{what}` in sim-visible crate `{krate}`; use the simulated \
                 clock/rng (nasd-sim) or nasd_net::pace for real-thread pacing"
            ),
            allow: Some("wall-clock"),
        });
    };
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if seq_path(toks, i, "Instant", "now") {
            push(toks[i].line, "Instant::now");
        } else if toks[i].is_ident("SystemTime") {
            push(toks[i].line, "SystemTime");
        } else if toks[i].is_ident("thread_rng") {
            push(toks[i].line, "thread_rng");
        } else if seq_path(toks, i, "thread", "sleep") {
            push(toks[i].line, "thread::sleep");
        }
    }
}

/// P1: no panics or bare indexing in request-path modules.
pub(crate) fn check_p1(src: &Source, out: &mut Vec<RawFinding>) {
    if !P1_FILES.iter().any(|f| src.path.ends_with(f)) {
        return;
    }
    let toks = &src.lexed.tokens;
    let mut push = |line: u32, msg: String| {
        out.push(RawFinding {
            rule: "P1",
            file: src.path.clone(),
            line,
            message: msg,
            allow: Some("panic"),
        });
    };
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if toks[i].is_punct('.') && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                if name == "unwrap" || name == "expect" {
                    push(
                        toks[i + 1].line,
                        format!(
                            "`.{name}()` in request path; return a NasdStatus \
                             error instead"
                        ),
                    );
                }
            }
        } else if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            if let Some(name) = toks[i].ident() {
                if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                    push(
                        toks[i].line,
                        format!("`{name}!` in request path; return a NasdStatus error instead"),
                    );
                }
            }
        } else if toks[i].is_punct('[') && i > 0 {
            let indexes = match &toks[i - 1].tok {
                Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                Tok::Punct(')') | Tok::Punct(']') => true,
                _ => false,
            };
            if indexes {
                push(
                    toks[i].line,
                    "bare indexing may panic on out-of-range; use .get()/.get_mut() \
                     and map None to a NasdStatus error"
                        .to_owned(),
                );
            }
        }
    }
}

/// Data-path modules where every payload memcpy must be deliberate.
/// The zero-copy read path (cache-block views riding a `ByteRope` from
/// the cache through the wire to the client) dies one `to_vec()` at a
/// time; any copy on these paths carries a reasoned suppression.
pub(crate) const H1_FILES: &[&str] = &[
    "crates/object/src/drive.rs",
    "crates/object/src/store.rs",
    "crates/object/src/wal.rs",
    "crates/object/src/cache.rs",
    "crates/proto/src/message.rs",
    "crates/proto/src/wire.rs",
    "crates/fm/src/drives.rs",
    "crates/fm/src/nfs.rs",
    "crates/fm/src/afs.rs",
    "crates/cheops/src/client.rs",
    "crates/pfs/src/sio.rs",
];

/// Copying method calls H1 flags when they appear as `.name(`.
const H1_METHODS: &[&str] = &["to_vec", "copy_from_slice", "extend_from_slice"];

/// H1: no casual payload copies in data-path modules. Flags
/// `.to_vec()` / `.copy_from_slice(..)` / `.extend_from_slice(..)`
/// method calls and the `Bytes::copy_from_slice` constructor; each
/// surviving site must justify itself with
/// `// nasd-lint: allow(hot-path-copy, "why the copy is the point")`.
pub(crate) fn check_h1(src: &Source, out: &mut Vec<RawFinding>) {
    if !H1_FILES.iter().any(|f| src.path.ends_with(f)) {
        return;
    }
    let toks = &src.lexed.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(RawFinding {
            rule: "H1",
            file: src.path.clone(),
            line,
            message: format!(
                "`{what}` copies payload bytes on the data path; keep the \
                 zero-copy rope/Bytes views, or justify the copy with a \
                 reasoned allow(hot-path-copy)"
            ),
            allow: Some("hot-path-copy"),
        });
    };
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if toks[i].is_punct('.') && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                if H1_METHODS.contains(&name) {
                    push(toks[i + 1].line, &format!(".{name}()"));
                }
            }
        } else if seq_path(toks, i, "Bytes", "copy_from_slice") {
            push(toks[i].line, "Bytes::copy_from_slice");
        }
    }
}

/// F1: every crate root keeps `#![forbid(unsafe_code)]`.
pub(crate) fn check_f1(src: &Source, out: &mut Vec<RawFinding>) {
    if !src.path.ends_with("src/lib.rs") {
        return;
    }
    let toks = &src.lexed.tokens;
    let found = (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 7).is_some_and(|t| t.is_punct(']'))
    });
    if !found {
        out.push(RawFinding {
            rule: "F1",
            file: src.path.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            allow: None,
        });
    }
}
