//! Instruction-cost accounting for the drive request path (§4.4).
//!
//! The paper instrumented its prototype with ATOM and the Alpha on-chip
//! counters to produce Table 1: total instructions per request, the share
//! spent in communications (DCE RPC, UDP/IP), and the estimated service
//! time on a 200 MHz drive controller at CPI 2.2. We reproduce the same
//! quantities with an explicit cost model whose constants are calibrated
//! against Table 1's measurements:
//!
//! | constant | value | derivation |
//! |---|---|---|
//! | `COMM_FIXED` | 35,000 | warm 1-byte read: 38k total × 92% comm |
//! | `COMM_PER_BYTE_READ` | 2.55 | (512 KB warm read comm − fixed) / bytes |
//! | `COMM_PER_BYTE_WRITE` | 3.40 | (512 KB warm write comm − fixed) / bytes |
//! | `NASD_FIXED` | 3,000 | warm 1-byte read: 38k × 8% |
//! | `NASD_PER_BYTE` | 0.075 | (512 KB warm read nasd − fixed) / bytes |
//! | `COLD_FIXED` | 8,000 | cold − warm at 1 byte |
//! | `COLD_PER_BLOCK` | 1,090 | (cold − warm at 512 KB − fixed) / 64 blocks |
//!
//! The harness `table1` prints model-vs-paper for every cell; agreement is
//! within ~10% everywhere, which is the paper's own error bar for this
//! kind of estimate ("there are many reasons why using these numbers to
//! predict drive performance is approximate").

use nasd_sim::{CpuModel, SimTime};

/// Per-request fixed communications cost (RPC + UDP/IP), instructions.
pub const COMM_FIXED: f64 = 35_000.0;
/// Per-byte communications cost for the first 8 KB of payload (both
/// directions — the fast single-fragment path).
pub const COMM_PER_BYTE_FIRST: f64 = 2.30;
/// Per-byte communications cost past 8 KB for read replies.
pub const COMM_PER_BYTE_READ: f64 = 2.57;
/// Per-byte communications cost past 8 KB for write payloads (reassembly
/// makes the receive path dearer than transmit).
pub const COMM_PER_BYTE_WRITE: f64 = 3.42;
/// Payload size served by the cheaper single-fragment path.
pub const COMM_FIRST_BYTES: u64 = 8_192;
/// Fixed object-system cost on the warm path, instructions.
pub const NASD_FIXED: f64 = 3_000.0;
/// Per-byte object-system cost (cache lookup + copy management).
pub const NASD_PER_BYTE: f64 = 0.075;
/// Additional fixed cost when metadata/cache is cold.
pub const COLD_FIXED: f64 = 8_000.0;
/// Additional per-block cost on the cold path (cache fill bookkeeping).
pub const COLD_PER_BLOCK: f64 = 1_090.0;
/// Block size assumed by the per-block cold surcharge.
pub const COST_BLOCK_SIZE: u64 = 8_192;

/// Which drive operation a cost estimate describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Object data read.
    Read,
    /// Object data write.
    Write,
    /// Attribute read.
    GetAttr,
    /// Any control operation (create/remove/setattr/...).
    Control,
}

/// Instruction cost of one request, split the way Table 1 splits it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCost {
    /// Instructions in the communications path.
    pub comm_instructions: f64,
    /// Instructions in the NASD object-system path.
    pub nasd_instructions: f64,
}

impl OpCost {
    /// Total instructions.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.comm_instructions + self.nasd_instructions
    }

    /// Percent of instructions in communications (Table 1's "%" column).
    #[must_use]
    pub fn pct_comm(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.comm_instructions / t * 100.0
        }
    }

    /// Service time on `cpu` (Table 1's "operation time" columns).
    #[must_use]
    pub fn time_on(&self, cpu: &CpuModel) -> SimTime {
        cpu.time_for_instructions(self.total().round() as u64)
    }

    /// Sum of two costs (for multi-step operations).
    #[must_use]
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            comm_instructions: self.comm_instructions + other.comm_instructions,
            nasd_instructions: self.nasd_instructions + other.nasd_instructions,
        }
    }
}

/// The drive's cost meter.
///
/// # Example
///
/// ```
/// use nasd_object::{CostMeter, OpKind};
/// use nasd_sim::CpuModel;
///
/// let meter = CostMeter::new();
/// let warm = meter.estimate(OpKind::Read, 65_536, 0);
/// // Table 1: warm 64 KB read ≈ 224k instructions, 97% communications.
/// assert!((warm.total() - 224_000.0).abs() / 224_000.0 < 0.15);
/// assert!(warm.pct_comm() > 90.0);
/// // ≈ 2.5 ms at 200 MHz / CPI 2.2.
/// let cpu = CpuModel::new(200.0, 2.2);
/// assert!((warm.time_on(&cpu).as_millis_f64() - 2.5).abs() < 0.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CostMeter {
    _private: (),
}

impl CostMeter {
    /// Create a meter with the Table 1 calibration.
    #[must_use]
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Estimate the cost of an operation moving `bytes` of data, with
    /// `cold_blocks` blocks fetched or installed cold (0 = warm path).
    #[must_use]
    pub fn estimate(&self, kind: OpKind, bytes: u64, cold_blocks: u64) -> OpCost {
        let b = bytes as f64;
        let (tail_per_byte, has_payload) = match kind {
            OpKind::Read => (COMM_PER_BYTE_READ, true),
            OpKind::Write => (COMM_PER_BYTE_WRITE, true),
            OpKind::GetAttr | OpKind::Control => (0.0, false),
        };
        let payload_comm = if has_payload {
            let first = bytes.min(COMM_FIRST_BYTES) as f64;
            let tail = bytes.saturating_sub(COMM_FIRST_BYTES) as f64;
            COMM_PER_BYTE_FIRST * first + tail_per_byte * tail
        } else {
            0.0
        };
        let comm = COMM_FIXED + payload_comm;
        let mut nasd = NASD_FIXED + if has_payload { NASD_PER_BYTE * b } else { 0.0 };
        if cold_blocks > 0 {
            nasd += COLD_FIXED + COLD_PER_BLOCK * cold_blocks as f64;
        }
        OpCost {
            comm_instructions: comm,
            nasd_instructions: nasd,
        }
    }

    /// Cold-block count implied by a transfer of `bytes` when nothing is
    /// cached (used by the Table 1 harness).
    #[must_use]
    pub fn cold_blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(COST_BLOCK_SIZE).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every cell of Table 1, checked to within 15%.
    #[test]
    fn matches_table1_within_tolerance() {
        let meter = CostMeter::new();
        // (kind, bytes, cold, paper_total_instructions, paper_pct_comm)
        let cells: &[(OpKind, u64, bool, f64, f64)] = &[
            (OpKind::Read, 1, true, 46_000.0, 70.0),
            (OpKind::Read, 8_192, true, 67_000.0, 79.0),
            (OpKind::Read, 65_536, true, 247_000.0, 90.0),
            (OpKind::Read, 524_288, true, 1_488_000.0, 92.0),
            (OpKind::Read, 1, false, 38_000.0, 92.0),
            (OpKind::Read, 8_192, false, 57_000.0, 94.0),
            (OpKind::Read, 65_536, false, 224_000.0, 97.0),
            (OpKind::Read, 524_288, false, 1_410_000.0, 97.0),
            (OpKind::Write, 1, true, 43_000.0, 73.0),
            (OpKind::Write, 8_192, true, 71_000.0, 82.0),
            (OpKind::Write, 65_536, true, 269_000.0, 92.0),
            (OpKind::Write, 524_288, true, 1_947_000.0, 96.0),
            (OpKind::Write, 1, false, 37_000.0, 92.0),
            (OpKind::Write, 8_192, false, 57_000.0, 94.0),
            (OpKind::Write, 65_536, false, 253_000.0, 97.0),
            (OpKind::Write, 524_288, false, 1_871_000.0, 97.0),
        ];
        for &(kind, bytes, cold, paper_total, paper_pct) in cells {
            let cold_blocks = if cold {
                meter.cold_blocks_for(bytes)
            } else {
                0
            };
            let cost = meter.estimate(kind, bytes, cold_blocks);
            let rel = (cost.total() - paper_total).abs() / paper_total;
            assert!(
                rel < 0.15,
                "{kind:?} {bytes}B cold={cold}: model {:.0} vs paper {paper_total:.0} ({:.0}% off)",
                cost.total(),
                rel * 100.0
            );
            assert!(
                (cost.pct_comm() - paper_pct).abs() < 8.0,
                "{kind:?} {bytes}B cold={cold}: %comm {:.1} vs paper {paper_pct}",
                cost.pct_comm()
            );
        }
    }

    /// Table 1's derived timing: warm small requests take 0.4–0.5 ms and
    /// 512 KB requests 15–21 ms on the 200 MHz CPI-2.2 controller.
    #[test]
    fn timing_estimates_match_table1() {
        let meter = CostMeter::new();
        let cpu = CpuModel::new(200.0, 2.2);
        let t_small = meter.estimate(OpKind::Read, 1, 0).time_on(&cpu);
        assert!((0.35..0.55).contains(&t_small.as_millis_f64()), "{t_small}");
        let t_big = meter
            .estimate(OpKind::Write, 524_288, meter.cold_blocks_for(524_288))
            .time_on(&cpu);
        assert!((18.0..23.0).contains(&t_big.as_millis_f64()), "{t_big}");
    }

    #[test]
    fn getattr_has_no_payload_cost() {
        let meter = CostMeter::new();
        let c = meter.estimate(OpKind::GetAttr, 0, 0);
        assert_eq!(c.comm_instructions, COMM_FIXED);
        assert_eq!(c.nasd_instructions, NASD_FIXED);
    }

    #[test]
    fn plus_accumulates() {
        let a = OpCost {
            comm_instructions: 10.0,
            nasd_instructions: 1.0,
        };
        let b = OpCost {
            comm_instructions: 5.0,
            nasd_instructions: 2.0,
        };
        let c = a.plus(b);
        assert_eq!(c.total(), 18.0);
        assert!((c.pct_comm() - 15.0 / 18.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cost_pct_is_zero() {
        assert_eq!(OpCost::default().pct_comm(), 0.0);
    }
}
