//! Drive-side security: capability verification and replay defense.
//!
//! The drive holds only its keys (§4.1): "because the drive knows its
//! keys, receives the public fields of a capability with each request, and
//! knows the current version number of the object, it can compute the
//! client's private field... If any field has been changed, including the
//! object version number, the access fails and the client is sent back to
//! the file manager." No per-capability state is stored.

use nasd_crypto::{DriveKeys, KeyKind, SecretKey};
use nasd_proto::wire::WireEncode;
use nasd_proto::{
    DriveId, NasdStatus, Nonce, PartitionId, ProtectionLevel, Request, RequestDigest, Rights,
    Version,
};
use std::collections::HashMap;

/// Anti-replay window for one client, IPsec-style: a high-water counter
/// plus a 64-entry bitmap for bounded reordering.
#[derive(Debug, Clone, Default)]
pub struct ReplayWindow {
    highest: u64,
    /// Bit `i` set means counter `highest - i` has been seen (bit 0 =
    /// `highest` itself).
    mask: u64,
}

impl ReplayWindow {
    /// Window width in sequence numbers.
    pub const WIDTH: u64 = 64;

    /// Accept or reject `counter`, recording it if accepted.
    pub fn accept(&mut self, counter: u64) -> bool {
        if counter == 0 {
            // Counter 0 is reserved so a fresh window (highest = 0,
            // mask = 0) never confuses "nothing seen" with "0 seen".
            return false;
        }
        if counter > self.highest {
            let shift = counter - self.highest;
            self.mask = if shift >= 64 { 0 } else { self.mask << shift };
            self.mask |= 1;
            self.highest = counter;
            return true;
        }
        let age = self.highest - counter;
        if age >= Self::WIDTH {
            return false;
        }
        let bit = 1u64 << age;
        if self.mask & bit != 0 {
            return false;
        }
        self.mask |= bit;
        true
    }
}

/// The security state of one NASD drive.
#[derive(Debug)]
pub struct DriveSecurity {
    drive_id: DriveId,
    drive_key: SecretKey,
    partition_keys: HashMap<PartitionId, DriveKeys>,
    replay: HashMap<u64, ReplayWindow>,
    enabled: bool,
}

impl DriveSecurity {
    /// Create security state for `drive_id` holding `drive_key` (the
    /// level-2 key authorizing partition administration). `enabled =
    /// false` reproduces the paper's measurement configuration ("we
    /// disabled these security protocols because our prototype does not
    /// currently support such hardware"); the functional stack runs with
    /// it on.
    #[must_use]
    pub fn new(drive_id: DriveId, drive_key: SecretKey, enabled: bool) -> Self {
        DriveSecurity {
            drive_id,
            drive_key,
            partition_keys: HashMap::new(),
            replay: HashMap::new(),
            enabled,
        }
    }

    /// Whether verification is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Install the key set for a partition (done over the administrative
    /// channel when the partition is created).
    pub fn install_partition_keys(&mut self, p: PartitionId, keys: DriveKeys) {
        self.partition_keys.insert(p, keys);
    }

    /// Remove a partition's keys.
    pub fn remove_partition_keys(&mut self, p: PartitionId) {
        self.partition_keys.remove(&p);
    }

    /// The working key for (partition, kind), if the partition is known.
    #[must_use]
    pub fn working_key(&self, p: PartitionId, kind: KeyKind) -> Option<&SecretKey> {
        self.partition_keys.get(&p).map(|k| k.working(kind))
    }

    /// Replace a working key (the `SetKey` operation): mass-revokes every
    /// capability minted under the old key.
    ///
    /// # Errors
    ///
    /// [`NasdStatus::NoSuchPartition`] when no keys are installed for `p`.
    pub fn set_working_key(
        &mut self,
        p: PartitionId,
        kind: KeyKind,
        key: SecretKey,
    ) -> Result<(), NasdStatus> {
        let keys = self
            .partition_keys
            .get_mut(&p)
            .ok_or(NasdStatus::NoSuchPartition)?;
        keys.set_working(kind, key);
        Ok(())
    }

    /// Expected digest for a request: `HMAC(key, nonce || args [|| data])`.
    /// Data is covered when the protection level demands it.
    #[must_use]
    pub fn request_digest(
        key: &[u8],
        nonce: Nonce,
        args: &[u8],
        data: &[u8],
        protection: ProtectionLevel,
    ) -> RequestDigest {
        let mut mac = nasd_crypto::HmacSha256::new(key);
        // Identical bytes to `nonce.to_wire()` (two big-endian u64s),
        // absorbed from the stack so the hot path does not allocate.
        mac.update(&nonce.client.to_be_bytes());
        mac.update(&nonce.counter.to_be_bytes());
        mac.update(args);
        if protection >= ProtectionLevel::DataIntegrity {
            mac.update(data);
        }
        RequestDigest(mac.finalize())
    }

    /// Verify a capability-authorized request.
    ///
    /// `required` is the rights the operation needs; `object_version` is
    /// the object's current logical version (pass `Version(0)` for
    /// operations on not-yet-existing objects such as `Create`);
    /// `region_check` is the byte range the operation touches, if any.
    ///
    /// # Errors
    ///
    /// The [`NasdStatus`] to return to the client. Security failures are
    /// deliberately coarse-grained (`AccessDenied`), except replay.
    pub fn verify(
        &mut self,
        req: &Request,
        required: Rights,
        object_version: Version,
        region_check: Option<(u64, u64)>,
        now: u64,
    ) -> Result<(), NasdStatus> {
        if !self.enabled {
            return Ok(());
        }
        let cap = req.capability.as_ref().ok_or(NasdStatus::AccessDenied)?;

        // Structural checks first (cheap).
        if cap.drive != self.drive_id {
            return Err(NasdStatus::AccessDenied);
        }
        if cap.partition != req.body.partition() {
            return Err(NasdStatus::AccessDenied);
        }
        if let Some(obj) = req.body.object() {
            if cap.object != obj {
                return Err(NasdStatus::AccessDenied);
            }
        }
        if req.header.protection < cap.min_protection {
            return Err(NasdStatus::AccessDenied);
        }
        if cap.expires < now {
            return Err(NasdStatus::AccessDenied);
        }
        if cap.version != object_version {
            // Version bump = revocation (§4.1).
            return Err(NasdStatus::AccessDenied);
        }
        if !cap.rights.allows(required) {
            return Err(NasdStatus::AccessDenied);
        }
        if let Some((offset, len)) = region_check {
            if !cap.region.contains_range(offset, len) {
                return Err(NasdStatus::RangeViolation);
            }
        }

        // Cryptographic check: recompute the private field and the digest.
        let key = self
            .working_key(cap.partition, cap.key_kind)
            .ok_or(NasdStatus::NoSuchPartition)?;
        let private = cap.private_under(key);
        let expected = Self::request_digest(
            private.as_bytes(),
            req.header.nonce,
            &req.body.to_wire(),
            &req.data,
            req.header.protection,
        );
        if !expected.verify(&req.digest) {
            return Err(NasdStatus::AccessDenied);
        }

        // Replay window last: only genuine requests consume nonces.
        let window = self.replay.entry(req.header.nonce.client).or_default();
        if !window.accept(req.header.nonce.counter) {
            return Err(NasdStatus::Replay);
        }
        Ok(())
    }

    /// Verify a partition-administration request (`CreatePartition`,
    /// `ResizePartition`, `RemovePartition`), which is authorized by the
    /// drive key (level 2) rather than a capability.
    ///
    /// # Errors
    ///
    /// [`NasdStatus`] on verification failure.
    pub fn verify_admin(&mut self, req: &Request) -> Result<(), NasdStatus> {
        if !self.enabled {
            return Ok(());
        }
        if req.capability.is_some() {
            return Err(NasdStatus::BadRequest);
        }
        let expected = Self::request_digest(
            self.drive_key.as_bytes(),
            req.header.nonce,
            &req.body.to_wire(),
            &req.data,
            req.header.protection,
        );
        if !expected.verify(&req.digest) {
            return Err(NasdStatus::AccessDenied);
        }
        let window = self.replay.entry(req.header.nonce.client).or_default();
        if !window.accept(req.header.nonce.counter) {
            return Err(NasdStatus::Replay);
        }
        Ok(())
    }

    /// Verify a `SetKey` request, which is authorized by the partition key
    /// (level 3) rather than a capability.
    ///
    /// # Errors
    ///
    /// [`NasdStatus`] on verification failure.
    pub fn verify_setkey(&mut self, req: &Request, now: u64) -> Result<(), NasdStatus> {
        let _ = now;
        if !self.enabled {
            return Ok(());
        }
        if req.capability.is_some() {
            return Err(NasdStatus::BadRequest);
        }
        let p = req.body.partition();
        let keys = self
            .partition_keys
            .get(&p)
            .ok_or(NasdStatus::NoSuchPartition)?;
        let expected = Self::request_digest(
            keys.partition.as_bytes(),
            req.header.nonce,
            &req.body.to_wire(),
            &req.data,
            req.header.protection,
        );
        if !expected.verify(&req.digest) {
            return Err(NasdStatus::AccessDenied);
        }
        let window = self.replay.entry(req.header.nonce.client).or_default();
        if !window.accept(req.header.nonce.counter) {
            return Err(NasdStatus::Replay);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_window_monotone_accepts() {
        let mut w = ReplayWindow::default();
        for c in 1..100u64 {
            assert!(w.accept(c), "fresh counter {c}");
        }
    }

    #[test]
    fn replay_window_rejects_duplicates() {
        let mut w = ReplayWindow::default();
        assert!(w.accept(5));
        assert!(!w.accept(5));
        assert!(w.accept(7));
        assert!(!w.accept(7));
        assert!(!w.accept(5));
    }

    #[test]
    fn replay_window_allows_bounded_reordering() {
        let mut w = ReplayWindow::default();
        assert!(w.accept(100));
        assert!(w.accept(70), "within the 64-wide window");
        assert!(!w.accept(70), "but only once");
        assert!(!w.accept(36), "too old (100 - 36 >= 64)");
        assert!(w.accept(37), "exactly at the window edge");
    }

    #[test]
    fn replay_window_rejects_zero() {
        let mut w = ReplayWindow::default();
        assert!(!w.accept(0));
    }

    #[test]
    fn replay_window_big_jump_clears_mask() {
        let mut w = ReplayWindow::default();
        assert!(w.accept(1));
        assert!(w.accept(1000));
        assert!(!w.accept(1));
        assert!(w.accept(999));
    }
}
