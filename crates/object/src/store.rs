//! Object access and disk space management (§4.1–4.2).
//!
//! Implements the NASD drive's storage core: soft partitions with quotas,
//! a flat namespace of variable-length objects, per-object attributes,
//! lazy extent allocation with clustering hints, copy-on-write object
//! versions, and short reads at end-of-object. All data moves through the
//! write-behind [`BlockCache`]; every operation reports its physical I/O
//! in an [`IoTrace`] for cost accounting and timing replay.

use crate::alloc::Allocator;
use crate::cache::{BlockCache, IoTrace};
use crate::layout::Layout;
use crate::wal::{Wal, WalRecord};
use bytes::ByteRope;
use nasd_disk::{BlockDevice, DiskError};
use nasd_proto::{ObjectAttributes, ObjectId, PartitionId, SetAttrMask, Version};
use std::collections::HashMap;
use std::fmt;

/// First object id handed to drive-assigned objects; smaller ids are
/// reserved for well-known control objects (§4.1).
pub const FIRST_DYNAMIC_OBJECT: u64 = 0x100;

/// Errors from the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Partition does not exist.
    NoSuchPartition(PartitionId),
    /// Partition id already in use.
    PartitionExists(PartitionId),
    /// Partition still holds objects.
    PartitionNotEmpty(PartitionId),
    /// Object does not exist.
    NoSuchObject(ObjectId),
    /// Allocation failed: partition quota or device capacity exhausted.
    NoSpace,
    /// Quota cannot shrink below current usage.
    QuotaBelowUsage {
        /// Requested quota in bytes.
        requested: u64,
        /// Current usage in bytes.
        used: u64,
    },
    /// The device holds no valid metadata checkpoint (see
    /// [`ObjectStore::open`]).
    NotFormatted,
    /// On-disk metadata carries the right magic but fails a checksum or
    /// structural self-check: the device was formatted, then damaged.
    /// Distinct from [`StoreError::NotFormatted`] so callers never
    /// silently reformat a drive that *had* data.
    Corrupt(&'static str),
    /// Underlying device error.
    Disk(DiskError),
    /// An internal invariant did not hold (metadata out of step with
    /// allocation state). Maps to [`NasdStatus::DriveError`] at the wire:
    /// the request path reports instead of panicking, so the durability
    /// promise survives even a store bug.
    ///
    /// [`NasdStatus::DriveError`]: nasd_proto::NasdStatus
    Internal(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchPartition(p) => write!(f, "no such partition {p}"),
            StoreError::PartitionExists(p) => write!(f, "partition {p} already exists"),
            StoreError::PartitionNotEmpty(p) => write!(f, "partition {p} is not empty"),
            StoreError::NoSuchObject(o) => write!(f, "no such object {o}"),
            StoreError::NoSpace => f.write_str("no space"),
            StoreError::QuotaBelowUsage { requested, used } => {
                write!(f, "quota {requested} below current usage {used}")
            }
            StoreError::NotFormatted => f.write_str("no valid metadata checkpoint"),
            StoreError::Corrupt(what) => write!(f, "on-disk metadata corrupt: {what}"),
            StoreError::Disk(e) => write!(f, "device error: {e}"),
            StoreError::Internal(what) => write!(f, "internal store invariant violated: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for StoreError {
    fn from(e: DiskError) -> Self {
        StoreError::Disk(e)
    }
}

/// Usage summary of one partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionStats {
    /// Capacity quota in bytes.
    pub quota: u64,
    /// Bytes of quota consumed by allocated blocks.
    pub used: u64,
    /// Number of live objects.
    pub objects: usize,
}

pub(crate) struct ObjectMeta {
    pub(crate) attrs: ObjectAttributes,
    /// Device block of each logical block, in order. Length covers both
    /// written data and preallocated capacity.
    pub(crate) blocks: Vec<u64>,
}

pub(crate) struct Partition {
    pub(crate) quota: u64,
    pub(crate) used: u64,
    pub(crate) next_object: u64,
    pub(crate) objects: HashMap<ObjectId, ObjectMeta>,
}

/// The drive's object store.
///
/// Generic over the [`BlockDevice`] holding the bytes; all metadata
/// (object tables, allocator state, refcounts) lives in memory, as in the
/// paper's prototype drive software.
///
/// # Example
///
/// ```
/// use nasd_disk::MemDisk;
/// use nasd_object::{IoTrace, ObjectStore};
/// use nasd_proto::PartitionId;
///
/// let mut store = ObjectStore::new(MemDisk::new(8192, 1024), 64);
/// let mut t = IoTrace::default();
/// let p = PartitionId(1);
/// store.create_partition(p, 1 << 20)?;
/// let obj = store.create_object(p, 0, None, 100, &mut t)?;
/// store.write(p, obj, 0, b"data", 101, &mut t)?;
/// assert_eq!(store.read(p, obj, 0, 4, 102, &mut t)?, b"data");
/// # Ok::<(), nasd_object::StoreError>(())
/// ```
pub struct ObjectStore<D> {
    pub(crate) cache: BlockCache<D>,
    pub(crate) allocator: Allocator,
    pub(crate) partitions: HashMap<PartitionId, Partition>,
    /// Reference counts for blocks shared by copy-on-write versions.
    /// Blocks absent from the map have refcount 1.
    pub(crate) refcounts: HashMap<u64, u32>,
    pub(crate) block_size: usize,
    /// Reusable block-number list for `read`, so steady-state reads do
    /// not allocate a fresh copy of the object's block map.
    pub(crate) read_scratch: Vec<u64>,
    /// On-disk region geometry (see [`crate::layout`]).
    pub(crate) layout: Layout,
    /// The write-ahead log; disabled unless the drive runs durable.
    pub(crate) wal: Wal,
    /// Epoch of the last checkpoint on disk (0 before the first one).
    pub(crate) checkpoint_seq: u64,
    /// Whether a superblock exists on disk yet. A fresh store is
    /// unformatted until its first checkpoint.
    pub(crate) formatted: bool,
}

impl<D: BlockDevice> ObjectStore<D> {
    /// Create (format) a store over `device` with a cache of
    /// `cache_blocks` blocks. The head of the device is reserved for the
    /// metadata checkpoint area (see [`Self::checkpoint`]); data blocks
    /// start after it.
    #[must_use]
    pub fn new(device: D, cache_blocks: usize) -> Self {
        let total_blocks = device.num_blocks();
        let block_size = device.block_size();
        let layout = Layout::compute(block_size, total_blocks);
        let mut allocator = Allocator::new(total_blocks);
        if layout.data_start > 0 {
            // On a device too small for its metadata, `data_start` clamps
            // to the whole device: everything is reserved and allocations
            // fail cleanly with `NoSpace` rather than overlapping.
            if let Some(reserved) = allocator.allocate(layout.data_start, Some(0)) {
                debug_assert_eq!(reserved.start, 0, "metadata area is the device head");
            }
        }
        ObjectStore {
            cache: BlockCache::new(device, cache_blocks),
            allocator,
            partitions: HashMap::new(),
            refcounts: HashMap::new(),
            block_size,
            read_scratch: Vec::new(),
            wal: Wal::new(&layout),
            layout,
            checkpoint_seq: 0,
            formatted: false,
        }
    }

    /// Device block size in bytes.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Free blocks remaining on the device.
    #[must_use]
    pub fn free_blocks(&self) -> u64 {
        self.allocator.free_blocks()
    }

    /// The block cache (for statistics).
    #[must_use]
    pub fn cache(&self) -> &BlockCache<D> {
        &self.cache
    }

    /// On-disk region geometry.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Turn write-ahead logging on or off. The drive enables it for
    /// durable configurations *after* open/replay — replayed operations
    /// must not re-log themselves.
    pub fn enable_wal(&mut self, enabled: bool) {
        self.wal.enabled = enabled;
    }

    /// Bytes of committed log since the last checkpoint (recovery
    /// benchmarks plot replay time against this).
    #[must_use]
    pub fn wal_durable_bytes(&self) -> u64 {
        self.wal.durable_bytes()
    }

    /// Group commit: push every record logged since the last commit to
    /// the media. The drive calls this before acknowledging a mutating
    /// request — once it returns, a crash at any later instant replays
    /// the operation.
    ///
    /// # Errors
    ///
    /// Device errors; [`StoreError::NoSpace`] when the first commit must
    /// format the device and the device cannot hold its metadata.
    pub fn wal_commit(&mut self, trace: &mut IoTrace) -> Result<(), StoreError> {
        if !self.wal.has_pending() {
            return Ok(());
        }
        // The log is only meaningful relative to a checkpoint epoch: the
        // very first commit checkpoints once to put a superblock on disk
        // (which also empties the pending buffer into that checkpoint).
        if !self.formatted {
            self.checkpoint(trace)?;
            return Ok(());
        }
        let first = self.wal.durable_bytes();
        self.wal.commit(self.cache.device_mut())?;
        let count = (self.wal.durable_bytes() - first).div_ceil(self.block_size as u64);
        trace.records.push(crate::cache::IoRecord::Write {
            block: self.layout.log_start + first / self.block_size as u64,
            count: count.max(1),
        });
        Ok(())
    }

    /// Append a record for an operation that just succeeded. When the
    /// log area is full, fall back to a checkpoint — it captures the
    /// operation's effect directly and logically empties the log.
    fn wal_log(&mut self, rec: &WalRecord, trace: &mut IoTrace) -> Result<(), StoreError> {
        if !self.wal.enabled {
            return Ok(());
        }
        if !self.wal.append(rec) {
            self.checkpoint(trace)?;
        }
        Ok(())
    }

    // ----- partitions -------------------------------------------------

    /// Create a soft partition with a byte quota.
    ///
    /// # Errors
    ///
    /// [`StoreError::PartitionExists`] if the id is taken.
    pub fn create_partition(&mut self, p: PartitionId, quota: u64) -> Result<(), StoreError> {
        if self.partitions.contains_key(&p) {
            return Err(StoreError::PartitionExists(p));
        }
        self.partitions.insert(
            p,
            Partition {
                quota,
                used: 0,
                next_object: FIRST_DYNAMIC_OBJECT,
                objects: HashMap::new(),
            },
        );
        self.wal_log(
            &WalRecord::CreatePartition { p, quota },
            &mut IoTrace::default(),
        )?;
        Ok(())
    }

    /// Change a partition's quota. "Resizeable partitions allow capacity
    /// quotas to be managed by a drive administrator" (§4.1).
    ///
    /// # Errors
    ///
    /// [`StoreError::QuotaBelowUsage`] if shrinking below current usage.
    pub fn resize_partition(&mut self, p: PartitionId, quota: u64) -> Result<(), StoreError> {
        let part = self.partition_mut(p)?;
        if quota < part.used {
            return Err(StoreError::QuotaBelowUsage {
                requested: quota,
                used: part.used,
            });
        }
        part.quota = quota;
        self.wal_log(
            &WalRecord::ResizePartition { p, quota },
            &mut IoTrace::default(),
        )?;
        Ok(())
    }

    /// Remove an empty partition.
    ///
    /// # Errors
    ///
    /// [`StoreError::PartitionNotEmpty`] if objects remain.
    pub fn remove_partition(&mut self, p: PartitionId) -> Result<(), StoreError> {
        let part = self.partition_mut(p)?;
        if !part.objects.is_empty() {
            return Err(StoreError::PartitionNotEmpty(p));
        }
        self.partitions.remove(&p);
        self.wal_log(&WalRecord::RemovePartition { p }, &mut IoTrace::default())?;
        Ok(())
    }

    /// Stats for one partition.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchPartition`] if it does not exist.
    pub fn partition_stats(&self, p: PartitionId) -> Result<PartitionStats, StoreError> {
        let part = self.partition(p)?;
        Ok(PartitionStats {
            quota: part.quota,
            used: part.used,
            objects: part.objects.len(),
        })
    }

    /// Ids of all partitions.
    #[must_use]
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        let mut v: Vec<_> = self.partitions.keys().copied().collect();
        v.sort();
        v
    }

    fn partition(&self, p: PartitionId) -> Result<&Partition, StoreError> {
        self.partitions
            .get(&p)
            .ok_or(StoreError::NoSuchPartition(p))
    }

    fn partition_mut(&mut self, p: PartitionId) -> Result<&mut Partition, StoreError> {
        self.partitions
            .get_mut(&p)
            .ok_or(StoreError::NoSuchPartition(p))
    }

    // ----- objects ----------------------------------------------------

    /// Create an object; the drive assigns the name. `preallocate` bytes
    /// of capacity are reserved immediately (attribute-managed capacity
    /// reservation, §4.1); `cluster_with` is a layout hint.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] if preallocation exceeds quota or device
    /// space.
    pub fn create_object(
        &mut self,
        p: PartitionId,
        preallocate: u64,
        cluster_with: Option<ObjectId>,
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<ObjectId, StoreError> {
        let bs = self.block_size as u64;
        let nblocks = preallocate.div_ceil(bs);

        // Find the placement hint before borrowing mutably.
        let hint = cluster_with.and_then(|c| {
            self.partitions
                .get(&p)
                .and_then(|part| part.objects.get(&c))
                .and_then(|m| m.blocks.first().copied())
        });

        let part = self.partition(p)?;
        if part.used + nblocks * bs > part.quota {
            return Err(StoreError::NoSpace);
        }
        let blocks = self.allocate_blocks(nblocks, hint, trace)?;

        let part = self.partition_mut(p)?;
        let id = ObjectId(part.next_object);
        part.next_object += 1;
        let mut attrs = ObjectAttributes::new_at(now);
        attrs.preallocated = preallocate;
        attrs.cluster_with = cluster_with;
        part.used += nblocks * bs;
        part.objects.insert(id, ObjectMeta { attrs, blocks });
        self.wal_log(
            &WalRecord::Create {
                p,
                id,
                preallocate,
                cluster_with,
                now,
            },
            trace,
        )?;
        Ok(id)
    }

    fn allocate_blocks(
        &mut self,
        nblocks: u64,
        hint: Option<u64>,
        trace: &mut IoTrace,
    ) -> Result<Vec<u64>, StoreError> {
        if nblocks == 0 {
            return Ok(Vec::new());
        }
        let extents = self
            .allocator
            .allocate_fragmented(nblocks, hint)
            .ok_or(StoreError::NoSpace)?;
        let mut blocks = Vec::with_capacity(nblocks as usize);
        for e in extents {
            blocks.extend(e.start..e.end());
        }
        // Recycled blocks still hold whatever a freed object left behind;
        // zero them in cache so gaps and extensions read back as zeros and
        // log replay reproduces the exact bytes the live run exposed.
        let zeros = vec![0u8; self.block_size];
        for &b in &blocks {
            self.cache.write(b, &zeros, trace)?;
        }
        Ok(blocks)
    }

    /// Zero object bytes `[from, to)` on media. Called when the logical
    /// size grows past bytes that may be stale in pre-existing blocks (a
    /// shrunk-then-regrown tail, or preallocated capacity): extension
    /// must read back as zeros, and recovery must reproduce the same
    /// bytes the live run exposed.
    fn zero_range(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        from: u64,
        to: u64,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        if from >= to {
            return Ok(());
        }
        let bs = self.block_size;
        let first_l = (from / bs as u64) as usize;
        let last_l = ((to - 1) / bs as u64) as usize;
        // A snapshot may still reference these bytes through a shared
        // block; re-home before scribbling zeros.
        for l in first_l..=last_l {
            self.cow_block(p, o, l, trace)?;
        }
        let blocks = {
            let meta = self.object_mut(p, o)?;
            meta.blocks.clone()
        };
        let zeros = vec![0u8; bs];
        let mut pos = from;
        while pos < to {
            let lblock = (pos / bs as u64) as usize;
            let within = (pos % bs as u64) as usize;
            let take = (bs - within).min((to - pos) as usize);
            let dev_block = *blocks
                .get(lblock)
                .ok_or(StoreError::Internal("object block map shorter than size"))?;
            let chunk = zeros
                .get(..take)
                .ok_or(StoreError::Internal("zero chunk longer than a block"))?;
            if within == 0 && take == bs {
                self.cache.write(dev_block, chunk, trace)?;
            } else {
                self.cache.write_partial(dev_block, within, chunk, trace)?;
            }
            pos += take as u64;
        }
        Ok(())
    }

    /// Remove an object, releasing its space.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchObject`] / [`StoreError::NoSuchPartition`].
    pub fn remove_object(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        let bs = self.block_size as u64;
        let part = self.partition_mut(p)?;
        let meta = part.objects.remove(&o).ok_or(StoreError::NoSuchObject(o))?;
        part.used -= meta.blocks.len() as u64 * bs;
        let blocks = meta.blocks;
        for b in blocks {
            self.release_block(b);
        }
        self.wal_log(&WalRecord::Remove { p, o }, trace)?;
        Ok(())
    }

    fn release_block(&mut self, b: u64) {
        match self.refcounts.get_mut(&b) {
            Some(rc) if *rc > 1 => {
                *rc -= 1;
                if *rc == 1 {
                    self.refcounts.remove(&b);
                }
            }
            _ => {
                self.refcounts.remove(&b);
                self.cache.discard(b);
                self.allocator.free(crate::alloc::Extent::new(b, 1));
            }
        }
    }

    /// Object attributes, updating the access time.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchObject`] / [`StoreError::NoSuchPartition`].
    pub fn get_attr(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        now: u64,
    ) -> Result<ObjectAttributes, StoreError> {
        let meta = self.object_mut(p, o)?;
        meta.attrs.access_time = now;
        Ok(meta.attrs.clone())
    }

    /// Current logical version of an object (used by capability checks
    /// without perturbing access time).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchObject`] / [`StoreError::NoSuchPartition`].
    pub fn object_version(&self, p: PartitionId, o: ObjectId) -> Result<Version, StoreError> {
        let part = self.partition(p)?;
        let meta = part.objects.get(&o).ok_or(StoreError::NoSuchObject(o))?;
        Ok(meta.attrs.version)
    }

    /// Apply a `SetAttr` request: update the fields selected by `mask`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchObject`]; [`StoreError::NoSpace`] when growing
    /// the preallocation past quota.
    #[allow(clippy::too_many_arguments)]
    pub fn set_attr(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        mask: SetAttrMask,
        fs_specific: &[u8; nasd_proto::FS_SPECIFIC_ATTR_LEN],
        preallocated: u64,
        cluster_with: Option<ObjectId>,
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        // Grow preallocation first (may fail on quota).
        if mask.preallocated {
            self.ensure_capacity(p, o, preallocated, trace)?;
        }
        let meta = self.object_mut(p, o)?;
        if mask.fs_specific {
            // nasd-lint: allow(hot-path-copy, "fixed-size fs-specific attribute block, not payload")
            meta.attrs.fs_specific.copy_from_slice(fs_specific);
        }
        if mask.preallocated {
            meta.attrs.preallocated = preallocated;
        }
        if mask.cluster_with {
            meta.attrs.cluster_with = cluster_with;
        }
        if mask.bump_version {
            meta.attrs.version = meta.attrs.version.bumped();
        }
        meta.attrs.attr_modify_time = now;
        if self.wal.enabled {
            self.wal_log(
                &WalRecord::SetAttr {
                    p,
                    o,
                    mask,
                    fs_specific: Box::new(*fs_specific),
                    preallocated,
                    cluster_with,
                    now,
                },
                trace,
            )?;
        }
        Ok(())
    }

    /// Read up to `len` bytes at `offset`. Reads past end-of-object are
    /// truncated (short read); a read entirely past the end returns empty.
    ///
    /// # Errors
    ///
    /// Object/partition lookup failures and device errors.
    pub fn read(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        offset: u64,
        len: u64,
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<ByteRope, StoreError> {
        let bs = self.block_size;
        // Borrow dance: the cache borrow below conflicts with the object
        // metadata borrow, so the block list is staged in a reusable
        // scratch vector (no allocation once it has grown to fit).
        let mut blocks = std::mem::take(&mut self.read_scratch);
        blocks.clear();
        let size = {
            let meta = match self.object_mut(p, o) {
                Ok(meta) => meta,
                Err(e) => {
                    self.read_scratch = blocks;
                    return Err(e);
                }
            };
            meta.attrs.access_time = now;
            // nasd-lint: allow(hot-path-copy, "block-number list staging, not payload bytes")
            blocks.extend_from_slice(&meta.blocks);
            meta.attrs.size
        };
        if offset >= size || len == 0 {
            self.read_scratch = blocks;
            return Ok(ByteRope::new());
        }
        let end = (offset + len).min(size);
        let mut out = ByteRope::with_capacity((end - offset).div_ceil(bs as u64) as usize + 1);
        let mut pos = offset;
        while pos < end {
            let lblock = (pos / bs as u64) as usize;
            let within = (pos % bs as u64) as usize;
            let take = (bs - within).min((end - pos) as usize);
            let dev_block = *blocks
                .get(lblock)
                .ok_or(StoreError::Internal("object block map shorter than size"))?;
            let data = self.cache.read_shared(dev_block, trace)?;
            if data.len() < within + take {
                return Err(StoreError::Internal("cached block shorter than block size"));
            }
            // O(1) window of the cache block — the zero-copy read path.
            out.push(data.slice(within..within + take));
            pos += take as u64;
        }
        // Error paths above drop the scratch (it regrows on the next
        // read); the steady-state happy path hands it back.
        self.read_scratch = blocks;
        Ok(out)
    }

    /// Ensure the object has capacity (allocated blocks) for `bytes`.
    fn ensure_capacity(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        bytes: u64,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        let bs = self.block_size as u64;
        let need_blocks = bytes.div_ceil(bs);
        let (have, hint, quota_room) = {
            let part = self.partition(p)?;
            let meta = part.objects.get(&o).ok_or(StoreError::NoSuchObject(o))?;
            (
                meta.blocks.len() as u64,
                meta.blocks.last().map(|b| b + 1),
                part.quota - part.used,
            )
        };
        if need_blocks <= have {
            return Ok(());
        }
        let grow = need_blocks - have;
        if grow * bs > quota_room {
            return Err(StoreError::NoSpace);
        }
        let new_blocks = self.allocate_blocks(grow, hint, trace)?;
        let part = self.partition_mut(p)?;
        part.used += grow * bs;
        let meta = part.objects.get_mut(&o).ok_or(StoreError::Internal(
            "object vanished during ensure_capacity",
        ))?;
        meta.blocks.extend(new_blocks);
        Ok(())
    }

    /// Write `data` at `offset`, extending the object as needed. Writing
    /// past the current end creates an eager zero-filled gap (the blocks
    /// are allocated).
    ///
    /// # Errors
    ///
    /// Lookup failures, [`StoreError::NoSpace`], device errors.
    pub fn write(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        offset: u64,
        data: &[u8],
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<u64, StoreError> {
        if data.is_empty() {
            return Ok(0);
        }
        let bs = self.block_size;
        let end = offset + data.len() as u64;
        let (old_size, old_cap) = {
            let meta = self.object_mut(p, o)?;
            (meta.attrs.size, meta.blocks.len() as u64 * bs as u64)
        };
        self.ensure_capacity(p, o, end, trace)?;
        // Pre-existing capacity inside the gap may hold stale bytes; the
        // gap must read back as zeros (newly allocated blocks already do).
        if offset > old_size {
            self.zero_range(p, o, old_size, offset.min(old_cap), trace)?;
        }

        // Copy-on-write: any shared block in the written range must be
        // re-homed before modification.
        let first_l = (offset / bs as u64) as usize;
        let last_l = ((end - 1) / bs as u64) as usize;
        for l in first_l..=last_l {
            self.cow_block(p, o, l, trace)?;
        }

        let blocks = {
            let meta = self.object_mut(p, o)?;
            meta.blocks.clone()
        };
        let mut pos = offset;
        let mut src = 0usize;
        while pos < end {
            let lblock = (pos / bs as u64) as usize;
            let within = (pos % bs as u64) as usize;
            let take = (bs - within).min((end - pos) as usize);
            let dev_block = *blocks
                .get(lblock)
                .ok_or(StoreError::Internal("object block map shorter than size"))?;
            let chunk = data
                .get(src..src + take)
                .ok_or(StoreError::Internal("write source shorter than extent"))?;
            if within == 0 && take == bs {
                self.cache.write(dev_block, chunk, trace)?;
            } else {
                self.cache.write_partial(dev_block, within, chunk, trace)?;
            }
            pos += take as u64;
            src += take;
        }

        let meta = self.object_mut(p, o)?;
        meta.attrs.size = meta.attrs.size.max(end);
        meta.attrs.data_modify_time = now;
        if self.wal.enabled {
            self.wal_log(
                &WalRecord::Write {
                    p,
                    o,
                    offset,
                    // nasd-lint: allow(hot-path-copy, "WAL durability copy: the log record must own the payload it promises to replay")
                    data: data.to_vec(),
                    now,
                },
                trace,
            )?;
        }
        Ok(data.len() as u64)
    }

    /// Re-home logical block `l` of the object if its device block is
    /// shared with a snapshot.
    fn cow_block(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        l: usize,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        let dev_block = {
            let part = self.partition(p)?;
            let meta = part.objects.get(&o).ok_or(StoreError::NoSuchObject(o))?;
            *meta
                .blocks
                .get(l)
                .ok_or(StoreError::Internal("cow target past object block map"))?
        };
        let shared = self.refcounts.get(&dev_block).copied().unwrap_or(1) > 1;
        if !shared {
            return Ok(());
        }
        // Allocate a fresh block, copy old contents, swap the mapping.
        let new_blocks = self.allocate_blocks(1, Some(dev_block), trace)?;
        let new_block = *new_blocks
            .first()
            .ok_or(StoreError::Internal("allocate_blocks(1) returned nothing"))?;
        // A shared view keeps the old block alive with no copy; the one
        // unavoidable copy-on-write ingest happens inside `cache.write`.
        let old = self.cache.read_shared(dev_block, trace)?;
        self.cache.write(new_block, &old, trace)?;
        // Drop one reference from the old block.
        match self.refcounts.get_mut(&dev_block) {
            Some(rc) => {
                *rc -= 1;
                if *rc == 1 {
                    self.refcounts.remove(&dev_block);
                }
            }
            None => return Err(StoreError::Internal("shared block missing its refcount")),
        }
        let meta = self.object_mut(p, o)?;
        *meta
            .blocks
            .get_mut(l)
            .ok_or(StoreError::Internal("cow target past object block map"))? = new_block;
        Ok(())
    }

    /// Truncate or extend object data to `new_size`. Shrinking frees
    /// whole blocks past the new end (respecting preallocation).
    ///
    /// # Errors
    ///
    /// Lookup failures, [`StoreError::NoSpace`] when extending.
    pub fn resize(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        new_size: u64,
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        let bs = self.block_size as u64;
        let (old_size, old_cap) = {
            let meta = self.object_mut(p, o)?;
            (meta.attrs.size, meta.blocks.len() as u64 * bs)
        };
        if new_size > old_size {
            self.ensure_capacity(p, o, new_size, trace)?;
            // Bytes the extension exposes inside pre-existing capacity
            // (a shrunk-then-regrown tail) must read back as zeros.
            self.zero_range(p, o, old_size, new_size.min(old_cap), trace)?;
        }
        let prealloc = {
            let meta = self.object_mut(p, o)?;
            meta.attrs.size = new_size;
            meta.attrs.data_modify_time = now;
            meta.attrs.preallocated
        };
        if new_size < old_size {
            // Free whole blocks beyond max(new_size, preallocated).
            let keep_bytes = new_size.max(prealloc);
            let keep_blocks = keep_bytes.div_ceil(bs) as usize;
            let freed: Vec<u64> = {
                let meta = self.object_mut(p, o)?;
                if meta.blocks.len() > keep_blocks {
                    meta.blocks.split_off(keep_blocks)
                } else {
                    Vec::new()
                }
            };
            let nfreed = freed.len() as u64;
            for b in freed {
                self.release_block(b);
            }
            let part = self.partition_mut(p)?;
            part.used -= nfreed * bs;
        }
        self.wal_log(
            &WalRecord::Resize {
                p,
                o,
                new_size,
                now,
            },
            trace,
        )?;
        Ok(())
    }

    /// Construct a copy-on-write version of the object: a new object
    /// sharing all data blocks, which subsequent writes to either copy
    /// un-share block by block (§4.1: "construct a copy-on-write object
    /// version").
    ///
    /// # Errors
    ///
    /// Lookup failures and [`StoreError::NoSpace`] (quota is charged for
    /// the snapshot's logical capacity).
    pub fn snapshot(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<ObjectId, StoreError> {
        let bs = self.block_size as u64;
        let (attrs, blocks) = {
            let part = self.partition(p)?;
            let meta = part.objects.get(&o).ok_or(StoreError::NoSuchObject(o))?;
            (meta.attrs.clone(), meta.blocks.clone())
        };
        let part = self.partition(p)?;
        let charge = blocks.len() as u64 * bs;
        if part.used + charge > part.quota {
            return Err(StoreError::NoSpace);
        }
        for &b in &blocks {
            *self.refcounts.entry(b).or_insert(1) += 1;
        }
        let part = self.partition_mut(p)?;
        part.used += charge;
        let id = ObjectId(part.next_object);
        part.next_object += 1;
        let mut snap_attrs = attrs;
        snap_attrs.create_time = now;
        snap_attrs.attr_modify_time = now;
        snap_attrs.version = Version(0);
        part.objects.insert(
            id,
            ObjectMeta {
                attrs: snap_attrs,
                blocks,
            },
        );
        self.wal_log(&WalRecord::Snapshot { p, o, id, now }, trace)?;
        Ok(id)
    }

    /// All object ids in a partition, sorted ("a complete list of
    /// allocated object names", §4.1).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchPartition`].
    pub fn list_objects(&self, p: PartitionId) -> Result<Vec<ObjectId>, StoreError> {
        let part = self.partition(p)?;
        let mut ids: Vec<ObjectId> = part.objects.keys().copied().collect();
        ids.sort();
        Ok(ids)
    }

    /// Flush all write-behind data to the device.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn flush(&mut self, trace: &mut IoTrace) -> Result<(), StoreError> {
        self.cache.flush(trace)?;
        Ok(())
    }

    // ----- write-ahead log replay -------------------------------------

    /// Re-apply one logged operation during recovery. Replay is
    /// idempotent: operations whose effect is already present (object
    /// exists, partition gone, ...) are skipped, and absolute operations
    /// (write, setattr, resize) converge on re-application — so a log
    /// prefix replayed any number of times lands on the same state.
    ///
    /// # Errors
    ///
    /// Device and internal errors propagate; state-mismatch errors are
    /// the skips described above, not failures.
    pub(crate) fn apply_wal(
        &mut self,
        rec: WalRecord,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        let benign = |r: Result<(), StoreError>| match r {
            Err(
                StoreError::NoSuchPartition(_)
                | StoreError::NoSuchObject(_)
                | StoreError::PartitionExists(_)
                | StoreError::PartitionNotEmpty(_)
                | StoreError::QuotaBelowUsage { .. },
            ) => Ok(()),
            other => other,
        };
        match rec {
            WalRecord::CreatePartition { p, quota } => benign(self.create_partition(p, quota)),
            WalRecord::ResizePartition { p, quota } => benign(self.resize_partition(p, quota)),
            WalRecord::RemovePartition { p } => benign(self.remove_partition(p)),
            WalRecord::Create {
                p,
                id,
                preallocate,
                cluster_with,
                now,
            } => self.apply_create(p, id, preallocate, cluster_with, now, trace),
            WalRecord::Remove { p, o } => benign(self.remove_object(p, o, trace)),
            WalRecord::SetAttr {
                p,
                o,
                mask,
                fs_specific,
                preallocated,
                cluster_with,
                now,
            } => benign(self.set_attr(
                p,
                o,
                mask,
                &fs_specific,
                preallocated,
                cluster_with,
                now,
                trace,
            )),
            WalRecord::Write {
                p,
                o,
                offset,
                data,
                now,
            } => benign(self.write(p, o, offset, &data, now, trace).map(|_| ())),
            WalRecord::Resize {
                p,
                o,
                new_size,
                now,
            } => benign(self.resize(p, o, new_size, now, trace)),
            WalRecord::Snapshot { p, o, id, now } => self.apply_snapshot(p, o, id, now),
        }
    }

    /// Replay-side `create_object` with the logged (drive-assigned) id.
    fn apply_create(
        &mut self,
        p: PartitionId,
        id: ObjectId,
        preallocate: u64,
        cluster_with: Option<ObjectId>,
        now: u64,
        trace: &mut IoTrace,
    ) -> Result<(), StoreError> {
        let bs = self.block_size as u64;
        let Some(part) = self.partitions.get(&p) else {
            return Ok(()); // partition later removed: this create is moot
        };
        if !part.objects.contains_key(&id) {
            let nblocks = preallocate.div_ceil(bs);
            let hint = cluster_with.and_then(|c| {
                self.partitions
                    .get(&p)
                    .and_then(|part| part.objects.get(&c))
                    .and_then(|m| m.blocks.first().copied())
            });
            let part = self.partition(p)?;
            if part.used + nblocks * bs > part.quota {
                return Err(StoreError::NoSpace);
            }
            let blocks = self.allocate_blocks(nblocks, hint, trace)?;
            let part = self.partition_mut(p)?;
            let mut attrs = ObjectAttributes::new_at(now);
            attrs.preallocated = preallocate;
            attrs.cluster_with = cluster_with;
            part.used += nblocks * bs;
            part.objects.insert(id, ObjectMeta { attrs, blocks });
        }
        // The name counter must never re-issue a replayed id.
        if let Some(part) = self.partitions.get_mut(&p) {
            part.next_object = part.next_object.max(id.0 + 1);
        }
        Ok(())
    }

    /// Replay-side `snapshot` with the logged (drive-assigned) id.
    fn apply_snapshot(
        &mut self,
        p: PartitionId,
        o: ObjectId,
        id: ObjectId,
        now: u64,
    ) -> Result<(), StoreError> {
        let bs = self.block_size as u64;
        let exists = match self.partitions.get(&p) {
            None => return Ok(()),
            Some(part) => part.objects.contains_key(&id),
        };
        if !exists {
            let src = self
                .partitions
                .get(&p)
                .and_then(|part| part.objects.get(&o));
            let Some(src) = src else {
                return Ok(()); // source later removed before any ack depended on it
            };
            let (attrs, blocks) = (src.attrs.clone(), src.blocks.clone());
            let charge = blocks.len() as u64 * bs;
            let part = self.partition(p)?;
            if part.used + charge > part.quota {
                return Err(StoreError::NoSpace);
            }
            for &b in &blocks {
                *self.refcounts.entry(b).or_insert(1) += 1;
            }
            let part = self.partition_mut(p)?;
            part.used += charge;
            let mut snap_attrs = attrs;
            snap_attrs.create_time = now;
            snap_attrs.attr_modify_time = now;
            snap_attrs.version = Version(0);
            part.objects.insert(
                id,
                ObjectMeta {
                    attrs: snap_attrs,
                    blocks,
                },
            );
        }
        if let Some(part) = self.partitions.get_mut(&p) {
            part.next_object = part.next_object.max(id.0 + 1);
        }
        Ok(())
    }

    fn object_mut(&mut self, p: PartitionId, o: ObjectId) -> Result<&mut ObjectMeta, StoreError> {
        let part = self
            .partitions
            .get_mut(&p)
            .ok_or(StoreError::NoSuchPartition(p))?;
        part.objects.get_mut(&o).ok_or(StoreError::NoSuchObject(o))
    }
}

impl<D: BlockDevice> fmt::Debug for ObjectStore<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectStore")
            .field("partitions", &self.partitions.len())
            .field("free_blocks", &self.allocator.free_blocks())
            .field("block_size", &self.block_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;

    const BS: usize = 8192;
    const P: PartitionId = PartitionId(1);

    fn store() -> ObjectStore<MemDisk> {
        let mut s = ObjectStore::new(MemDisk::new(BS, 4096), 256);
        s.create_partition(P, 64 << 20).unwrap();
        s
    }

    fn t() -> IoTrace {
        IoTrace::default()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 1, &mut t()).unwrap();
        assert!(o.0 >= FIRST_DYNAMIC_OBJECT);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        s.write(P, o, 0, &data, 2, &mut t()).unwrap();
        let back = s.read(P, o, 0, 50_000, 3, &mut t()).unwrap();
        assert_eq!(back, &data[..]);
        let attrs = s.get_attr(P, o, 4).unwrap();
        assert_eq!(attrs.size, 50_000);
        assert_eq!(attrs.data_modify_time, 2);
        assert_eq!(attrs.access_time, 4);
    }

    #[test]
    fn short_read_at_eof() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, b"hello", 0, &mut t()).unwrap();
        assert_eq!(s.read(P, o, 3, 100, 0, &mut t()).unwrap(), b"lo");
        assert!(s.read(P, o, 5, 10, 0, &mut t()).unwrap().is_empty());
        assert!(s.read(P, o, 100, 10, 0, &mut t()).unwrap().is_empty());
        assert!(s.read(P, o, 0, 0, 0, &mut t()).unwrap().is_empty());
    }

    #[test]
    fn unaligned_overwrite() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![1u8; 3 * BS], 0, &mut t()).unwrap();
        // Overwrite a range crossing two block boundaries, unaligned.
        s.write(P, o, 100, &vec![2u8; 2 * BS], 0, &mut t()).unwrap();
        let back = s
            .read(P, o, 0, 3 * BS as u64, 0, &mut t())
            .unwrap()
            .to_vec();
        assert!(back[..100].iter().all(|&b| b == 1));
        assert!(back[100..100 + 2 * BS].iter().all(|&b| b == 2));
        assert!(back[100 + 2 * BS..].iter().all(|&b| b == 1));
        // Size unchanged (overwrite within object).
        assert_eq!(s.get_attr(P, o, 0).unwrap().size, 3 * BS as u64);
    }

    #[test]
    fn write_creates_zero_filled_gap() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 2 * BS as u64 + 17, b"x", 0, &mut t())
            .unwrap();
        let back = s
            .read(P, o, 0, 2 * BS as u64 + 18, 0, &mut t())
            .unwrap()
            .to_vec();
        assert!(back[..2 * BS + 17].iter().all(|&b| b == 0));
        assert_eq!(back[2 * BS + 17], b'x');
    }

    #[test]
    fn quota_enforced_on_write_and_create() {
        let mut s = ObjectStore::new(MemDisk::new(BS, 4096), 64);
        s.create_partition(P, 3 * BS as u64).unwrap();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![0u8; 3 * BS], 0, &mut t()).unwrap();
        let err = s.write(P, o, 3 * BS as u64, b"y", 0, &mut t()).unwrap_err();
        assert_eq!(err, StoreError::NoSpace);
        // Creation with preallocation also respects the quota.
        assert_eq!(
            s.create_object(P, BS as u64, None, 0, &mut t())
                .unwrap_err(),
            StoreError::NoSpace
        );
        let stats = s.partition_stats(P).unwrap();
        assert_eq!(stats.used, 3 * BS as u64);
        assert_eq!(stats.objects, 1);
    }

    #[test]
    fn remove_returns_space() {
        let mut s = store();
        let free0 = s.free_blocks();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![0u8; 10 * BS], 0, &mut t()).unwrap();
        assert_eq!(s.free_blocks(), free0 - 10);
        s.remove_object(P, o, &mut t()).unwrap();
        assert_eq!(s.free_blocks(), free0);
        assert_eq!(s.partition_stats(P).unwrap().used, 0);
        assert!(matches!(
            s.read(P, o, 0, 1, 0, &mut t()),
            Err(StoreError::NoSuchObject(_))
        ));
    }

    #[test]
    fn preallocation_reserves_blocks() {
        let mut s = store();
        let free0 = s.free_blocks();
        let o = s
            .create_object(P, 5 * BS as u64, None, 0, &mut t())
            .unwrap();
        assert_eq!(s.free_blocks(), free0 - 5);
        let attrs = s.get_attr(P, o, 0).unwrap();
        assert_eq!(attrs.preallocated, 5 * BS as u64);
        assert_eq!(attrs.size, 0);
        // Writing within preallocated space allocates nothing new.
        s.write(P, o, 0, &vec![1u8; 5 * BS], 0, &mut t()).unwrap();
        assert_eq!(s.free_blocks(), free0 - 5);
    }

    #[test]
    fn clustering_hint_places_neighbours_near() {
        let mut s = store();
        let a = s
            .create_object(P, 4 * BS as u64, None, 0, &mut t())
            .unwrap();
        // Create unrelated far object to move the allocator cursor.
        let _mid = s
            .create_object(P, 64 * BS as u64, None, 0, &mut t())
            .unwrap();
        let b = s
            .create_object(P, 4 * BS as u64, Some(a), 0, &mut t())
            .unwrap();
        let a_first = {
            let part = s.partition(P).unwrap();
            part.objects[&a].blocks[0]
        };
        let b_first = {
            let part = s.partition(P).unwrap();
            part.objects[&b].blocks[0]
        };
        assert!(
            b_first.abs_diff(a_first) < 80,
            "clustered objects too far: {a_first} vs {b_first}"
        );
    }

    #[test]
    fn snapshot_shares_then_cow_on_write() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![7u8; 2 * BS], 0, &mut t()).unwrap();
        let free_after_write = s.free_blocks();
        let snap = s.snapshot(P, o, 1, &mut t()).unwrap();
        // Snapshot allocates no data blocks.
        assert_eq!(s.free_blocks(), free_after_write);
        // But charges quota.
        assert_eq!(s.partition_stats(P).unwrap().used, 4 * BS as u64);

        // Write to the original: one block un-shared.
        s.write(P, o, 10, &[9u8; 20], 2, &mut t()).unwrap();
        assert_eq!(s.free_blocks(), free_after_write - 1);

        // Snapshot still sees old data; original sees new.
        let old = s
            .read(P, snap, 0, 2 * BS as u64, 3, &mut t())
            .unwrap()
            .to_vec();
        assert!(old.iter().all(|&b| b == 7));
        let new = s.read(P, o, 10, 20, 3, &mut t()).unwrap().to_vec();
        assert!(new.iter().all(|&b| b == 9));
    }

    #[test]
    fn snapshot_chain_and_removal() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![1u8; BS], 0, &mut t()).unwrap();
        let s1 = s.snapshot(P, o, 1, &mut t()).unwrap();
        let s2 = s.snapshot(P, o, 2, &mut t()).unwrap();
        // Remove the original: snapshots keep the data alive.
        s.remove_object(P, o, &mut t()).unwrap();
        assert_eq!(s.read(P, s1, 0, 3, 3, &mut t()).unwrap(), [1u8, 1, 1]);
        s.remove_object(P, s1, &mut t()).unwrap();
        assert_eq!(s.read(P, s2, 0, 3, 3, &mut t()).unwrap(), [1u8, 1, 1]);
        let free_before = s.free_blocks();
        s.remove_object(P, s2, &mut t()).unwrap();
        assert_eq!(s.free_blocks(), free_before + 1, "last ref frees the block");
    }

    #[test]
    fn resize_truncate_and_extend() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![5u8; 4 * BS], 0, &mut t()).unwrap();
        let free_full = s.free_blocks();
        s.resize(P, o, BS as u64 + 1, 1, &mut t()).unwrap();
        assert_eq!(s.get_attr(P, o, 1).unwrap().size, BS as u64 + 1);
        assert_eq!(s.free_blocks(), free_full + 2, "two whole blocks freed");
        // Data in the surviving range intact.
        assert_eq!(s.read(P, o, 0, 4, 1, &mut t()).unwrap(), &[5u8; 4]);
        // Extend again: zero-filled.
        s.resize(P, o, 3 * BS as u64, 2, &mut t()).unwrap();
        let back = s
            .read(P, o, 2 * BS as u64, 10, 2, &mut t())
            .unwrap()
            .to_vec();
        assert!(back.iter().all(|&b| b == 0));
    }

    #[test]
    fn truncate_respects_preallocation() {
        let mut s = store();
        let o = s
            .create_object(P, 3 * BS as u64, None, 0, &mut t())
            .unwrap();
        s.write(P, o, 0, &vec![1u8; 3 * BS], 0, &mut t()).unwrap();
        let free0 = s.free_blocks();
        s.resize(P, o, 0, 1, &mut t()).unwrap();
        // Preallocated capacity is retained.
        assert_eq!(s.free_blocks(), free0);
        assert_eq!(s.get_attr(P, o, 1).unwrap().size, 0);
    }

    #[test]
    fn setattr_updates_selected_fields() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        let mut fs = [0u8; nasd_proto::FS_SPECIFIC_ATTR_LEN];
        fs[0] = 0xaa;
        s.set_attr(
            P,
            o,
            SetAttrMask::fs_specific_only(),
            &fs,
            0,
            None,
            9,
            &mut t(),
        )
        .unwrap();
        let attrs = s.get_attr(P, o, 9).unwrap();
        assert_eq!(attrs.fs_specific[0], 0xaa);
        assert_eq!(attrs.attr_modify_time, 9);
        assert_eq!(attrs.version, Version(0));

        // Version bump revokes capabilities.
        s.set_attr(
            P,
            o,
            SetAttrMask::bump_version_only(),
            &fs,
            0,
            None,
            10,
            &mut t(),
        )
        .unwrap();
        assert_eq!(s.object_version(P, o).unwrap(), Version(1));
    }

    #[test]
    fn list_objects_sorted() {
        let mut s = store();
        let a = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        let b = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        assert_eq!(s.list_objects(P).unwrap(), vec![a, b]);
        s.remove_object(P, a, &mut t()).unwrap();
        assert_eq!(s.list_objects(P).unwrap(), vec![b]);
    }

    #[test]
    fn partition_lifecycle() {
        let mut s = store();
        assert_eq!(
            s.create_partition(P, 1).unwrap_err(),
            StoreError::PartitionExists(P)
        );
        let p2 = PartitionId(2);
        s.create_partition(p2, BS as u64).unwrap();
        let o = s.create_object(p2, BS as u64, None, 0, &mut t()).unwrap();
        assert_eq!(
            s.remove_partition(p2).unwrap_err(),
            StoreError::PartitionNotEmpty(p2)
        );
        // Quota shrink below usage rejected.
        assert!(matches!(
            s.resize_partition(p2, 1),
            Err(StoreError::QuotaBelowUsage { .. })
        ));
        s.resize_partition(p2, 10 * BS as u64).unwrap();
        s.remove_object(p2, o, &mut t()).unwrap();
        s.remove_partition(p2).unwrap();
        assert!(matches!(
            s.partition_stats(p2),
            Err(StoreError::NoSuchPartition(_))
        ));
        assert_eq!(s.partition_ids(), vec![P]);
    }

    #[test]
    fn partitions_isolate_namespaces() {
        let mut s = store();
        let p2 = PartitionId(2);
        s.create_partition(p2, 1 << 20).unwrap();
        let o1 = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o1, 0, b"in p1", 0, &mut t()).unwrap();
        // Same numeric id does not exist in p2.
        assert!(matches!(
            s.read(p2, o1, 0, 5, 0, &mut t()),
            Err(StoreError::NoSuchObject(_))
        ));
    }

    #[test]
    fn flush_persists_through_cache_drop() {
        let mut s = store();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, b"durable", 0, &mut t()).unwrap();
        let mut trace = t();
        s.flush(&mut trace).unwrap();
        assert!(trace.blocks_written() >= 1);
    }

    #[test]
    fn trace_reports_cold_vs_warm() {
        let mut s = ObjectStore::new(MemDisk::new(BS, 4096), 4);
        s.create_partition(P, 64 << 20).unwrap();
        let o = s.create_object(P, 0, None, 0, &mut t()).unwrap();
        s.write(P, o, 0, &vec![3u8; 16 * BS], 0, &mut t()).unwrap();
        s.flush(&mut t()).unwrap();
        // Cache holds 4 blocks; reading from the start is cold.
        let mut cold = t();
        let _ = s.read(P, o, 0, BS as u64, 0, &mut cold).unwrap();
        assert!(!cold.is_warm());
        // Re-reading the same block is warm.
        let mut warm = t();
        let _ = s.read(P, o, 0, BS as u64, 0, &mut warm).unwrap();
        assert!(warm.is_warm());
        assert_eq!(warm.hits, 1);
    }

    #[test]
    fn error_display_and_source() {
        let e = StoreError::NoSuchObject(ObjectId(9));
        assert_eq!(e.to_string(), "no such object obj-9");
        let e = StoreError::Disk(DiskError::OutOfRange {
            block: 1,
            device_blocks: 1,
        });
        assert!(std::error::Error::source(&e).is_some());
    }
}
