//! On-disk layout: geometry, superblock, and persisted allocation bitmap.
//!
//! The device is divided into fixed metadata regions at the head, all
//! positions derived from `(block_size, total_blocks)` alone so a
//! reopened device computes the same geometry it was formatted with (and
//! the superblock records it, so a mismatch is detected rather than
//! misread):
//!
//! ```text
//! blk 0        superblock, primary copy
//! blk 1        superblock, secondary copy
//! bitmap_start allocation bitmap  × 2 copies (even/odd checkpoint epoch)
//! log_start    write-ahead log (see crate::wal)
//! index_start  object index checkpoint × 2 copies (even/odd epoch)
//! data_start   object data blocks
//! ```
//!
//! Every metadata structure is checksummed with [`checksum64`]; the
//! bitmap and index are double-buffered by checkpoint-epoch parity so a
//! crash mid-checkpoint always leaves the previous epoch's copy intact —
//! the superblock write (last, to both copies) is the atomic commit
//! point that switches epochs.

use crate::store::StoreError;
use nasd_disk::BlockDevice;

/// Magic stamped at the head of both superblock copies ("NASDSBLK").
pub const SB_MAGIC: u64 = 0x4e41_5344_5342_4c4b;

/// On-disk layout version this code reads and writes.
pub const LAYOUT_VERSION: u32 = 2;

/// Per-bitmap-block trailer: epoch (8) + block index (8) + crc (8).
const BITMAP_TRAILER: usize = 24;

/// Encoded superblock size: magic + version + block_size + 10 u64 fields
/// + trailing checksum.
const SB_BYTES: usize = 8 + 4 + 4 + 8 * 10 + 8;

/// Checksum used by every on-disk metadata structure: FNV-1a over the
/// bytes, then a splitmix64 finalizer so single-bit flips avalanche
/// across the whole word. Not cryptographic — it detects torn writes and
/// media corruption, not adversaries (capability MACs handle those).
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Computed region geometry for one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Device block size in bytes.
    pub block_size: usize,
    /// Device capacity in blocks.
    pub total_blocks: u64,
    /// First block of the allocation-bitmap area (copy 0).
    pub bitmap_start: u64,
    /// Blocks per bitmap copy (two copies are laid out back to back).
    pub bitmap_blocks: u64,
    /// First block of the write-ahead log.
    pub log_start: u64,
    /// Blocks in the write-ahead log.
    pub log_blocks: u64,
    /// First block of the object-index area (copy 0).
    pub index_start: u64,
    /// Blocks per index copy (two copies are laid out back to back).
    pub index_blocks: u64,
    /// First data block. On a device too small to hold its own metadata
    /// this clamps to `total_blocks`: the store opens with zero data
    /// blocks and every allocation fails cleanly with `NoSpace` instead
    /// of metadata and data overlapping.
    pub data_start: u64,
}

impl Layout {
    /// Derive the geometry for a device of `total_blocks` blocks of
    /// `block_size` bytes.
    #[must_use]
    pub fn compute(block_size: usize, total_blocks: u64) -> Layout {
        let payload = block_size.saturating_sub(BITMAP_TRAILER).max(1) as u64;
        let bits_per_block = payload.saturating_mul(8);
        let bitmap_blocks = total_blocks.div_ceil(bits_per_block).max(1);
        let log_blocks = (total_blocks / 64).clamp(8, 1024);
        let index_blocks = (total_blocks / 64).max(8);
        let bitmap_start = 2u64;
        let log_start = bitmap_start + 2 * bitmap_blocks;
        let index_start = log_start + log_blocks;
        let full_meta = index_start + 2 * index_blocks;
        Layout {
            block_size,
            total_blocks,
            bitmap_start,
            bitmap_blocks,
            log_start,
            log_blocks,
            index_start,
            index_blocks,
            data_start: full_meta.min(total_blocks),
        }
    }

    /// Whether the device is large enough to hold the full metadata area
    /// (if not, the store works as a zero-capacity drive: open/format
    /// succeed, allocations fail with `NoSpace`).
    #[must_use]
    pub fn fits(&self) -> bool {
        let full = self.index_start + 2 * self.index_blocks;
        full <= self.total_blocks && full == self.data_start
    }

    /// Byte capacity of one index copy.
    #[must_use]
    pub(crate) fn index_bytes(&self) -> usize {
        // Saturation is safe here: the result only ever bounds payload
        // lengths from disk, and a saturated bound still rejects them.
        usize::try_from(self.index_blocks)
            .unwrap_or(usize::MAX)
            .saturating_mul(self.block_size)
    }

    /// First block of the bitmap copy for `epoch` (even epochs in copy
    /// 0, odd in copy 1).
    pub(crate) fn bitmap_copy_start(&self, epoch: u64) -> u64 {
        self.bitmap_start + (epoch % 2) * self.bitmap_blocks
    }

    /// First block of the index copy for `epoch`.
    pub(crate) fn index_copy_start(&self, epoch: u64) -> u64 {
        self.index_start + (epoch % 2) * self.index_blocks
    }
}

// ----- superblock -----------------------------------------------------

/// The versioned superblock: geometry plus the pointer to the current
/// metadata checkpoint. Two copies (blocks 0 and 1); readers fall back
/// to the secondary when the primary fails its checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Superblock {
    pub(crate) layout: Layout,
    /// Checkpoint epoch: bumped by one per checkpoint; parity selects
    /// the live bitmap/index copy; WAL records from other epochs are
    /// stale and ignored on replay.
    pub(crate) checkpoint_seq: u64,
    /// Byte length of the index-checkpoint payload.
    pub(crate) checkpoint_len: u64,
    /// [`checksum64`] of the index-checkpoint payload.
    pub(crate) checkpoint_crc: u64,
}

fn read_u64(buf: &[u8], at: usize) -> Result<u64, StoreError> {
    buf.get(at..at + 8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_be_bytes)
        .ok_or(StoreError::Corrupt("superblock shorter than its fields"))
}

fn read_u32(buf: &[u8], at: usize) -> Result<u32, StoreError> {
    buf.get(at..at + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_be_bytes)
        .ok_or(StoreError::Corrupt("superblock shorter than its fields"))
}

impl Superblock {
    /// Encode into one device block (zero-padded past [`SB_BYTES`]).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let l = &self.layout;
        let mut buf = Vec::with_capacity(l.block_size.max(SB_BYTES));
        buf.extend_from_slice(&SB_MAGIC.to_be_bytes());
        buf.extend_from_slice(&LAYOUT_VERSION.to_be_bytes());
        // nasd-lint: allow(cast, "encode direction: block sizes are small powers of two, far below u32::MAX")
        buf.extend_from_slice(&(l.block_size as u32).to_be_bytes());
        for field in [
            l.total_blocks,
            l.bitmap_start,
            l.bitmap_blocks,
            l.log_start,
            l.log_blocks,
            l.index_start,
            l.index_blocks,
            self.checkpoint_seq,
            self.checkpoint_len,
            self.checkpoint_crc,
        ] {
            buf.extend_from_slice(&field.to_be_bytes());
        }
        let crc = checksum64(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        buf.resize(l.block_size.max(SB_BYTES), 0);
        buf
    }

    /// Decode one superblock copy. `Ok(None)` means "no magic here"
    /// (never formatted); `Err(Corrupt)` means the magic is present but
    /// the copy fails its checksum or carries an unknown version.
    pub(crate) fn decode(buf: &[u8]) -> Result<Option<Superblock>, StoreError> {
        match read_u64(buf, 0) {
            Ok(m) if m == SB_MAGIC => {}
            _ => return Ok(None),
        }
        let body = buf
            .get(..SB_BYTES - 8)
            .ok_or(StoreError::Corrupt("superblock shorter than its fields"))?;
        let stored = read_u64(buf, SB_BYTES - 8)?;
        if checksum64(body) != stored {
            return Err(StoreError::Corrupt("superblock checksum mismatch"));
        }
        let version = read_u32(buf, 8)?;
        if version != LAYOUT_VERSION {
            return Err(StoreError::Corrupt("unknown layout version"));
        }
        let block_size = usize::try_from(read_u32(buf, 12)?)
            .map_err(|_| StoreError::Corrupt("superblock block size exceeds address space"))?;
        let mut fields = [0u64; 10];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = read_u64(buf, 16 + i * 8)?;
        }
        let [total_blocks, bitmap_start, bitmap_blocks, log_start, log_blocks, index_start, index_blocks, checkpoint_seq, checkpoint_len, checkpoint_crc] =
            fields;
        // Hostile field values must not wrap: a saturated `full` simply
        // clamps data_start to the device end (zero data capacity).
        let full = index_start.saturating_add(index_blocks.saturating_mul(2));
        Ok(Some(Superblock {
            layout: Layout {
                block_size,
                total_blocks,
                bitmap_start,
                bitmap_blocks,
                log_start,
                log_blocks,
                index_start,
                index_blocks,
                data_start: full.min(total_blocks),
            },
            checkpoint_seq,
            checkpoint_len,
            checkpoint_crc,
        }))
    }

    /// Write both superblock copies (primary then secondary).
    pub(crate) fn store<D: BlockDevice>(&self, device: &mut D) -> Result<(), StoreError> {
        let buf = self.encode();
        device.write_block(0, &buf)?;
        device.write_block(1, &buf)?;
        Ok(())
    }

    /// Load the superblock, preferring the primary copy and falling back
    /// to the secondary. The geometry must match what this code computes
    /// for the device.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFormatted`] when neither copy carries the magic,
    /// or when only one carries a magic and it fails its checksum — that
    /// is a device whose *first* format was cut by a power failure (every
    /// completed checkpoint writes both copies), so no committed state
    /// ever existed. [`StoreError::Corrupt`] when both copies carry the
    /// magic but neither passes its checksum, or the geometry disagrees
    /// with the device.
    pub(crate) fn load<D: BlockDevice>(device: &D) -> Result<Superblock, StoreError> {
        let bs = device.block_size();
        let mut buf = vec![0u8; bs];
        let mut bad_magic = 0u32;
        let mut found: Option<Superblock> = None;
        for blk in [0u64, 1] {
            if device.read_block(blk, &mut buf).is_err() {
                continue;
            }
            match Superblock::decode(&buf) {
                Ok(Some(sb)) => {
                    found = Some(sb);
                    break;
                }
                Ok(None) => {}
                Err(_) => bad_magic += 1,
            }
        }
        let sb = match found {
            Some(sb) => sb,
            None if bad_magic >= 2 => {
                return Err(StoreError::Corrupt("both superblock copies unreadable"))
            }
            // Zero or one (torn, mid-first-format) magic: never committed.
            None => return Err(StoreError::NotFormatted),
        };
        let expect = Layout::compute(bs, device.num_blocks());
        if sb.layout != expect {
            return Err(StoreError::Corrupt("superblock geometry mismatch"));
        }
        Ok(sb)
    }
}

// ----- allocation bitmap ---------------------------------------------

/// Set bit `b` in a bit array.
pub(crate) fn bit_set(bits: &mut [u8], b: u64) {
    // try_from (not a narrowing cast): a block index past the address
    // space must fall outside the bitmap, not alias a smaller bit.
    if let Some(byte) = usize::try_from(b / 8).ok().and_then(|i| bits.get_mut(i)) {
        *byte |= 1u8 << (b % 8);
    }
}

/// Read bit `b` of a bit array.
#[cfg(test)]
#[must_use]
pub(crate) fn bit_get(bits: &[u8], b: u64) -> bool {
    bits.get((b / 8) as usize)
        .is_some_and(|byte| byte & (1u8 << (b % 8)) != 0)
}

/// Write the allocation bitmap for `epoch` into that epoch's copy. Each
/// block carries `(epoch, block index, crc)` in its trailer so a reader
/// can tell this epoch's bits from a stale or torn copy.
pub(crate) fn write_bitmap<D: BlockDevice>(
    device: &mut D,
    layout: &Layout,
    epoch: u64,
    bits: &[u8],
) -> Result<(), StoreError> {
    let bs = layout.block_size;
    let payload = bs.saturating_sub(BITMAP_TRAILER).max(1);
    let base = layout.bitmap_copy_start(epoch);
    let mut block = vec![0u8; bs];
    for i in 0..layout.bitmap_blocks {
        block.iter_mut().for_each(|b| *b = 0);
        let lo = usize::try_from(i)
            .ok()
            .and_then(|i| i.checked_mul(payload))
            .ok_or(StoreError::Internal("bitmap extent exceeds address space"))?;
        if lo < bits.len() {
            let hi = lo.saturating_add(payload).min(bits.len());
            let src = bits
                .get(lo..hi)
                .ok_or(StoreError::Internal("bitmap slice out of range"))?;
            block
                .get_mut(..src.len())
                .ok_or(StoreError::Internal("bitmap block shorter than payload"))?
                .copy_from_slice(src);
        }
        let mut crc_input = Vec::with_capacity(payload.saturating_add(16));
        crc_input.extend_from_slice(block.get(..payload).unwrap_or(&block));
        crc_input.extend_from_slice(&epoch.to_be_bytes());
        crc_input.extend_from_slice(&i.to_be_bytes());
        let crc = checksum64(&crc_input);
        let trailer = block
            .get_mut(payload..)
            .ok_or(StoreError::Internal("bitmap block shorter than trailer"))?;
        let fields: Vec<u8> = epoch
            .to_be_bytes()
            .into_iter()
            .chain(i.to_be_bytes())
            .chain(crc.to_be_bytes())
            .collect();
        trailer
            .get_mut(..fields.len())
            .ok_or(StoreError::Internal("bitmap trailer shorter than fields"))?
            .copy_from_slice(&fields);
        device.write_block(base + i, &block)?;
    }
    Ok(())
}

/// Read and verify the allocation bitmap of `epoch` from that epoch's
/// copy; every block must carry the expected epoch and index and pass
/// its checksum.
pub(crate) fn read_bitmap<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    epoch: u64,
) -> Result<Vec<u8>, StoreError> {
    let bs = layout.block_size;
    let payload = bs.saturating_sub(BITMAP_TRAILER).max(1);
    let base = layout.bitmap_copy_start(epoch);
    let nbytes = usize::try_from(layout.total_blocks.div_ceil(8))
        .map_err(|_| StoreError::Corrupt("bitmap larger than the address space"))?;
    let mut bits = Vec::with_capacity(nbytes);
    let mut block = vec![0u8; bs];
    for i in 0..layout.bitmap_blocks {
        device.read_block(base + i, &mut block)?;
        let got_epoch = read_u64(&block, payload)
            .map_err(|_| StoreError::Corrupt("bitmap block shorter than trailer"))?;
        let got_index = read_u64(&block, payload.saturating_add(8))
            .map_err(|_| StoreError::Corrupt("bitmap block shorter than trailer"))?;
        let got_crc = read_u64(&block, payload.saturating_add(16))
            .map_err(|_| StoreError::Corrupt("bitmap block shorter than trailer"))?;
        let mut crc_input = Vec::with_capacity(payload.saturating_add(16));
        crc_input.extend_from_slice(block.get(..payload).unwrap_or(&block));
        crc_input.extend_from_slice(&epoch.to_be_bytes());
        crc_input.extend_from_slice(&i.to_be_bytes());
        if got_epoch != epoch || got_index != i || checksum64(&crc_input) != got_crc {
            return Err(StoreError::Corrupt("bitmap block checksum mismatch"));
        }
        let take = payload.min(nbytes - bits.len());
        bits.extend_from_slice(block.get(..take).unwrap_or(&[]));
        if bits.len() >= nbytes {
            break;
        }
    }
    bits.resize(nbytes, 0);
    Ok(bits)
}

// ----- raw block regions ---------------------------------------------

/// Write `payload` into consecutive blocks starting at `start`, padding
/// the tail block with zeros.
pub(crate) fn write_region<D: BlockDevice>(
    device: &mut D,
    start: u64,
    capacity_blocks: u64,
    block_size: usize,
    payload: &[u8],
) -> Result<(), StoreError> {
    if payload.len() as u64 > capacity_blocks.saturating_mul(block_size as u64) {
        return Err(StoreError::NoSpace);
    }
    let mut block = vec![0u8; block_size];
    for (i, chunk) in payload.chunks(block_size).enumerate() {
        if chunk.len() == block_size {
            device.write_block(start + i as u64, chunk)?;
        } else {
            block.iter_mut().for_each(|b| *b = 0);
            block
                .get_mut(..chunk.len())
                .ok_or(StoreError::Internal("region chunk longer than block"))?
                .copy_from_slice(chunk);
            device.write_block(start + i as u64, &block)?;
        }
    }
    Ok(())
}

/// Read `len` bytes from consecutive blocks starting at `start`.
pub(crate) fn read_region<D: BlockDevice>(
    device: &D,
    start: u64,
    block_size: usize,
    len: usize,
) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(len);
    let mut block = vec![0u8; block_size];
    let nblocks = (len as u64).div_ceil(block_size as u64);
    for i in 0..nblocks {
        device.read_block(start + i, &mut block)?;
        let take = block_size.min(len - out.len());
        out.extend_from_slice(block.get(..take).unwrap_or(&[]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;

    #[test]
    fn checksum_avalanches_on_single_bit() {
        let a = checksum64(b"hello world");
        let mut flipped = b"hello world".to_vec();
        flipped[3] ^= 1;
        let b = checksum64(&flipped);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor avalanche: {:x}", a ^ b);
        assert_ne!(checksum64(b""), 0);
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        for (bs, total) in [(512usize, 2048u64), (8192, 4096), (512, 1 << 20)] {
            let l = Layout::compute(bs, total);
            assert!(l.fits(), "{bs}x{total} should fit its metadata");
            assert_eq!(l.bitmap_start, 2);
            assert_eq!(l.log_start, l.bitmap_start + 2 * l.bitmap_blocks);
            assert_eq!(l.index_start, l.log_start + l.log_blocks);
            assert_eq!(l.data_start, l.index_start + 2 * l.index_blocks);
            assert!(l.data_start < l.total_blocks, "some data capacity remains");
            // Bitmap covers every device block.
            let bits = (bs - BITMAP_TRAILER) as u64 * 8;
            assert!(l.bitmap_blocks * bits >= total);
        }
    }

    #[test]
    fn tiny_device_clamps_instead_of_overlapping() {
        for total in [0u64, 1, 2, 10, 20] {
            let l = Layout::compute(512, total);
            assert!(l.data_start <= l.total_blocks);
            assert!(!l.fits(), "a {total}-block device cannot hold metadata");
        }
        // First size where a 512-byte-block device gains data capacity.
        let l = Layout::compute(512, 40);
        assert!(l.fits());
        assert!(l.data_start < 40);
    }

    #[test]
    fn superblock_roundtrip_and_fallback() {
        let layout = Layout::compute(512, 2048);
        let sb = Superblock {
            layout,
            checkpoint_seq: 7,
            checkpoint_len: 1234,
            checkpoint_crc: 0xdead_beef,
        };
        let mut d = MemDisk::new(512, 2048);
        sb.store(&mut d).unwrap();
        assert_eq!(Superblock::load(&d).unwrap(), sb);

        // Corrupt the primary: the secondary answers.
        let mut buf = vec![0u8; 512];
        d.read_block(0, &mut buf).unwrap();
        buf[20] ^= 0xff;
        d.write_block(0, &buf).unwrap();
        assert_eq!(Superblock::load(&d).unwrap(), sb);

        // Corrupt both: Corrupt, not NotFormatted.
        d.write_block(1, &buf).unwrap();
        assert!(matches!(Superblock::load(&d), Err(StoreError::Corrupt(_))));

        // Blank device: NotFormatted.
        let blank = MemDisk::new(512, 2048);
        assert!(matches!(
            Superblock::load(&blank),
            Err(StoreError::NotFormatted)
        ));
    }

    #[test]
    fn superblock_geometry_mismatch_is_corrupt() {
        let sb = Superblock {
            layout: Layout::compute(512, 1024),
            checkpoint_seq: 0,
            checkpoint_len: 0,
            checkpoint_crc: 0,
        };
        // Written to a *larger* device than the geometry describes.
        let mut d = MemDisk::new(512, 4096);
        sb.store(&mut d).unwrap();
        assert!(matches!(
            Superblock::load(&d),
            Err(StoreError::Corrupt("superblock geometry mismatch"))
        ));
    }

    #[test]
    fn bitmap_roundtrip_by_epoch_parity() {
        let layout = Layout::compute(512, 2048);
        let mut d = MemDisk::new(512, 2048);
        let nbytes = (layout.total_blocks.div_ceil(8)) as usize;
        let mut even = vec![0u8; nbytes];
        let mut odd = vec![0u8; nbytes];
        bit_set(&mut even, 100);
        bit_set(&mut odd, 200);
        write_bitmap(&mut d, &layout, 4, &even).unwrap();
        write_bitmap(&mut d, &layout, 5, &odd).unwrap();
        let got_even = read_bitmap(&d, &layout, 4).unwrap();
        let got_odd = read_bitmap(&d, &layout, 5).unwrap();
        assert!(bit_get(&got_even, 100) && !bit_get(&got_even, 200));
        assert!(bit_get(&got_odd, 200) && !bit_get(&got_odd, 100));
        // Asking for an epoch whose copy holds another epoch's bits fails.
        assert!(matches!(
            read_bitmap(&d, &layout, 6),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_bitmap_block_is_rejected() {
        let layout = Layout::compute(512, 2048);
        let mut d = MemDisk::new(512, 2048);
        let nbytes = (layout.total_blocks.div_ceil(8)) as usize;
        let bits = vec![0xaa; nbytes];
        write_bitmap(&mut d, &layout, 2, &bits).unwrap();
        let target = layout.bitmap_copy_start(2);
        let mut buf = vec![0u8; 512];
        d.read_block(target, &mut buf).unwrap();
        buf[5] ^= 0x10;
        d.write_block(target, &buf).unwrap();
        assert!(matches!(
            read_bitmap(&d, &layout, 2),
            Err(StoreError::Corrupt("bitmap block checksum mismatch"))
        ));
    }

    #[test]
    fn region_roundtrip_with_padding() {
        let mut d = MemDisk::new(512, 64);
        let payload: Vec<u8> = (0..1300u32).map(|i| (i % 251) as u8).collect();
        write_region(&mut d, 10, 4, 512, &payload).unwrap();
        assert_eq!(read_region(&d, 10, 512, 1300).unwrap(), payload);
        // Oversized payload refused up front.
        assert!(matches!(
            write_region(&mut d, 10, 2, 512, &payload),
            Err(StoreError::NoSpace)
        ));
    }
}
