//! The NASD drive object system — the paper's primary contribution (§4).
//!
//! A NASD drive "presents a flat name space of variable-length objects"
//! with per-object attributes, soft partitions, copy-on-write versions and
//! cryptographic capability enforcement. This crate implements the whole
//! drive:
//!
//! * [`ObjectStore`] — object access, disk space management and the block
//!   cache (the paper's prototype implemented "its own internal object
//!   access, cache, and disk space management modules");
//! * [`DriveSecurity`] — capability verification against the four-level
//!   key hierarchy, with anti-replay protection;
//! * [`NasdDrive`] — the request handler tying the two together behind the
//!   wire protocol of [`nasd_proto`];
//! * [`CostMeter`] — instruction accounting for the request code paths,
//!   calibrated against Table 1 of the paper.
//!
//! # Example
//!
//! ```
//! use nasd_object::NasdDrive;
//! use nasd_proto::{PartitionId, Rights};
//!
//! let mut drive = NasdDrive::builder(42).build();
//! let part = PartitionId(1);
//! drive.admin_create_partition(part, 1 << 20)?;
//!
//! // Mint a capability the way a file manager would, then use it.
//! let obj = drive.admin_create_object(part, 0)?;
//! let cap = drive.issue_capability(part, obj, Rights::READ | Rights::WRITE, 3600);
//! let client = drive.client(cap);
//! client.write(&mut drive, 0, b"hello nasd")?;
//! assert_eq!(client.read(&mut drive, 0, 10)?, b"hello nasd");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod cache;
mod cost;
mod drive;
pub mod layout;
pub mod persist;
mod security;
mod store;
mod wal;

pub use alloc::{Allocator, Extent};
pub use cache::{BlockCache, CacheStats, IoRecord, IoTrace};
pub use cost::{CostMeter, OpCost, OpKind};
pub use drive::{
    ClientHandle, DriveBuilder, DriveConfig, DriveFaultConfig, NasdDrive, ServiceReport,
};
pub use layout::{checksum64, Layout};
pub use security::{DriveSecurity, ReplayWindow};
pub use store::{ObjectStore, PartitionStats, StoreError, FIRST_DYNAMIC_OBJECT};
pub use wal::WalRecord;
