//! Disk space management: an extent-based block allocator.
//!
//! NASD moves "data layout management to the disk" (§2); this allocator is
//! that layout manager. It hands out contiguous *extents* of device blocks
//! using first-fit with a placement hint, so that objects created with a
//! clustering attribute land near their cluster partner and sequential
//! object data stays physically sequential (which the mechanical model in
//! `nasd-disk` rewards).

use std::collections::BTreeMap;
use std::fmt;

/// A contiguous run of device blocks `[start, start + len)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// First block.
    pub start: u64,
    /// Number of blocks (never zero).
    pub len: u64,
}

impl Extent {
    /// Construct an extent.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(start: u64, len: u64) -> Self {
        assert!(len > 0, "extent length must be positive");
        Extent { start, len }
    }

    /// One past the last block.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `block` lies within the extent.
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        block >= self.start && block < self.end()
    }
}

impl fmt::Debug for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Extent[{}..{})", self.start, self.end())
    }
}

/// Extent-based free-space allocator over a fixed pool of blocks.
///
/// Free space is a map from start block to run length, kept coalesced.
///
/// # Example
///
/// ```
/// use nasd_object::Allocator;
/// let mut a = Allocator::new(1000);
/// let e1 = a.allocate(10, None).unwrap();
/// assert_eq!(e1.len, 10);
/// a.free(e1);
/// assert_eq!(a.free_blocks(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    /// start -> len of each free run.
    free: BTreeMap<u64, u64>,
    total: u64,
    free_count: u64,
}

impl Allocator {
    /// An allocator over blocks `0..total`.
    #[must_use]
    pub fn new(total: u64) -> Self {
        let mut free = BTreeMap::new();
        if total > 0 {
            free.insert(0, total);
        }
        Allocator {
            free,
            total,
            free_count: total,
        }
    }

    /// Total blocks managed.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.total
    }

    /// Blocks currently free.
    #[must_use]
    pub fn free_blocks(&self) -> u64 {
        self.free_count
    }

    /// Number of discontiguous free runs (fragmentation diagnostic).
    #[must_use]
    pub fn free_runs(&self) -> usize {
        self.free.len()
    }

    /// Allocate exactly `len` contiguous blocks, preferring space at or
    /// after `hint`. Returns `None` when no contiguous run is large
    /// enough (callers may retry with smaller pieces).
    pub fn allocate(&mut self, len: u64, hint: Option<u64>) -> Option<Extent> {
        if len == 0 || len > self.free_count {
            return None;
        }
        // Pass 0: if a free run contains [hint, hint+len), carve exactly
        // there — clustering wants adjacency, not just "somewhere after".
        if let Some(h) = hint {
            if let Some((&s, &l)) = self.free.range(..=h).next_back() {
                if h >= s && s + l >= h + len {
                    self.free.remove(&s);
                    if h > s {
                        self.free.insert(s, h - s);
                    }
                    if s + l > h + len {
                        self.free.insert(h + len, s + l - (h + len));
                    }
                    self.free_count -= len;
                    return Some(Extent::new(h, len));
                }
            }
        }
        // Pass 1: first fit at or after the hint.
        let start_key = hint.unwrap_or(0);
        let found = self
            .free
            .range(start_key..)
            .find(|(_, &run_len)| run_len >= len)
            .map(|(&s, &l)| (s, l))
            .or_else(|| {
                // Pass 2: anywhere.
                self.free
                    .iter()
                    .find(|(_, &run_len)| run_len >= len)
                    .map(|(&s, &l)| (s, l))
            });
        let (run_start, run_len) = found?;
        self.free.remove(&run_start);
        if run_len > len {
            self.free.insert(run_start + len, run_len - len);
        }
        self.free_count -= len;
        Some(Extent::new(run_start, len))
    }

    /// Allocate up to `len` blocks, possibly as several extents (used when
    /// free space is fragmented). Returns extents totalling exactly `len`,
    /// or `None` if insufficient space (nothing is allocated then).
    pub fn allocate_fragmented(&mut self, len: u64, hint: Option<u64>) -> Option<Vec<Extent>> {
        if len == 0 {
            return Some(Vec::new());
        }
        if len > self.free_count {
            return None;
        }
        let mut remaining = len;
        let mut out = Vec::new();
        while remaining > 0 {
            // Largest piece we can get contiguously, bounded by remaining.
            let grabbed = self.allocate(remaining, hint).or_else(|| {
                // Take the largest free run instead.
                let (&s, &l) = self.free.iter().max_by_key(|(_, &l)| l)?;
                self.free.remove(&s);
                self.free_count -= l;
                Some(Extent::new(s, l))
            })?;
            remaining -= grabbed.len.min(remaining);
            out.push(grabbed);
        }
        Some(out)
    }

    /// Return an extent to the free pool, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the extent overlaps free space or exceeds the pool (a
    /// double free or corruption).
    pub fn free(&mut self, extent: Extent) {
        assert!(
            extent.end() <= self.total,
            "free of {extent:?} beyond pool of {} blocks",
            self.total
        );
        // Find neighbours.
        let prev = self
            .free
            .range(..extent.start)
            .next_back()
            .map(|(&s, &l)| (s, l));
        let next = self
            .free
            .range(extent.start..)
            .next()
            .map(|(&s, &l)| (s, l));

        if let Some((ps, pl)) = prev {
            assert!(
                ps + pl <= extent.start,
                "double free: {extent:?} overlaps free run"
            );
        }
        if let Some((ns, _)) = next {
            assert!(
                extent.end() <= ns,
                "double free: {extent:?} overlaps free run"
            );
        }

        let mut start = extent.start;
        let mut len = extent.len;
        // Coalesce with the previous run.
        if let Some((ps, pl)) = prev {
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        // Coalesce with the next run.
        if let Some((ns, nl)) = next {
            if start + len == ns {
                self.free.remove(&ns);
                len += nl;
            }
        }
        self.free.insert(start, len);
        self.free_count += extent.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut a = Allocator::new(100);
        let e = a.allocate(30, None).unwrap();
        assert_eq!(a.free_blocks(), 70);
        a.free(e);
        assert_eq!(a.free_blocks(), 100);
        assert_eq!(a.free_runs(), 1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Allocator::new(10);
        assert!(a.allocate(11, None).is_none());
        let _ = a.allocate(10, None).unwrap();
        assert!(a.allocate(1, None).is_none());
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn hint_places_nearby() {
        let mut a = Allocator::new(1000);
        let _head = a.allocate(10, None).unwrap();
        let hinted = a.allocate(10, Some(500)).unwrap();
        assert!(hinted.start >= 500, "hint ignored: {hinted:?}");
    }

    #[test]
    fn hint_past_all_space_falls_back() {
        let mut a = Allocator::new(100);
        let e = a.allocate(10, Some(99_999)).unwrap();
        assert_eq!(e.start, 0);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = Allocator::new(100);
        let e1 = a.allocate(10, None).unwrap();
        let e2 = a.allocate(10, None).unwrap();
        let e3 = a.allocate(10, None).unwrap();
        a.free(e1);
        a.free(e3);
        // [0,10) free; [20,30) coalesced with the tail [30,100).
        assert_eq!(a.free_runs(), 2);
        a.free(e2);
        assert_eq!(a.free_runs(), 1, "full coalesce after middle freed");
        assert_eq!(a.free_blocks(), 100);
    }

    #[test]
    fn fragmented_allocation_spans_runs() {
        let mut a = Allocator::new(100);
        let keep: Vec<Extent> = (0..5).map(|_| a.allocate(10, None).unwrap()).collect();
        let _tail = a.allocate(50, None).unwrap(); // pool exhausted
                                                   // Free alternating runs: 0..10, 20..30, 40..50 free (30 blocks, fragmented)
        a.free(keep[0]);
        a.free(keep[2]);
        a.free(keep[4]);
        assert!(a.allocate(25, None).is_none(), "no contiguous 25-run");
        let pieces = a.allocate_fragmented(25, None).unwrap();
        let total: u64 = pieces.iter().map(|e| e.len).sum();
        assert_eq!(total, 25);
        assert!(pieces.len() >= 3);
        assert_eq!(a.free_blocks(), 5);
    }

    #[test]
    fn fragmented_insufficient_space() {
        let mut a = Allocator::new(10);
        let _ = a.allocate(8, None).unwrap();
        assert!(a.allocate_fragmented(3, None).is_none());
        assert_eq!(a.free_blocks(), 2, "failed allocation must not leak");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Allocator::new(100);
        let e = a.allocate(10, None).unwrap();
        a.free(e);
        a.free(e);
    }

    #[test]
    fn extent_api() {
        let e = Extent::new(5, 3);
        assert_eq!(e.end(), 8);
        assert!(e.contains(5) && e.contains(7) && !e.contains(8));
        assert_eq!(format!("{e:?}"), "Extent[5..8)");
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_extent_panics() {
        let _ = Extent::new(0, 0);
    }

    #[test]
    fn zero_allocation_is_none() {
        let mut a = Allocator::new(10);
        assert!(a.allocate(0, None).is_none());
        assert_eq!(a.allocate_fragmented(0, None).unwrap().len(), 0);
    }
}
