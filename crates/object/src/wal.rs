//! The checksummed write-ahead log.
//!
//! Every mutating operation appends its *intent* as a [`WalRecord`]
//! before the drive acknowledges it; on reopen, [`ObjectStore::open`]
//! replays the log idempotently on top of the last checkpoint, so a
//! crash at any instant loses nothing that was acked.
//!
//! Record frame, appended as a byte stream over the log area:
//!
//! ```text
//! u32 body_len | u64 epoch | u64 lsn | body (tag u8 + fields) | u64 crc
//! ```
//!
//! `crc` is [`checksum64`] over `epoch..body`. `epoch` is the checkpoint
//! sequence number at append time: a checkpoint logically truncates the
//! log *without touching it* — stale records from earlier epochs simply
//! fail the epoch check on replay. `lsn` starts at 0 after each
//! checkpoint and must increment by one record; any gap, checksum
//! mismatch, short frame or garbled body terminates replay cleanly at
//! the last complete record (torn tails are expected, not errors).
//!
//! Appends accumulate in memory and reach the device on
//! [`Wal::commit`] — group commit: one batch of sequential block writes
//! covers every record logged since the last commit, and a partial tail
//! block is rewritten from an in-memory image rather than
//! read-modified.
//!
//! [`ObjectStore::open`]: crate::store::ObjectStore::open

use crate::layout::{checksum64, Layout};
use crate::store::StoreError;
use nasd_disk::BlockDevice;
use nasd_proto::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use nasd_proto::{ObjectId, PartitionId, SetAttrMask, FS_SPECIFIC_ATTR_LEN};

/// Frame overhead around a record body: len (4) + epoch (8) + lsn (8)
/// + crc (8).
const FRAME_OVERHEAD: usize = 28;

/// One logged mutation. Carries everything needed to re-apply the
/// operation absolutely (assigned ids included), so replaying a record
/// twice is a no-op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// `create_partition`.
    CreatePartition {
        /// Partition id.
        p: PartitionId,
        /// Byte quota.
        quota: u64,
    },
    /// `resize_partition`.
    ResizePartition {
        /// Partition id.
        p: PartitionId,
        /// New byte quota.
        quota: u64,
    },
    /// `remove_partition`.
    RemovePartition {
        /// Partition id.
        p: PartitionId,
    },
    /// `create_object`, with the id the drive assigned.
    Create {
        /// Partition id.
        p: PartitionId,
        /// Assigned object id (replay must produce the same name).
        id: ObjectId,
        /// Preallocated bytes.
        preallocate: u64,
        /// Clustering hint.
        cluster_with: Option<ObjectId>,
        /// Operation timestamp.
        now: u64,
    },
    /// `remove_object`.
    Remove {
        /// Partition id.
        p: PartitionId,
        /// Object id.
        o: ObjectId,
    },
    /// `set_attr`.
    SetAttr {
        /// Partition id.
        p: PartitionId,
        /// Object id.
        o: ObjectId,
        /// Field-selection mask.
        mask: SetAttrMask,
        /// Opaque filesystem attribute block.
        fs_specific: Box<[u8; FS_SPECIFIC_ATTR_LEN]>,
        /// Preallocation target in bytes.
        preallocated: u64,
        /// Clustering hint.
        cluster_with: Option<ObjectId>,
        /// Operation timestamp.
        now: u64,
    },
    /// `write` — the record owns the payload, so replay needs no other
    /// source of the bytes.
    Write {
        /// Partition id.
        p: PartitionId,
        /// Object id.
        o: ObjectId,
        /// Byte offset.
        offset: u64,
        /// Payload.
        data: Vec<u8>,
        /// Operation timestamp.
        now: u64,
    },
    /// `resize`.
    Resize {
        /// Partition id.
        p: PartitionId,
        /// Object id.
        o: ObjectId,
        /// New object size in bytes.
        new_size: u64,
        /// Operation timestamp.
        now: u64,
    },
    /// `snapshot`, with the id the drive assigned to the version.
    Snapshot {
        /// Partition id.
        p: PartitionId,
        /// Source object id.
        o: ObjectId,
        /// Assigned snapshot object id.
        id: ObjectId,
        /// Operation timestamp.
        now: u64,
    },
}

const TAG_CREATE_PARTITION: u8 = 1;
const TAG_RESIZE_PARTITION: u8 = 2;
const TAG_REMOVE_PARTITION: u8 = 3;
const TAG_CREATE: u8 = 4;
const TAG_REMOVE: u8 = 5;
const TAG_SET_ATTR: u8 = 6;
const TAG_WRITE: u8 = 7;
const TAG_RESIZE: u8 = 8;
const TAG_SNAPSHOT: u8 = 9;

fn encode_opt_id(w: &mut WireWriter, id: Option<ObjectId>) {
    match id {
        Some(o) => {
            w.u8(1).u64(o.0);
        }
        None => {
            w.u8(0);
        }
    }
}

fn decode_opt_id(r: &mut WireReader<'_>) -> Result<Option<ObjectId>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(ObjectId(r.u64()?))),
        b => Err(DecodeError::BadTag {
            context: "optional object id flag",
            value: u64::from(b),
        }),
    }
}

impl WalRecord {
    /// Encode the record body (tag + fields).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            WalRecord::CreatePartition { p, quota } => {
                w.u8(TAG_CREATE_PARTITION).u16(p.0).u64(*quota);
            }
            WalRecord::ResizePartition { p, quota } => {
                w.u8(TAG_RESIZE_PARTITION).u16(p.0).u64(*quota);
            }
            WalRecord::RemovePartition { p } => {
                w.u8(TAG_REMOVE_PARTITION).u16(p.0);
            }
            WalRecord::Create {
                p,
                id,
                preallocate,
                cluster_with,
                now,
            } => {
                w.u8(TAG_CREATE).u16(p.0).u64(id.0).u64(*preallocate);
                encode_opt_id(&mut w, *cluster_with);
                w.u64(*now);
            }
            WalRecord::Remove { p, o } => {
                w.u8(TAG_REMOVE).u16(p.0).u64(o.0);
            }
            WalRecord::SetAttr {
                p,
                o,
                mask,
                fs_specific,
                preallocated,
                cluster_with,
                now,
            } => {
                w.u8(TAG_SET_ATTR).u16(p.0).u64(o.0);
                mask.encode(&mut w);
                w.raw(fs_specific.as_slice());
                w.u64(*preallocated);
                encode_opt_id(&mut w, *cluster_with);
                w.u64(*now);
            }
            WalRecord::Write {
                p,
                o,
                offset,
                data,
                now,
            } => {
                w.u8(TAG_WRITE).u16(p.0).u64(o.0).u64(*offset);
                w.bytes(data);
                w.u64(*now);
            }
            WalRecord::Resize {
                p,
                o,
                new_size,
                now,
            } => {
                w.u8(TAG_RESIZE).u16(p.0).u64(o.0).u64(*new_size).u64(*now);
            }
            WalRecord::Snapshot { p, o, id, now } => {
                w.u8(TAG_SNAPSHOT).u16(p.0).u64(o.0).u64(id.0).u64(*now);
            }
        }
        w.into_vec()
    }

    /// Decode one record body.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, unknown tag, or trailing bytes —
    /// replay treats any of these as the end of the valid log.
    pub fn decode(body: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut r = WireReader::new(body);
        let tag = r.u8()?;
        let rec = match tag {
            TAG_CREATE_PARTITION => WalRecord::CreatePartition {
                p: PartitionId(r.u16()?),
                quota: r.u64()?,
            },
            TAG_RESIZE_PARTITION => WalRecord::ResizePartition {
                p: PartitionId(r.u16()?),
                quota: r.u64()?,
            },
            TAG_REMOVE_PARTITION => WalRecord::RemovePartition {
                p: PartitionId(r.u16()?),
            },
            TAG_CREATE => WalRecord::Create {
                p: PartitionId(r.u16()?),
                id: ObjectId(r.u64()?),
                preallocate: r.u64()?,
                cluster_with: decode_opt_id(&mut r)?,
                now: r.u64()?,
            },
            TAG_REMOVE => WalRecord::Remove {
                p: PartitionId(r.u16()?),
                o: ObjectId(r.u64()?),
            },
            TAG_SET_ATTR => {
                let p = PartitionId(r.u16()?);
                let o = ObjectId(r.u64()?);
                let mask = SetAttrMask::decode(&mut r)?;
                let raw = r.raw(FS_SPECIFIC_ATTR_LEN)?;
                let fs: [u8; FS_SPECIFIC_ATTR_LEN] =
                    raw.try_into().map_err(|_| DecodeError::Truncated {
                        needed: FS_SPECIFIC_ATTR_LEN,
                        remaining: raw.len(),
                    })?;
                WalRecord::SetAttr {
                    p,
                    o,
                    mask,
                    fs_specific: Box::new(fs),
                    preallocated: r.u64()?,
                    cluster_with: decode_opt_id(&mut r)?,
                    now: r.u64()?,
                }
            }
            TAG_WRITE => WalRecord::Write {
                p: PartitionId(r.u16()?),
                o: ObjectId(r.u64()?),
                offset: r.u64()?,
                // nasd-lint: allow(hot-path-copy, "WAL durability copy: the replayed record must own its payload")
                data: r.bytes()?.to_vec(),
                now: r.u64()?,
            },
            TAG_RESIZE => WalRecord::Resize {
                p: PartitionId(r.u16()?),
                o: ObjectId(r.u64()?),
                new_size: r.u64()?,
                now: r.u64()?,
            },
            TAG_SNAPSHOT => WalRecord::Snapshot {
                p: PartitionId(r.u16()?),
                o: ObjectId(r.u64()?),
                id: ObjectId(r.u64()?),
                now: r.u64()?,
            },
            t => {
                return Err(DecodeError::BadTag {
                    context: "wal record tag",
                    value: u64::from(t),
                })
            }
        };
        r.finish()?;
        Ok(rec)
    }
}

/// Frame a record for the log: length-prefixed, epoch- and LSN-stamped,
/// checksummed.
fn frame(rec: &WalRecord, epoch: u64, lsn: u64) -> Vec<u8> {
    let body = rec.encode();
    let mut inner = WireWriter::with_capacity(body.len().saturating_add(16));
    inner.u64(epoch).u64(lsn).raw(&body);
    let crc = checksum64(inner.as_slice());
    let mut w = WireWriter::with_capacity(body.len().saturating_add(FRAME_OVERHEAD));
    // nasd-lint: allow(cast, "encode direction: record bodies are fixed-layout, far below u32::MAX")
    w.u32(body.len() as u32).raw(inner.as_slice()).u64(crc);
    w.into_vec()
}

/// The in-memory side of the write-ahead log.
pub(crate) struct Wal {
    /// When false (during replay, or for a non-durable drive) appends
    /// are dropped: replayed operations must not re-log themselves.
    pub(crate) enabled: bool,
    epoch: u64,
    next_lsn: u64,
    /// Bytes of the log area holding committed records.
    durable_bytes: u64,
    /// In-memory image of the partial tail block (the first
    /// `durable_bytes % block_size` bytes are valid), so a commit
    /// rewrites it without a device read.
    tail: Vec<u8>,
    /// Frames appended since the last commit (group commit buffer).
    pending: Vec<u8>,
    log_start: u64,
    log_blocks: u64,
    block_size: usize,
}

impl Wal {
    /// A fresh, disabled log positioned at the head of the log area.
    pub(crate) fn new(layout: &Layout) -> Wal {
        Wal {
            enabled: false,
            epoch: 0,
            next_lsn: 0,
            durable_bytes: 0,
            tail: Vec::new(),
            pending: Vec::new(),
            log_start: layout.log_start,
            log_blocks: layout.log_blocks,
            block_size: layout.block_size,
        }
    }

    /// Byte capacity of the log area.
    fn capacity(&self) -> u64 {
        self.log_blocks * self.block_size as u64
    }

    /// Bytes of committed log (for recovery benchmarks and tests).
    pub(crate) fn durable_bytes(&self) -> u64 {
        self.durable_bytes
    }

    /// Logically truncate after a checkpoint: records of older epochs
    /// stay on disk but no longer pass the epoch check.
    pub(crate) fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.next_lsn = 0;
        self.durable_bytes = 0;
        self.tail.clear();
        self.pending.clear();
    }

    /// Append a record to the group-commit buffer. Returns `false` when
    /// the log area cannot hold it — the caller checkpoints instead
    /// (which logically empties the log).
    pub(crate) fn append(&mut self, rec: &WalRecord) -> bool {
        if !self.enabled {
            return true;
        }
        let f = frame(rec, self.epoch, self.next_lsn);
        let used = self.durable_bytes.saturating_add(self.pending.len() as u64);
        if used.saturating_add(f.len() as u64) > self.capacity() {
            return false;
        }
        self.next_lsn += 1;
        self.pending.extend(f);
        true
    }

    /// Whether uncommitted records are buffered.
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Write every pending record to the device — straight to the
    /// media, bypassing the write-behind cache, because the entire point
    /// is that these bytes are durable before the operation is acked.
    pub(crate) fn commit<D: BlockDevice>(&mut self, device: &mut D) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let bs = self.block_size;
        // Stream = partial tail image + new frames, written over the
        // blocks covering [durable_bytes - tail.len(), ...).
        let mut stream = std::mem::take(&mut self.tail);
        stream.extend(self.pending.iter().copied());
        let first_block = self.log_start + self.durable_bytes / bs as u64;
        let mut block = vec![0u8; bs];
        for (i, chunk) in stream.chunks(bs).enumerate() {
            if chunk.len() == bs {
                device.write_block(first_block + i as u64, chunk)?;
            } else {
                block.iter_mut().for_each(|b| *b = 0);
                block
                    .get_mut(..chunk.len())
                    .ok_or(StoreError::Internal("wal chunk longer than block"))?
                    // nasd-lint: allow(hot-path-copy, "log serializer: staging the partial tail frame into a zero-padded sector image")
                    .copy_from_slice(chunk);
                device.write_block(first_block + i as u64, &block)?;
            }
        }
        self.durable_bytes += self.pending.len() as u64;
        let tail_len = stream.len() % bs;
        stream.drain(..stream.len() - tail_len);
        self.tail = stream;
        self.pending.clear();
        Ok(())
    }

    /// Read the log area and replay its valid prefix: records of the
    /// right epoch, consecutive LSNs from 0, intact checksums. The first
    /// violation — torn frame, stale epoch, bad crc, short area —
    /// terminates the scan cleanly (that is where the crash happened).
    ///
    /// Returns the recovered `Wal` (positioned after the last valid
    /// record, disabled) and the records to re-apply, in order.
    pub(crate) fn recover<D: BlockDevice>(
        device: &D,
        layout: &Layout,
        epoch: u64,
    ) -> Result<(Wal, Vec<WalRecord>), StoreError> {
        let bs = layout.block_size;
        let area_bytes = usize::try_from(layout.log_blocks)
            .ok()
            .and_then(|blocks| blocks.checked_mul(bs))
            .ok_or(StoreError::Corrupt(
                "wal log area exceeds the address space",
            ))?;
        let image = crate::layout::read_region(device, layout.log_start, bs, area_bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut lsn = 0u64;
        while let Some(head) = image.get(pos..pos.saturating_add(4)) {
            let Ok(head4) = <[u8; 4]>::try_from(head) else {
                break;
            };
            // A frame length the area cannot hold is a torn or hostile
            // head: stop the valid prefix here instead of letting a
            // narrowing conversion quietly shrink it into plausibility.
            let Ok(body_len) = usize::try_from(u32::from_be_bytes(head4)) else {
                break;
            };
            let Some(frame_len) = body_len.checked_add(FRAME_OVERHEAD) else {
                break;
            };
            let Some(end) = pos.checked_add(frame_len) else {
                break;
            };
            let Some(rest) = image.get(pos.saturating_add(4)..end) else {
                break;
            };
            // `rest` is exactly `body_len + 24` bytes: 16 of epoch/lsn,
            // the body, then the 8-byte crc trailer.
            let (inner, crc_bytes) = rest.split_at(rest.len().saturating_sub(8));
            let Ok(crc8) = <[u8; 8]>::try_from(crc_bytes) else {
                break;
            };
            let stored = u64::from_be_bytes(crc8);
            if checksum64(inner) != stored {
                break;
            }
            let mut r = WireReader::new(inner);
            let (got_epoch, got_lsn) = match (r.u64(), r.u64()) {
                (Ok(e), Ok(l)) => (e, l),
                _ => break,
            };
            if got_epoch != epoch || got_lsn != lsn {
                break;
            }
            let Ok(rec) = WalRecord::decode(r.rest()) else {
                break;
            };
            records.push(rec);
            lsn += 1;
            pos = end;
        }
        let mut wal = Wal::new(layout);
        wal.epoch = epoch;
        wal.next_lsn = lsn;
        wal.durable_bytes = pos as u64;
        let tail_len = pos % bs;
        // nasd-lint: allow(hot-path-copy, "one-shot recovery: staging the partial tail block image")
        wal.tail = image.get(pos - tail_len..pos).unwrap_or(&[]).to_vec();
        Ok((wal, records))
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("enabled", &self.enabled)
            .field("epoch", &self.epoch)
            .field("next_lsn", &self.next_lsn)
            .field("durable_bytes", &self.durable_bytes)
            .field("pending_bytes", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;

    fn sample_records() -> Vec<WalRecord> {
        let p = PartitionId(1);
        let o = ObjectId(0x100);
        vec![
            WalRecord::CreatePartition { p, quota: 1 << 20 },
            WalRecord::Create {
                p,
                id: o,
                preallocate: 4096,
                cluster_with: None,
                now: 10,
            },
            WalRecord::Write {
                p,
                o,
                offset: 7,
                data: (0..300u32).map(|i| (i % 251) as u8).collect(),
                now: 11,
            },
            WalRecord::SetAttr {
                p,
                o,
                mask: SetAttrMask {
                    fs_specific: true,
                    preallocated: false,
                    cluster_with: true,
                    bump_version: true,
                },
                fs_specific: Box::new([0xab; FS_SPECIFIC_ATTR_LEN]),
                preallocated: 0,
                cluster_with: Some(ObjectId(0x101)),
                now: 12,
            },
            WalRecord::Resize {
                p,
                o,
                new_size: 99,
                now: 13,
            },
            WalRecord::Snapshot {
                p,
                o,
                id: ObjectId(0x102),
                now: 14,
            },
            WalRecord::Remove { p, o },
            WalRecord::ResizePartition { p, quota: 2 << 20 },
            WalRecord::RemovePartition { p },
        ]
    }

    #[test]
    fn record_bodies_roundtrip() {
        for rec in sample_records() {
            let body = rec.encode();
            assert_eq!(WalRecord::decode(&body).unwrap(), rec, "{rec:?}");
            // Truncations error rather than panic.
            for cut in 0..body.len() {
                assert!(WalRecord::decode(&body[..cut]).is_err() || cut == body.len());
            }
        }
    }

    #[test]
    fn append_commit_recover_roundtrip() {
        let layout = Layout::compute(512, 2048);
        let mut d = MemDisk::new(512, 2048);
        let mut wal = Wal::new(&layout);
        wal.enabled = true;
        wal.reset(3);
        let recs = sample_records();
        // Two commit groups: durability batches along the way.
        for rec in &recs[..4] {
            assert!(wal.append(rec));
        }
        wal.commit(&mut d).unwrap();
        for rec in &recs[4..] {
            assert!(wal.append(rec));
        }
        wal.commit(&mut d).unwrap();

        let (rewal, replayed) = Wal::recover(&d, &layout, 3).unwrap();
        assert_eq!(replayed, recs);
        assert_eq!(rewal.durable_bytes(), wal.durable_bytes());
        // A different epoch sees an empty log (logical truncation).
        let (_, none) = Wal::recover(&d, &layout, 4).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn recovered_wal_appends_continue_the_stream() {
        let layout = Layout::compute(512, 2048);
        let mut d = MemDisk::new(512, 2048);
        let mut wal = Wal::new(&layout);
        wal.enabled = true;
        wal.reset(1);
        let recs = sample_records();
        assert!(wal.append(&recs[0]));
        wal.commit(&mut d).unwrap();

        let (mut rewal, _) = Wal::recover(&d, &layout, 1).unwrap();
        rewal.enabled = true;
        assert!(rewal.append(&recs[1]));
        rewal.commit(&mut d).unwrap();

        let (_, all) = Wal::recover(&d, &layout, 1).unwrap();
        assert_eq!(all, &recs[..2]);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let layout = Layout::compute(512, 2048);
        let mut d = MemDisk::new(512, 2048);
        let mut wal = Wal::new(&layout);
        wal.enabled = true;
        wal.reset(2);
        let recs = sample_records();
        for rec in &recs {
            assert!(wal.append(rec));
        }
        wal.commit(&mut d).unwrap();

        // Corrupt a byte inside the *last* record's frame.
        let end = wal.durable_bytes() as usize;
        let blk = layout.log_start + (end as u64 - 10) / 512;
        let mut buf = vec![0u8; 512];
        d.read_block(blk, &mut buf).unwrap();
        buf[(end - 10) % 512] ^= 0x40;
        d.write_block(blk, &buf).unwrap();

        let (_, replayed) = Wal::recover(&d, &layout, 2).unwrap();
        assert_eq!(replayed, &recs[..recs.len() - 1], "valid prefix survives");
    }

    #[test]
    fn hostile_frame_length_stops_recovery_cleanly() {
        let layout = Layout::compute(512, 2048);
        let mut d = MemDisk::new(512, 2048);
        let mut wal = Wal::new(&layout);
        wal.enabled = true;
        wal.reset(5);
        let recs = sample_records();
        for rec in &recs[..2] {
            assert!(wal.append(rec));
        }
        wal.commit(&mut d).unwrap();

        // Plant a frame head right after the valid prefix claiming a
        // u32::MAX-byte body. A narrowing conversion would shrink that
        // length back into plausibility and steer the replay cursor;
        // recovery must instead stop cleanly at the valid prefix.
        let end = wal.durable_bytes() as usize;
        let blk = layout.log_start + end as u64 / 512;
        let mut buf = vec![0u8; 512];
        d.read_block(blk, &mut buf).unwrap();
        let off = end % 512;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        d.write_block(blk, &buf).unwrap();

        let (rewal, replayed) = Wal::recover(&d, &layout, 5).unwrap();
        assert_eq!(replayed, recs[..2], "valid prefix survives");
        assert_eq!(rewal.durable_bytes(), wal.durable_bytes());

        // Same planted head at the very start of the log: recovery of an
        // effectively-empty log must also terminate cleanly.
        let mut head_blk = vec![0u8; 512];
        d.read_block(layout.log_start, &mut head_blk).unwrap();
        head_blk[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        d.write_block(layout.log_start, &head_blk).unwrap();
        let (_, none) = Wal::recover(&d, &layout, 5).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn append_refuses_past_capacity() {
        // 8-block log at 512 B/block = 4096 bytes of capacity.
        let layout = Layout::compute(512, 64);
        let mut wal = Wal::new(&layout);
        wal.enabled = true;
        wal.reset(0);
        let rec = WalRecord::Write {
            p: PartitionId(1),
            o: ObjectId(0x100),
            offset: 0,
            data: vec![0u8; 1024],
            now: 0,
        };
        let mut appended = 0;
        while wal.append(&rec) {
            appended += 1;
            assert!(appended < 100, "append never refused");
        }
        assert!(appended >= 3, "several records fit first");
    }

    #[test]
    fn disabled_wal_drops_appends() {
        let layout = Layout::compute(512, 2048);
        let mut wal = Wal::new(&layout);
        assert!(wal.append(&WalRecord::RemovePartition { p: PartitionId(9) }));
        assert!(!wal.has_pending());
    }
}
