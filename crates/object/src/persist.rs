//! Metadata persistence: checkpoint and remount.
//!
//! The paper's prototype kept its object-system metadata in kernel memory;
//! a production drive must survive power cycles. This module serializes
//! the drive's metadata — partitions, object tables (attributes + block
//! maps), and copy-on-write refcounts — into a reserved region at the
//! head of the device, and rebuilds the store (including the free-space
//! allocator, which is *recomputed* from the block maps rather than
//! trusted from disk — a cheap self-check against corruption).
//!
//! Layout of the metadata area (block 0 onward):
//!
//! ```text
//! u64 MAGIC | u64 payload_len | payload bytes...
//! ```
//!
//! The payload is the canonical wire encoding produced by
//! [`nasd_proto::wire`]; block maps are run-length compressed into
//! extents, so a freshly-written multi-gigabyte object costs a few bytes
//! per contiguous run.

use crate::alloc::Allocator;
use crate::cache::{BlockCache, IoTrace};
use crate::store::{ObjectMeta, ObjectStore, Partition, StoreError};
use nasd_disk::BlockDevice;
use nasd_proto::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use nasd_proto::{ObjectAttributes, ObjectId, PartitionId};
use std::collections::HashMap;

/// Magic stamped at the head of a checkpointed device.
pub const META_MAGIC: u64 = 0x4e41_5344_4d45_5441; // "NASDMETA"

/// Blocks reserved for metadata: 1/32 of the device, at least 16 blocks,
/// but never the whole device.
#[must_use]
pub fn meta_blocks(total_blocks: u64) -> u64 {
    if total_blocks == 0 {
        return 0;
    }
    (total_blocks / 32).max(16).min(total_blocks / 2)
}

/// Run-length encode a block list as (start, len) extents.
fn encode_blocks(w: &mut WireWriter, blocks: &[u64]) {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &b in blocks {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == b => *len += 1,
            _ => runs.push((b, 1)),
        }
    }
    w.u32(runs.len() as u32);
    for (start, len) in runs {
        w.u64(start).u64(len);
    }
}

fn decode_blocks(r: &mut WireReader<'_>) -> Result<Vec<u64>, DecodeError> {
    let nruns = r.u32()? as usize;
    let mut blocks = Vec::new();
    for _ in 0..nruns {
        let start = r.u64()?;
        let len = r.u64()?;
        blocks.extend(start..start + len);
    }
    Ok(blocks)
}

/// Big-endian u64 at `at`; a short buffer means the checkpoint frame is
/// truncated, which surfaces as [`StoreError::NotFormatted`].
fn be_u64(buf: &[u8], at: usize) -> Result<u64, StoreError> {
    let bytes = buf
        .get(at..at + 8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .ok_or(StoreError::NotFormatted)?;
    Ok(u64::from_be_bytes(bytes))
}

fn encode_store<D: BlockDevice>(store: &ObjectStore<D>) -> Vec<u8> {
    let mut w = WireWriter::new();
    // Partitions.
    let mut parts: Vec<_> = store.partitions.iter().collect();
    parts.sort_by_key(|(pid, _)| **pid);
    w.u32(parts.len() as u32);
    for (pid, part) in parts {
        pid.encode(&mut w);
        w.u64(part.quota).u64(part.used).u64(part.next_object);
        let mut objs: Vec<_> = part.objects.iter().collect();
        objs.sort_by_key(|(oid, _)| **oid);
        w.u32(objs.len() as u32);
        for (oid, meta) in objs {
            oid.encode(&mut w);
            meta.attrs.encode(&mut w);
            encode_blocks(&mut w, &meta.blocks);
        }
    }
    // COW refcounts.
    let mut refs: Vec<(u64, u32)> = store.refcounts.iter().map(|(&b, &c)| (b, c)).collect();
    refs.sort_unstable();
    w.u32(refs.len() as u32);
    for (block, count) in refs {
        w.u64(block).u32(count);
    }
    w.into_vec()
}

struct DecodedState {
    partitions: HashMap<PartitionId, Partition>,
    refcounts: HashMap<u64, u32>,
}

fn decode_store(payload: &[u8]) -> Result<DecodedState, DecodeError> {
    let mut r = WireReader::new(payload);
    let nparts = r.u32()? as usize;
    let mut partitions = HashMap::with_capacity(nparts);
    for _ in 0..nparts {
        let pid = PartitionId::decode(&mut r)?;
        let quota = r.u64()?;
        let used = r.u64()?;
        let next_object = r.u64()?;
        let nobjects = r.u32()? as usize;
        let mut objects = HashMap::with_capacity(nobjects);
        for _ in 0..nobjects {
            let oid = ObjectId::decode(&mut r)?;
            let attrs = ObjectAttributes::decode(&mut r)?;
            let blocks = decode_blocks(&mut r)?;
            objects.insert(oid, ObjectMeta { attrs, blocks });
        }
        partitions.insert(
            pid,
            Partition {
                quota,
                used,
                next_object,
                objects,
            },
        );
    }
    let nrefs = r.u32()? as usize;
    let mut refcounts = HashMap::with_capacity(nrefs);
    for _ in 0..nrefs {
        let block = r.u64()?;
        let count = r.u32()?;
        refcounts.insert(block, count);
    }
    r.finish()?;
    Ok(DecodedState {
        partitions,
        refcounts,
    })
}

impl<D: BlockDevice> ObjectStore<D> {
    /// Flush all data and write a metadata checkpoint, making the store
    /// recoverable with [`ObjectStore::open`].
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] if the metadata outgrew the reserved area
    /// (the drive is over-populated with tiny fragmented objects);
    /// device errors.
    pub fn checkpoint(&mut self, trace: &mut IoTrace) -> Result<(), StoreError> {
        // Data first: the checkpoint must describe durable contents.
        self.cache.flush(trace)?;

        let payload = encode_store(self);
        let bs = self.block_size;
        let area_blocks = meta_blocks(self.cache.device().num_blocks());
        let header = 16usize; // magic + length
        if payload.len() + header > (area_blocks as usize) * bs {
            return Err(StoreError::NoSpace);
        }

        let mut framed = Vec::with_capacity(header + payload.len());
        framed.extend_from_slice(&META_MAGIC.to_be_bytes());
        framed.extend_from_slice(&(payload.len() as u64).to_be_bytes());
        framed.extend_from_slice(&payload);
        // Write block-by-block through the cache, then flush.
        for (i, chunk) in framed.chunks(bs).enumerate() {
            if chunk.len() == bs {
                self.cache.write(i as u64, chunk, trace)?;
            } else {
                let mut padded = vec![0u8; bs];
                padded
                    .get_mut(..chunk.len())
                    .ok_or(StoreError::Internal("checkpoint chunk longer than block"))?
                    .copy_from_slice(chunk);
                self.cache.write(i as u64, &padded, trace)?;
            }
        }
        self.cache.flush(trace)?;
        Ok(())
    }

    /// Remount a checkpointed device: rebuilds the object tables from the
    /// metadata area and *recomputes* the allocator from the block maps.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFormatted`] when the device carries no valid
    /// checkpoint (bad magic or corrupt payload); [`StoreError::Disk`]
    /// on device errors.
    pub fn open(device: D, cache_blocks: usize) -> Result<Self, StoreError> {
        let bs = device.block_size();
        let total_blocks = device.num_blocks();
        let mut buf = vec![0u8; bs];
        device.read_block(0, &mut buf)?;
        let magic = be_u64(&buf, 0)?;
        if magic != META_MAGIC {
            return Err(StoreError::NotFormatted);
        }
        let payload_len = be_u64(&buf, 8)? as usize;
        let mut framed = Vec::with_capacity(16 + payload_len);
        framed.extend_from_slice(&buf);
        let mut block = 1u64;
        while framed.len() < 16 + payload_len {
            device.read_block(block, &mut buf)?;
            framed.extend_from_slice(&buf);
            block += 1;
        }
        let payload = framed
            .get(16..16 + payload_len)
            .ok_or(StoreError::NotFormatted)?;
        let state = decode_store(payload).map_err(|_| StoreError::NotFormatted)?;

        // Rebuild the allocator: reserve the metadata area, then every
        // block referenced by any object (shared blocks once).
        let mut allocator = Allocator::new(total_blocks);
        let meta = meta_blocks(total_blocks);
        if meta > 0 {
            allocator
                .allocate(meta, Some(0))
                .ok_or(StoreError::NoSpace)?;
        }
        let mut in_use: Vec<u64> = state
            .partitions
            .values()
            .flat_map(|p| p.objects.values())
            .flat_map(|m| m.blocks.iter().copied())
            .collect();
        in_use.sort_unstable();
        in_use.dedup();
        for b in in_use {
            // Carve each used block out of the free pool.
            allocator
                .allocate(1, Some(b))
                .filter(|e| e.start == b)
                .ok_or(StoreError::NotFormatted)?;
        }

        Ok(ObjectStore {
            cache: BlockCache::new(device, cache_blocks),
            allocator,
            partitions: state.partitions,
            refcounts: state.refcounts,
            block_size: bs,
            read_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;
    use nasd_proto::SetAttrMask;

    const BS: usize = 8_192;
    const P: PartitionId = PartitionId(1);

    fn t() -> IoTrace {
        IoTrace::default()
    }

    #[test]
    fn checkpoint_and_remount_roundtrip() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 4_096), 64);
        store.create_partition(P, 64 << 20).unwrap();
        let a = store.create_object(P, 0, None, 10, &mut t()).unwrap();
        let b = store
            .create_object(P, 4 * BS as u64, Some(a), 11, &mut t())
            .unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        store.write(P, a, 0, &data, 12, &mut t()).unwrap();
        store
            .write(P, b, 7, b"clustered neighbour", 13, &mut t())
            .unwrap();
        let mut fs = [0u8; nasd_proto::FS_SPECIFIC_ATTR_LEN];
        fs[0] = 0xcd;
        store
            .set_attr(
                P,
                a,
                SetAttrMask::fs_specific_only(),
                &fs,
                0,
                None,
                14,
                &mut t(),
            )
            .unwrap();
        let free_before = store.free_blocks();

        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);

        let mut re = ObjectStore::open(device, 64).unwrap();
        assert_eq!(re.free_blocks(), free_before, "allocator reconstructed");
        assert_eq!(re.read(P, a, 0, 100_000, 20, &mut t()).unwrap(), &data[..]);
        assert_eq!(
            re.read(P, b, 7, 19, 20, &mut t()).unwrap(),
            b"clustered neighbour"
        );
        let attrs = re.get_attr(P, a, 21).unwrap();
        assert_eq!(attrs.fs_specific[0], 0xcd);
        assert_eq!(attrs.create_time, 10);
        // New allocations continue from the persisted name counter.
        let c = re.create_object(P, 0, None, 22, &mut t()).unwrap();
        assert!(c > b);
    }

    #[test]
    fn snapshots_survive_remount() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 4_096), 64);
        store.create_partition(P, 64 << 20).unwrap();
        let o = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        store
            .write(P, o, 0, &vec![7u8; 3 * BS], 0, &mut t())
            .unwrap();
        let snap = store.snapshot(P, o, 1, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);

        let mut re = ObjectStore::open(device, 64).unwrap();
        // COW still works after remount: write to the original, snapshot
        // unchanged.
        re.write(P, o, 0, &[9u8; 10], 2, &mut t()).unwrap();
        let frozen = re.read(P, snap, 0, 10, 3, &mut t()).unwrap().to_vec();
        assert!(frozen.iter().all(|&x| x == 7));
        let fresh = re.read(P, o, 0, 10, 3, &mut t()).unwrap().to_vec();
        assert!(fresh.iter().all(|&x| x == 9));
    }

    #[test]
    fn open_unformatted_fails() {
        assert!(matches!(
            ObjectStore::open(MemDisk::new(BS, 128), 8),
            Err(StoreError::NotFormatted)
        ));
    }

    #[test]
    fn checkpoint_is_idempotent_and_updatable() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 2_048), 64);
        store.create_partition(P, 16 << 20).unwrap();
        let o = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        store.write(P, o, 0, b"v1", 0, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        store.write(P, o, 0, b"v2", 1, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);
        let mut re = ObjectStore::open(device, 8).unwrap();
        assert_eq!(re.read(P, o, 0, 2, 2, &mut t()).unwrap(), b"v2");
    }

    #[test]
    fn run_length_encoding_roundtrip() {
        let blocks = vec![5, 6, 7, 100, 101, 3, 900];
        let mut w = WireWriter::new();
        encode_blocks(&mut w, &blocks);
        let buf = w.into_vec();
        let mut r = WireReader::new(&buf);
        assert_eq!(decode_blocks(&mut r).unwrap(), blocks);
        // Compact: 4 runs.
        assert_eq!(buf.len(), 4 + 4 * 16);
    }

    #[test]
    fn metadata_area_sizing() {
        assert_eq!(meta_blocks(0), 0);
        assert_eq!(meta_blocks(20), 10, "never more than half the device");
        assert_eq!(meta_blocks(4_096), 128);
        assert_eq!(meta_blocks(100), 16, "floor of 16 blocks");
    }
}
