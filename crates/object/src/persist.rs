//! Metadata persistence: checkpoint, remount, and log replay.
//!
//! The paper's prototype kept its object-system metadata in kernel
//! memory; a production drive must survive power cycles *at any
//! instant*. This module writes the drive's metadata — partitions,
//! object tables (attributes + extent maps), and copy-on-write
//! refcounts — as an inode-style index checkpoint inside the on-disk
//! layout of [`crate::layout`], and rebuilds the store on open:
//!
//! 1. load the superblock (primary copy, falling back to the
//!    secondary);
//! 2. read the index checkpoint of the recorded epoch and verify its
//!    checksum;
//! 3. *recompute* the free-space allocator from the object extent maps
//!    rather than trusting disk state;
//! 4. verify the persisted allocation bitmap bit-for-bit against that
//!    recomputation — a cheap structural self-check against corruption;
//! 5. replay the write-ahead log ([`crate::wal`]) idempotently to the
//!    last complete record.
//!
//! Checkpoints are atomic by construction: the bitmap and index are
//! written to the *other* epoch-parity copy, and only the final
//! superblock write (to both copies) switches the drive over. A crash
//! anywhere in between leaves the previous checkpoint and its log
//! intact.
//!
//! Each object's extent map is stored inode-style: up to
//! [`NDIRECT`] extents inline in the index record, with any overflow
//! spilled to an indirect region referenced by byte offset — a freshly
//! written multi-gigabyte contiguous object costs one inline extent.

use crate::alloc::Allocator;
use crate::cache::{BlockCache, IoRecord, IoTrace};
use crate::layout::{bit_set, Superblock};
use crate::layout::{checksum64, read_bitmap, read_region, write_bitmap, write_region, Layout};
use crate::store::{ObjectMeta, ObjectStore, Partition, StoreError};
use crate::wal::Wal;
use nasd_disk::BlockDevice;
use nasd_proto::wire::{DecodeError, WireDecode, WireEncode, WireReader, WireWriter};
use nasd_proto::{ObjectAttributes, ObjectId, PartitionId};
use std::collections::HashMap;

/// Extents stored inline in an object's index record before spilling to
/// the indirect overflow region.
pub const NDIRECT: usize = 4;

/// Blocks reserved at the head of a device for metadata (superblocks,
/// bitmap copies, log, index copies) — the first data block. On a
/// device too small to hold its own metadata this is the whole device.
#[must_use]
pub fn meta_blocks(block_size: usize, total_blocks: u64) -> u64 {
    Layout::compute(block_size, total_blocks).data_start
}

/// Run-length compress a block list into (start, len) extents.
fn block_runs(blocks: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &b in blocks {
        match runs.last_mut() {
            Some((start, len)) if start.saturating_add(*len) == b => {
                *len = len.saturating_add(1);
            }
            _ => runs.push((b, 1)),
        }
    }
    runs
}

/// Encode an object's extent map: up to [`NDIRECT`] runs inline, the
/// rest spilled to the shared overflow writer (indirect extents).
fn encode_extents(main: &mut WireWriter, overflow: &mut WireWriter, blocks: &[u64]) {
    let runs = block_runs(blocks);
    let inline = runs.len().min(NDIRECT);
    // nasd-lint: allow(cast, "encode direction: `inline` is at most NDIRECT = 4")
    main.u8(inline as u8);
    for (start, len) in runs.iter().take(inline) {
        main.u64(*start).u64(*len);
    }
    if runs.len() > inline {
        main.u8(1)
            .u64(overflow.as_slice().len() as u64)
            // nasd-lint: allow(cast, "encode direction: in-memory run counts are far below u32::MAX")
            .u32((runs.len() - inline) as u32);
        for (start, len) in runs.iter().skip(inline) {
            overflow.u64(*start).u64(*len);
        }
    } else {
        main.u8(0);
    }
}

/// Decode one object's extent map, materializing the block list.
///
/// `max_blocks` bounds the *total* blocks an extent map may reference —
/// the device capacity on the open path. Without it a single hostile
/// run length (`len = u64::MAX`) would make the `extend` below try to
/// materialize the entire u64 range: an unbounded allocation driven by
/// 16 bytes of disk.
fn decode_extents(
    main: &mut WireReader<'_>,
    overflow: &[u8],
    max_blocks: u64,
) -> Result<Vec<u64>, DecodeError> {
    let mut blocks: Vec<u64> = Vec::new();
    let take = |blocks: &mut Vec<u64>, start: u64, len: u64| {
        if len > max_blocks || (blocks.len() as u64).saturating_add(len) > max_blocks {
            return Err(DecodeError::BadTag {
                context: "extent run length exceeds the device",
                value: len,
            });
        }
        blocks.extend(start..start.saturating_add(len));
        Ok(())
    };
    let inline = usize::from(main.u8()?);
    for _ in 0..inline {
        let start = main.u64()?;
        let len = main.u64()?;
        take(&mut blocks, start, len)?;
    }
    if main.u8()? != 0 {
        // Saturating on 32-bit targets: an unrepresentable offset is
        // past any real overflow region and fails the range check.
        let off = usize::try_from(main.u64()?).unwrap_or(usize::MAX);
        let extra = usize::try_from(main.u32()?).unwrap_or(usize::MAX);
        let tail = overflow.get(off..).ok_or(DecodeError::Truncated {
            needed: off,
            remaining: overflow.len(),
        })?;
        let mut r = WireReader::new(tail);
        for _ in 0..extra {
            let start = r.u64()?;
            let len = r.u64()?;
            take(&mut blocks, start, len)?;
        }
    }
    Ok(blocks)
}

/// Serialize the whole store into an index-checkpoint payload:
/// `[u64 overflow_len][overflow (indirect extents)][main records]`.
fn encode_store<D: BlockDevice>(store: &ObjectStore<D>) -> Vec<u8> {
    let mut main = WireWriter::new();
    let mut overflow = WireWriter::new();
    let mut parts: Vec<_> = store.partitions.iter().collect();
    parts.sort_by_key(|(pid, _)| **pid);
    // nasd-lint: allow(cast, "encode direction: in-memory partition count is far below u32::MAX")
    main.u32(parts.len() as u32);
    for (pid, part) in parts {
        pid.encode(&mut main);
        main.u64(part.quota).u64(part.used).u64(part.next_object);
        let mut objs: Vec<_> = part.objects.iter().collect();
        objs.sort_by_key(|(oid, _)| **oid);
        // nasd-lint: allow(cast, "encode direction: in-memory object count is far below u32::MAX")
        main.u32(objs.len() as u32);
        for (oid, meta) in objs {
            oid.encode(&mut main);
            meta.attrs.encode(&mut main);
            encode_extents(&mut main, &mut overflow, &meta.blocks);
        }
    }
    // COW refcounts.
    let mut refs: Vec<(u64, u32)> = store.refcounts.iter().map(|(&b, &c)| (b, c)).collect();
    refs.sort_unstable();
    // nasd-lint: allow(cast, "encode direction: in-memory refcount table is far below u32::MAX")
    main.u32(refs.len() as u32);
    for (block, count) in refs {
        main.u64(block).u32(count);
    }

    let mut payload = WireWriter::with_capacity(
        8usize
            .saturating_add(overflow.as_slice().len())
            .saturating_add(main.as_slice().len()),
    );
    payload
        .u64(overflow.as_slice().len() as u64)
        .raw(overflow.as_slice())
        .raw(main.as_slice());
    payload.into_vec()
}

struct DecodedState {
    partitions: HashMap<PartitionId, Partition>,
    refcounts: HashMap<u64, u32>,
}

/// Capacity hints for containers sized by wire-decoded counts: a
/// hostile count must cost a failed decode, not a giant pre-allocation.
const DECODE_CAPACITY_HINT: usize = 1_024;

fn decode_store(payload: &[u8], max_blocks: u64) -> Result<DecodedState, DecodeError> {
    let mut head = WireReader::new(payload);
    // Saturating on 32-bit targets: `raw` rejects any length beyond the
    // buffer, and a saturated length certainly is.
    let overflow_len = usize::try_from(head.u64()?).unwrap_or(usize::MAX);
    let overflow = head.raw(overflow_len)?;
    let mut r = WireReader::new(head.rest());
    let nparts = usize::try_from(r.u32()?).unwrap_or(usize::MAX);
    let mut partitions = HashMap::with_capacity(nparts.min(DECODE_CAPACITY_HINT));
    for _ in 0..nparts {
        let pid = PartitionId::decode(&mut r)?;
        let quota = r.u64()?;
        let used = r.u64()?;
        let next_object = r.u64()?;
        let nobjects = usize::try_from(r.u32()?).unwrap_or(usize::MAX);
        let mut objects = HashMap::with_capacity(nobjects.min(DECODE_CAPACITY_HINT));
        for _ in 0..nobjects {
            let oid = ObjectId::decode(&mut r)?;
            let attrs = ObjectAttributes::decode(&mut r)?;
            let blocks = decode_extents(&mut r, overflow, max_blocks)?;
            objects.insert(oid, ObjectMeta { attrs, blocks });
        }
        partitions.insert(
            pid,
            Partition {
                quota,
                used,
                next_object,
                objects,
            },
        );
    }
    let nrefs = usize::try_from(r.u32()?).unwrap_or(usize::MAX);
    let mut refcounts = HashMap::with_capacity(nrefs.min(DECODE_CAPACITY_HINT));
    for _ in 0..nrefs {
        let block = r.u64()?;
        let count = r.u32()?;
        refcounts.insert(block, count);
    }
    r.finish()?;
    Ok(DecodedState {
        partitions,
        refcounts,
    })
}

impl<D: BlockDevice> ObjectStore<D> {
    /// The in-use bit per device block: the metadata area plus every
    /// block referenced by any object's extent map. This is both what
    /// the checkpoint persists and what `open` recomputes to verify it.
    fn in_use_bits(&self) -> Vec<u8> {
        // nasd-lint: allow(cast, "geometry is validated against the device in Superblock::load, not taken from the wire")
        let mut bits = vec![0u8; (self.layout.total_blocks.div_ceil(8)) as usize];
        for b in 0..self.layout.data_start {
            bit_set(&mut bits, b);
        }
        for part in self.partitions.values() {
            for meta in part.objects.values() {
                for &b in &meta.blocks {
                    bit_set(&mut bits, b);
                }
            }
        }
        bits
    }

    /// Flush all data and write a full metadata checkpoint, making the
    /// store recoverable with [`ObjectStore::open`] and logically
    /// truncating the write-ahead log (its epoch moves on).
    ///
    /// The write order is the crash-safety argument: data, then the
    /// bitmap and index into the *inactive* epoch-parity copies, then
    /// both superblocks — the atomic switch. A crash before the
    /// superblock write leaves the previous checkpoint fully intact.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSpace`] if the device cannot hold its metadata
    /// or the index outgrew its area; device errors.
    pub fn checkpoint(&mut self, trace: &mut IoTrace) -> Result<(), StoreError> {
        if !self.layout.fits() {
            return Err(StoreError::NoSpace);
        }
        // Data first: the checkpoint must describe durable contents.
        self.cache.flush(trace)?;

        let payload = encode_store(self);
        if payload.len() > self.layout.index_bytes() {
            return Err(StoreError::NoSpace);
        }
        let epoch = self.checkpoint_seq + 1;
        let bits = self.in_use_bits();
        let layout = self.layout;
        let device = self.cache.device_mut();
        write_bitmap(device, &layout, epoch, &bits)?;
        write_region(
            device,
            layout.index_copy_start(epoch),
            layout.index_blocks,
            layout.block_size,
            &payload,
        )?;
        let sb = Superblock {
            layout,
            checkpoint_seq: epoch,
            checkpoint_len: payload.len() as u64,
            checkpoint_crc: checksum64(&payload),
        };
        sb.store(device)?;
        trace.records.push(IoRecord::Write {
            block: layout.bitmap_copy_start(epoch),
            count: layout.bitmap_blocks,
        });
        trace.records.push(IoRecord::Write {
            block: layout.index_copy_start(epoch),
            count: (payload.len() as u64).div_ceil(layout.block_size as u64),
        });
        trace.records.push(IoRecord::Write { block: 0, count: 2 });
        self.checkpoint_seq = epoch;
        self.formatted = true;
        self.wal.reset(epoch);
        Ok(())
    }

    /// Remount a formatted device: superblock, index checkpoint,
    /// recomputed allocator, bitmap self-check, then idempotent log
    /// replay to the last complete record.
    ///
    /// The write-ahead log is left *disabled*; a durable drive enables
    /// it after open so replayed operations never re-log themselves.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFormatted`] when no superblock copy carries the
    /// magic; [`StoreError::Corrupt`] when metadata is present but
    /// fails a checksum or the bitmap self-check; [`StoreError::Disk`]
    /// on device errors.
    pub fn open(device: D, cache_blocks: usize) -> Result<Self, StoreError> {
        let bs = device.block_size();
        let total_blocks = device.num_blocks();
        let sb = Superblock::load(&device)?;
        let layout = sb.layout;
        // `checkpoint_len` is raw disk state the geometry check does not
        // cover: bound it by the index area before it sizes a read.
        let checkpoint_len = usize::try_from(sb.checkpoint_len)
            .ok()
            .filter(|&n| n <= layout.index_bytes())
            .ok_or(StoreError::Corrupt(
                "checkpoint length exceeds the index area",
            ))?;
        let payload = read_region(
            &device,
            layout.index_copy_start(sb.checkpoint_seq),
            bs,
            checkpoint_len,
        )?;
        if checksum64(&payload) != sb.checkpoint_crc {
            return Err(StoreError::Corrupt("index checkpoint checksum mismatch"));
        }
        let state = decode_store(&payload, layout.total_blocks)
            .map_err(|_| StoreError::Corrupt("index checkpoint garbled"))?;

        // Rebuild the allocator from first principles: reserve the
        // metadata area, then carve out every block referenced by any
        // object (shared blocks once).
        let mut allocator = Allocator::new(total_blocks);
        if layout.data_start > 0 {
            allocator
                .allocate(layout.data_start, Some(0))
                .ok_or(StoreError::Internal("metadata reservation failed"))?;
        }
        let mut in_use: Vec<u64> = state
            .partitions
            .values()
            .flat_map(|p| p.objects.values())
            .flat_map(|m| m.blocks.iter().copied())
            .collect();
        in_use.sort_unstable();
        in_use.dedup();
        for b in in_use {
            allocator
                .allocate(1, Some(b))
                .filter(|e| e.start == b)
                .ok_or(StoreError::Corrupt(
                    "object index references out-of-range or doubly-used blocks",
                ))?;
        }

        // Construct early enough to reuse `in_use_bits`, but verify the
        // persisted bitmap before replay mutates anything.
        let (wal, log_records) = Wal::recover(&device, &layout, sb.checkpoint_seq)?;
        let store_bits_stored = read_bitmap(&device, &layout, sb.checkpoint_seq)?;
        let mut store = ObjectStore {
            cache: BlockCache::new(device, cache_blocks),
            allocator,
            partitions: state.partitions,
            refcounts: state.refcounts,
            block_size: bs,
            read_scratch: Vec::new(),
            layout,
            wal,
            checkpoint_seq: sb.checkpoint_seq,
            formatted: true,
        };
        if store.in_use_bits() != store_bits_stored {
            return Err(StoreError::Corrupt(
                "allocation bitmap disagrees with the object index",
            ));
        }
        let mut trace = IoTrace::default();
        for rec in log_records {
            store.apply_wal(rec, &mut trace)?;
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;
    use nasd_proto::SetAttrMask;

    const BS: usize = 8_192;
    const P: PartitionId = PartitionId(1);

    fn t() -> IoTrace {
        IoTrace::default()
    }

    #[test]
    fn checkpoint_and_remount_roundtrip() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 4_096), 64);
        store.create_partition(P, 64 << 20).unwrap();
        let a = store.create_object(P, 0, None, 10, &mut t()).unwrap();
        let b = store
            .create_object(P, 4 * BS as u64, Some(a), 11, &mut t())
            .unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        store.write(P, a, 0, &data, 12, &mut t()).unwrap();
        store
            .write(P, b, 7, b"clustered neighbour", 13, &mut t())
            .unwrap();
        let mut fs = [0u8; nasd_proto::FS_SPECIFIC_ATTR_LEN];
        fs[0] = 0xcd;
        store
            .set_attr(
                P,
                a,
                SetAttrMask::fs_specific_only(),
                &fs,
                0,
                None,
                14,
                &mut t(),
            )
            .unwrap();
        let free_before = store.free_blocks();

        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);

        let mut re = ObjectStore::open(device, 64).unwrap();
        assert_eq!(re.free_blocks(), free_before, "allocator reconstructed");
        assert_eq!(re.read(P, a, 0, 100_000, 20, &mut t()).unwrap(), &data[..]);
        assert_eq!(
            re.read(P, b, 7, 19, 20, &mut t()).unwrap(),
            b"clustered neighbour"
        );
        let attrs = re.get_attr(P, a, 21).unwrap();
        assert_eq!(attrs.fs_specific[0], 0xcd);
        assert_eq!(attrs.create_time, 10);
        // New allocations continue from the persisted name counter.
        let c = re.create_object(P, 0, None, 22, &mut t()).unwrap();
        assert!(c > b);
    }

    #[test]
    fn snapshots_survive_remount() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 4_096), 64);
        store.create_partition(P, 64 << 20).unwrap();
        let o = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        store
            .write(P, o, 0, &vec![7u8; 3 * BS], 0, &mut t())
            .unwrap();
        let snap = store.snapshot(P, o, 1, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);

        let mut re = ObjectStore::open(device, 64).unwrap();
        // COW still works after remount: write to the original, snapshot
        // unchanged.
        re.write(P, o, 0, &[9u8; 10], 2, &mut t()).unwrap();
        let frozen = re.read(P, snap, 0, 10, 3, &mut t()).unwrap().to_vec();
        assert!(frozen.iter().all(|&x| x == 7));
        let fresh = re.read(P, o, 0, 10, 3, &mut t()).unwrap().to_vec();
        assert!(fresh.iter().all(|&x| x == 9));
    }

    #[test]
    fn open_unformatted_fails() {
        assert!(matches!(
            ObjectStore::open(MemDisk::new(BS, 128), 8),
            Err(StoreError::NotFormatted)
        ));
    }

    #[test]
    fn checkpoint_is_idempotent_and_updatable() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 2_048), 64);
        store.create_partition(P, 16 << 20).unwrap();
        let o = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        store.write(P, o, 0, b"v1", 0, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        store.write(P, o, 0, b"v2", 1, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);
        let mut re = ObjectStore::open(device, 8).unwrap();
        assert_eq!(re.read(P, o, 0, 2, 2, &mut t()).unwrap(), b"v2");
        assert_eq!(re.checkpoint_seq, 2, "one epoch per checkpoint");
    }

    #[test]
    fn fragmented_objects_use_indirect_extents() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 4_096), 64);
        store.create_partition(P, 64 << 20).unwrap();
        // Interleave two objects' writes so each ends up with many
        // non-contiguous single-block extents — more than NDIRECT.
        let a = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        let b = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        for i in 0..(NDIRECT as u64 + 4) {
            store
                .write(P, a, i * BS as u64, &vec![1u8; BS], 0, &mut t())
                .unwrap();
            store
                .write(P, b, i * BS as u64, &vec![2u8; BS], 0, &mut t())
                .unwrap();
        }
        let a_blocks = {
            let part = store.partitions.get(&P).unwrap();
            part.objects[&a].blocks.clone()
        };
        assert!(
            block_runs(&a_blocks).len() > NDIRECT,
            "test must actually exercise the indirect path: {a_blocks:?}"
        );
        store.checkpoint(&mut t()).unwrap();
        let device = store.cache().device().clone();
        drop(store);

        let mut re = ObjectStore::open(device, 64).unwrap();
        let n = (NDIRECT as u64 + 4) * BS as u64;
        assert!(re
            .read(P, a, 0, n, 1, &mut t())
            .unwrap()
            .to_vec()
            .iter()
            .all(|&x| x == 1));
        assert!(re
            .read(P, b, 0, n, 1, &mut t())
            .unwrap()
            .to_vec()
            .iter()
            .all(|&x| x == 2));
        assert_eq!(
            re.partitions.get(&P).unwrap().objects[&a].blocks,
            a_blocks,
            "extent maps survive the indirect encoding"
        );
    }

    #[test]
    fn corrupt_index_checkpoint_is_rejected() {
        let mut store = ObjectStore::new(MemDisk::new(BS, 2_048), 64);
        store.create_partition(P, 16 << 20).unwrap();
        let o = store.create_object(P, 0, None, 0, &mut t()).unwrap();
        store.write(P, o, 0, b"payload", 0, &mut t()).unwrap();
        store.checkpoint(&mut t()).unwrap();
        let epoch = store.checkpoint_seq;
        let layout = *store.layout();
        let mut device = store.cache().device().clone();
        drop(store);

        let target = layout.index_copy_start(epoch);
        let mut buf = vec![0u8; BS];
        device.read_block(target, &mut buf).unwrap();
        buf[3] ^= 0x80;
        device.write_block(target, &buf).unwrap();
        assert!(matches!(
            ObjectStore::open(device, 8),
            Err(StoreError::Corrupt("index checkpoint checksum mismatch"))
        ));
    }

    #[test]
    fn extent_encoding_roundtrip() {
        for blocks in [
            vec![],
            vec![5],
            vec![5, 6, 7, 100, 101, 3, 900],
            (0..100u64).map(|i| i * 2 + 200).collect::<Vec<_>>(), // 100 runs
        ] {
            let mut main = WireWriter::new();
            let mut overflow = WireWriter::new();
            encode_extents(&mut main, &mut overflow, &blocks);
            let main = main.into_vec();
            let overflow = overflow.into_vec();
            let mut r = WireReader::new(&main);
            assert_eq!(decode_extents(&mut r, &overflow, 1 << 20).unwrap(), blocks);
            r.finish().unwrap();
        }
    }

    #[test]
    fn hostile_extent_length_is_rejected() {
        // 16 bytes of disk must not be able to demand 2^64 block
        // numbers: a run length beyond the device fails the decode
        // instead of materializing the run.
        for len in [u64::MAX, 4_097] {
            let mut main = WireWriter::new();
            main.u8(1); // one inline run
            main.u64(0).u64(len);
            main.u8(0); // no indirect extents
            let buf = main.into_vec();
            let mut r = WireReader::new(&buf);
            assert!(matches!(
                decode_extents(&mut r, &[], 4_096),
                Err(DecodeError::BadTag { .. })
            ));
        }
    }

    #[test]
    fn hostile_checkpoint_length_is_rejected() {
        // A superblock whose checkpoint_len points past the index area
        // must fail cleanly instead of sizing a read (and allocation)
        // from the hostile value.
        let mut store = ObjectStore::new(MemDisk::new(BS, 2_048), 64);
        store.create_partition(P, 16 << 20).unwrap();
        store.checkpoint(&mut t()).unwrap();
        let epoch = store.checkpoint_seq;
        let layout = *store.layout();
        let mut device = store.cache().device().clone();
        drop(store);

        // Rewrite both superblock copies with a huge checkpoint_len and
        // a recomputed checksum so only the length check can object.
        let sb = Superblock {
            layout,
            checkpoint_seq: epoch,
            checkpoint_len: u64::MAX / 2,
            checkpoint_crc: 0,
        };
        sb.store(&mut device).unwrap();
        assert!(matches!(
            ObjectStore::open(device, 8),
            Err(StoreError::Corrupt(
                "checkpoint length exceeds the index area"
            ))
        ));
    }

    #[test]
    fn metadata_area_sizing() {
        // A device too small for its metadata is wholly reserved: the
        // store formats with zero data capacity instead of overlapping
        // regions (the old `meta_blocks` returned 0 for tiny devices).
        for tiny in [0u64, 1, 2, 16] {
            assert_eq!(meta_blocks(512, tiny), tiny);
        }
        // Normal devices keep most of their capacity for data.
        for (bs, total) in [(512usize, 2_048u64), (8_192, 4_096), (8_192, 1 << 20)] {
            let meta = meta_blocks(bs, total);
            assert!(meta > 2, "superblocks, bitmap, log and index reserved");
            assert!(
                meta <= total / 10,
                "metadata under 10% of a real device: {meta}/{total}"
            );
        }
    }

    #[test]
    fn tiny_device_operations_fail_cleanly() {
        // 16 blocks cannot hold the metadata area: the store still
        // constructs, partition bookkeeping works, but nothing that
        // needs disk space or durability succeeds — and nothing panics.
        let mut store = ObjectStore::new(MemDisk::new(512, 16), 4);
        store.create_partition(P, 1 << 20).unwrap();
        assert_eq!(
            store.create_object(P, 512, None, 0, &mut t()).unwrap_err(),
            StoreError::NoSpace
        );
        assert_eq!(store.checkpoint(&mut t()).unwrap_err(), StoreError::NoSpace);
    }
}
