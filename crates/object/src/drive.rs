//! The NASD drive: request dispatch over the object store with security
//! enforcement and cost metering.
//!
//! [`NasdDrive::handle`] is the drive's single entry point — the function
//! a drive ASIC would run per request. It verifies the capability, runs
//! the object-store operation, and returns both the wire [`Reply`] and a
//! [`ServiceReport`] (instruction cost + physical I/O trace) that the
//! simulation harnesses replay against CPU and disk models.

use crate::cache::IoTrace;
use crate::cost::{CostMeter, OpCost, OpKind};
use crate::security::DriveSecurity;
use crate::store::{ObjectStore, StoreError};
use bytes::{ByteRope, Bytes};
use nasd_crypto::{KeyHierarchy, KeyKind, SecretKey};
use nasd_disk::MemDisk;
use nasd_obs::{Counter, Histogram, Registry, SimTime, TraceEvent, TraceSink};
use nasd_proto::wire::WireEncode;
use nasd_proto::{
    ByteRange, Capability, CapabilityPublic, DriveId, NasdStatus, Nonce, ObjectId, PartitionId,
    ProtectionLevel, Reply, ReplyBody, Request, RequestBody, Rights, Version,
};
use std::cell::Cell;
use std::sync::Arc;

/// Configuration of a drive instance.
#[derive(Clone, Debug)]
pub struct DriveConfig {
    /// Device block size in bytes.
    pub block_size: usize,
    /// Device capacity in blocks.
    pub capacity_blocks: u64,
    /// Block cache capacity in blocks.
    pub cache_blocks: usize,
    /// Whether capability verification is enforced.
    pub security_enabled: bool,
    /// Write-through durability: checkpoint drive metadata and flush the
    /// cache after every successful mutating request, so an acknowledged
    /// write survives a power cycle ([`DriveBuilder::open`] recovers it).
    /// Costs a metadata write per mutation; meant for crash testing and
    /// durability-critical deployments, not throughput runs.
    pub durable_writes: bool,
}

impl DriveConfig {
    /// A small drive for tests and examples: 32 MB device, 1 MB cache.
    #[must_use]
    pub fn small() -> Self {
        DriveConfig {
            block_size: 8_192,
            capacity_blocks: 4_096,
            cache_blocks: 128,
            security_enabled: true,
            durable_writes: false,
        }
    }

    /// A drive sized like the paper's prototype: 4 GB device, 16 MB cache
    /// (the prototype machine had 64 MB total).
    #[must_use]
    pub fn prototype() -> Self {
        DriveConfig {
            block_size: 8_192,
            capacity_blocks: 512 * 1024,
            cache_blocks: 2_048,
            security_enabled: true,
            durable_writes: false,
        }
    }

    /// This configuration with write-through durability enabled.
    #[must_use]
    pub fn durable(mut self) -> Self {
        self.durable_writes = true;
        self
    }
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig::small()
    }
}

/// Drive-level fault injection: transient overload bounces and slow I/O.
///
/// Decisions are a pure function of `(seed, request sequence number)`,
/// so a seeded drive injects the identical fault schedule on every run.
/// A `Busy` bounce happens *before* any state changes or nonce
/// consumption — the client may freely re-sign and retry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriveFaultConfig {
    /// Probability a request is bounced with [`NasdStatus::Busy`]
    /// without being executed.
    pub busy: f64,
    /// Probability the request is served after an injected stall.
    pub slow_io: f64,
    /// Upper bound of the injected stall, in microseconds.
    pub max_slow_micros: u64,
}

impl DriveFaultConfig {
    /// A moderate chaos profile: 5% busy bounces, 10% stalls up to 300µs.
    #[must_use]
    pub fn moderate() -> Self {
        DriveFaultConfig {
            busy: 0.05,
            slow_io: 0.10,
            max_slow_micros: 300,
        }
    }
}

#[derive(Debug)]
struct DriveFaultState {
    config: DriveFaultConfig,
    seed: u64,
    seq: u64,
    injected: u64,
}

enum DriveFault {
    Busy,
    SlowMicros(u64),
}

fn fault_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DriveFaultState {
    fn next(&mut self) -> Option<DriveFault> {
        let seq = self.seq;
        self.seq += 1;
        let base = fault_mix(self.seed ^ seq.wrapping_mul(0xa076_1d64_78bd_642f));
        let roll = (base >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let fault = if roll < self.config.busy {
            Some(DriveFault::Busy)
        } else if roll < self.config.busy + self.config.slow_io && self.config.max_slow_micros > 0 {
            Some(DriveFault::SlowMicros(
                fault_mix(base) % self.config.max_slow_micros + 1,
            ))
        } else {
            None
        };
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }
}

/// Per-drive observability handles, resolved once when the drive is
/// built (see [`DriveBuilder::metrics`]) so recording per request is a
/// handful of atomic adds.
struct DriveObs {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    security_rejects: Arc<Counter>,
    busy_bounces: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    instructions: Arc<Histogram>,
    request_bytes: Arc<Histogram>,
    sink: Option<Arc<TraceSink>>,
}

impl DriveObs {
    fn wire(registry: &Registry, drive: u64, sink: Option<Arc<TraceSink>>) -> DriveObs {
        let name = |leaf: &str| format!("drive/{drive}/{leaf}");
        DriveObs {
            requests: registry.counter(&name("requests")),
            errors: registry.counter(&name("errors")),
            security_rejects: registry.counter(&name("security_rejects")),
            busy_bounces: registry.counter(&name("busy_bounces")),
            bytes_read: registry.counter(&name("bytes_read")),
            bytes_written: registry.counter(&name("bytes_written")),
            cache_hits: registry.counter(&name("cache_hits")),
            cache_misses: registry.counter(&name("cache_misses")),
            instructions: registry.histogram(&name("instructions")),
            request_bytes: registry.histogram(&name("request_bytes")),
            sink,
        }
    }
}

fn op_label(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Read => "read",
        OpKind::Write => "write",
        OpKind::GetAttr => "get_attr",
        OpKind::Control => "control",
    }
}

/// What one request cost: instruction accounting plus the physical I/O
/// performed, for replay against timing models.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Kind of operation (for aggregation).
    pub kind: OpKind,
    /// Instruction cost split into comm / object-system work.
    pub cost: OpCost,
    /// Physical device accesses performed.
    pub trace: IoTrace,
}

/// A complete NASD drive over block device `D`.
pub struct NasdDrive<D = MemDisk> {
    id: DriveId,
    store: ObjectStore<D>,
    security: DriveSecurity,
    hierarchy: KeyHierarchy,
    meter: CostMeter,
    clock: u64,
    next_client: u64,
    issue_nonce: Cell<u64>,
    durable_writes: bool,
    faults: Option<DriveFaultState>,
    obs: Option<DriveObs>,
}

/// Fluent constructor for [`NasdDrive`] — the single way a drive is
/// built, whether fresh in memory, over an arbitrary device, or
/// remounted from a checkpoint.
///
/// # Example
///
/// ```
/// use nasd_object::{DriveConfig, NasdDrive};
/// let mut drive = NasdDrive::builder(1)
///     .config(DriveConfig::prototype())
///     .build();
/// assert_eq!(drive.id().0, 1);
/// ```
#[derive(Clone, Debug)]
pub struct DriveBuilder {
    drive_number: u64,
    config: DriveConfig,
    master_seed: [u8; 32],
    faults: Option<(u64, DriveFaultConfig)>,
    metrics: Option<Arc<Registry>>,
    trace: Option<Arc<TraceSink>>,
}

impl DriveBuilder {
    /// Use `config` instead of the default [`DriveConfig::small`].
    #[must_use]
    pub fn config(mut self, config: DriveConfig) -> Self {
        self.config = config;
        self
    }

    /// Enable write-through durability (see [`DriveConfig::durable_writes`]).
    #[must_use]
    pub fn durable(mut self) -> Self {
        self.config.durable_writes = true;
        self
    }

    /// Root the key hierarchy at `seed` instead of the default test seed.
    #[must_use]
    pub fn master_seed(mut self, seed: [u8; 32]) -> Self {
        self.master_seed = seed;
        self
    }

    /// Install a seeded drive-level fault injector at build time.
    #[must_use]
    pub fn faults(mut self, seed: u64, config: DriveFaultConfig) -> Self {
        self.faults = Some((seed, config));
        self
    }

    /// Record per-request counters and histograms under
    /// `drive/<n>/...` in `registry`.
    #[must_use]
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Emit a structured [`TraceEvent`] per served request into `sink`.
    #[must_use]
    pub fn trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    fn finish<D: nasd_disk::BlockDevice>(self, mut drive: NasdDrive<D>) -> NasdDrive<D> {
        if let Some((seed, config)) = self.faults {
            drive.set_faults(seed, config);
        }
        if self.metrics.is_some() || self.trace.is_some() {
            // Tracing without metrics still routes through DriveObs; the
            // throwaway registry just absorbs the unobserved counters.
            let registry = self.metrics.unwrap_or_default();
            drive.obs = Some(DriveObs::wire(&registry, drive.id.0, self.trace));
        }
        drive
    }

    /// Build over a fresh in-memory device sized by the config.
    #[must_use]
    pub fn build(self) -> NasdDrive<MemDisk> {
        let device = MemDisk::new(self.config.block_size, self.config.capacity_blocks);
        self.build_on(device)
    }

    /// Build over `device` (formats it as a fresh drive).
    #[must_use]
    pub fn build_on<D: nasd_disk::BlockDevice>(self, device: D) -> NasdDrive<D> {
        let drive = NasdDrive::init(
            device,
            self.config.clone(),
            DriveId(self.drive_number),
            self.master_seed,
        );
        self.finish(drive)
    }

    /// Remount a checkpointed `device` (see [`NasdDrive::checkpoint`]):
    /// rebuilds the object store from the metadata area and re-derives
    /// the partition keys from the key hierarchy, so capabilities minted
    /// before the power cycle keep working.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFormatted`] when the device holds no checkpoint.
    pub fn open<D: nasd_disk::BlockDevice>(self, device: D) -> Result<NasdDrive<D>, StoreError> {
        let drive = NasdDrive::reopen(
            device,
            self.config.clone(),
            DriveId(self.drive_number),
            self.master_seed,
        )?;
        Ok(self.finish(drive))
    }
}

impl NasdDrive<MemDisk> {
    /// Start building drive number `drive_number`; defaults are
    /// [`DriveConfig::small`] and the fleet test seed.
    #[must_use]
    pub fn builder(drive_number: u64) -> DriveBuilder {
        DriveBuilder {
            drive_number,
            config: DriveConfig::small(),
            master_seed: [7u8; 32],
            faults: None,
            metrics: None,
            trace: None,
        }
    }
}

impl<D: nasd_disk::BlockDevice> NasdDrive<D> {
    fn init(device: D, config: DriveConfig, id: DriveId, master_seed: [u8; 32]) -> Self {
        let hierarchy = KeyHierarchy::new(SecretKey::from_bytes(master_seed), id.0);
        let security = DriveSecurity::new(id, hierarchy.drive().clone(), config.security_enabled);
        let mut store = ObjectStore::new(device, config.cache_blocks);
        store.enable_wal(config.durable_writes);
        NasdDrive {
            id,
            store,
            security,
            hierarchy,
            meter: CostMeter::new(),
            clock: 1,
            next_client: 1,
            issue_nonce: Cell::new(1),
            durable_writes: config.durable_writes,
            faults: None,
            obs: None,
        }
    }

    fn reopen(
        device: D,
        config: DriveConfig,
        id: DriveId,
        master_seed: [u8; 32],
    ) -> Result<Self, StoreError> {
        let mut store = ObjectStore::open(device, config.cache_blocks)?;
        // Replay is done; from here on, durable drives log every
        // mutation before acking it.
        store.enable_wal(config.durable_writes);
        let hierarchy = KeyHierarchy::new(SecretKey::from_bytes(master_seed), id.0);
        let mut security =
            DriveSecurity::new(id, hierarchy.drive().clone(), config.security_enabled);
        for p in store.partition_ids() {
            security.install_partition_keys(p, hierarchy.partition_keys(p.0, 0));
        }
        Ok(NasdDrive {
            id,
            store,
            security,
            hierarchy,
            meter: CostMeter::new(),
            clock: 1,
            next_client: 1,
            issue_nonce: Cell::new(1),
            durable_writes: config.durable_writes,
            faults: None,
            obs: None,
        })
    }

    /// Flush all data and persist the drive's metadata so the device can
    /// be remounted with [`DriveBuilder::open`].
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let mut trace = IoTrace::default();
        self.store.checkpoint(&mut trace)
    }

    /// This drive's identity.
    #[must_use]
    pub fn id(&self) -> DriveId {
        self.id
    }

    /// The drive's clock (seconds). Capability expiry is checked against
    /// this.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Set the drive clock.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Advance the drive clock.
    pub fn advance_clock(&mut self, secs: u64) {
        self.clock += secs;
    }

    /// The object store (read access for diagnostics).
    #[must_use]
    pub fn store(&self) -> &ObjectStore<D> {
        &self.store
    }

    /// The security state.
    #[must_use]
    pub fn security(&self) -> &DriveSecurity {
        &self.security
    }

    /// The key hierarchy (the drive *owner's* view; a real deployment
    /// would keep this at the file manager).
    #[must_use]
    pub fn hierarchy(&self) -> &KeyHierarchy {
        &self.hierarchy
    }

    fn status_of(e: &StoreError) -> NasdStatus {
        match e {
            StoreError::NoSuchPartition(_) => NasdStatus::NoSuchPartition,
            StoreError::PartitionExists(_) => NasdStatus::ObjectExists,
            StoreError::PartitionNotEmpty(_) => NasdStatus::BadRequest,
            StoreError::NoSuchObject(_) => NasdStatus::NoSuchObject,
            StoreError::NoSpace | StoreError::QuotaBelowUsage { .. } => NasdStatus::NoSpace,
            StoreError::NotFormatted => NasdStatus::DriveError,
            StoreError::Corrupt(_) => NasdStatus::DriveError,
            StoreError::Disk(_) => NasdStatus::DriveError,
            StoreError::Internal(_) => NasdStatus::DriveError,
        }
    }

    /// Install a seeded drive-level fault injector (see
    /// [`DriveFaultConfig`]). Replaces any previous injector.
    pub fn set_faults(&mut self, seed: u64, config: DriveFaultConfig) {
        self.faults = Some(DriveFaultState {
            config,
            seed,
            seq: 0,
            injected: 0,
        });
    }

    /// Remove the fault injector; subsequent requests run clean.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// How many faults the injector has realized so far (diagnostic).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.injected)
    }

    /// Whether `body` changes drive state (used for write-through
    /// durability). Delegates to the protocol-level mutation matrix,
    /// which nasd-lint keeps exhaustive per variant.
    fn is_mutating(body: &RequestBody) -> bool {
        body.mutates()
    }

    /// Handle one wire request — the drive's single entry point.
    pub fn handle(&mut self, req: &Request) -> (Reply, ServiceReport) {
        if let Some(state) = &mut self.faults {
            match state.next() {
                Some(DriveFault::Busy) => {
                    // Bounced before verification: no nonce consumed, no
                    // state touched; the client may re-sign and retry.
                    let cost = self.meter.estimate(OpKind::Control, 0, 0);
                    if let Some(obs) = &self.obs {
                        obs.requests.inc();
                        obs.busy_bounces.inc();
                        if let Some(sink) = &obs.sink {
                            sink.record(
                                TraceEvent::new(SimTime::from_secs(self.clock), "control", "busy")
                                    .with_drive(self.id.0),
                            );
                        }
                    }
                    return (
                        Reply::error(NasdStatus::Busy),
                        ServiceReport {
                            kind: OpKind::Control,
                            cost,
                            trace: IoTrace::default(),
                        },
                    );
                }
                Some(DriveFault::SlowMicros(us)) => {
                    // Pacing happens before any store lock is taken, so an
                    // injected stall never extends a critical section.
                    nasd_net::pace(std::time::Duration::from_micros(us));
                }
                None => {}
            }
        }
        let mut trace = IoTrace::default();
        let (mut reply, kind, bytes) = self.dispatch(req, &mut trace);
        if self.durable_writes && reply.status.is_ok() && Self::is_mutating(&req.body) {
            // Ack implies durable: group-commit the op's write-ahead log
            // records (write payloads travel inside their records, so
            // replay regenerates the data blocks) before the reply
            // leaves the drive. A failed commit voids the ack. The
            // first commit on a fresh device writes a full checkpoint
            // instead, formatting the superblock.
            if self.store.wal_commit(&mut trace).is_err() {
                reply = Reply::error(NasdStatus::DriveError);
            }
        }
        let cold_blocks = trace.misses;
        let cost = self.meter.estimate(kind, bytes, cold_blocks);
        let report = ServiceReport { kind, cost, trace };
        if let Some(obs) = &self.obs {
            obs.requests.inc();
            if !reply.status.is_ok() {
                obs.errors.inc();
                if matches!(
                    reply.status,
                    NasdStatus::AccessDenied | NasdStatus::Replay | NasdStatus::RangeViolation
                ) {
                    obs.security_rejects.inc();
                }
            }
            match report.kind {
                OpKind::Read => obs.bytes_read.add(bytes),
                OpKind::Write => obs.bytes_written.add(bytes),
                OpKind::GetAttr | OpKind::Control => {}
            }
            obs.cache_hits.add(report.trace.hits);
            obs.cache_misses.add(report.trace.misses);
            obs.instructions.record(report.cost.total() as u64);
            obs.request_bytes.record(bytes);
            if let Some(sink) = &obs.sink {
                let phase = if reply.status.is_ok() {
                    "served"
                } else {
                    "error"
                };
                sink.record(
                    TraceEvent::new(SimTime::from_secs(self.clock), op_label(report.kind), phase)
                        .with_drive(self.id.0)
                        .with_detail(format!("status={:?} bytes={bytes}", reply.status)),
                );
            }
        }
        (reply, report)
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, req: &Request, trace: &mut IoTrace) -> (Reply, OpKind, u64) {
        let now = self.clock;
        macro_rules! verify {
            ($rights:expr, $version:expr, $region:expr) => {
                if let Err(status) = self.security.verify(req, $rights, $version, $region, now) {
                    return (Reply::error(status), OpKind::Control, 0);
                }
            };
        }
        macro_rules! object_version {
            ($p:expr, $o:expr) => {
                match self.store.object_version($p, $o) {
                    Ok(v) => v,
                    Err(e) => return (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            };
        }

        match &req.body {
            RequestBody::Read {
                partition,
                object,
                offset,
                len,
            } => {
                // "Objects with well-known names... enable filesystems to
                // find a fixed starting point for an object hierarchy and
                // a complete list of allocated object names" (§4.1): the
                // object-list object is synthesized from the partition's
                // namespace on every read.
                if *object == nasd_proto::WELL_KNOWN_OBJECT_LIST {
                    verify!(Rights::READ, Version(0), Some((*offset, *len)));
                    return match self.store.list_objects(*partition) {
                        Ok(ids) => {
                            let mut w = nasd_proto::wire::WireWriter::new();
                            w.u32(ids.len() as u32);
                            for id in ids {
                                id.encode(&mut w);
                            }
                            let encoded = Bytes::from(w.into_vec());
                            let start = (*offset as usize).min(encoded.len());
                            let end = (*offset + *len).min(encoded.len() as u64) as usize;
                            let window = encoded.slice(start..end.max(start));
                            let n = window.len() as u64;
                            (
                                Reply::ok(ReplyBody::Data(ByteRope::from(window))),
                                OpKind::Read,
                                n,
                            )
                        }
                        Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Read, 0),
                    };
                }
                let version = object_version!(*partition, *object);
                verify!(Rights::READ, version, Some((*offset, *len)));
                match self
                    .store
                    .read(*partition, *object, *offset, *len, now, trace)
                {
                    Ok(data) => {
                        let n = data.len() as u64;
                        (Reply::ok(ReplyBody::Data(data)), OpKind::Read, n)
                    }
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Read, 0),
                }
            }
            RequestBody::Write {
                partition,
                object,
                offset,
                len,
            } => {
                if *len != req.data.len() as u64 {
                    return (Reply::error(NasdStatus::BadRequest), OpKind::Write, 0);
                }
                let version = object_version!(*partition, *object);
                verify!(Rights::WRITE, version, Some((*offset, *len)));
                match self
                    .store
                    .write(*partition, *object, *offset, &req.data, now, trace)
                {
                    Ok(n) => (Reply::ok(ReplyBody::Written(n)), OpKind::Write, n),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Write, 0),
                }
            }
            RequestBody::Append {
                partition,
                object,
                len,
            } => {
                if *len != req.data.len() as u64 {
                    return (Reply::error(NasdStatus::BadRequest), OpKind::Write, 0);
                }
                let version = object_version!(*partition, *object);
                // The drive chooses the offset: current end of data. The
                // capability's region must cover the landing range, so an
                // append-authorized client still cannot exceed its window.
                let offset = match self.store.get_attr(*partition, *object, now) {
                    Ok(attrs) => attrs.size,
                    Err(e) => return (Reply::error(Self::status_of(&e)), OpKind::Write, 0),
                };
                verify!(Rights::WRITE, version, Some((offset, *len)));
                match self
                    .store
                    .write(*partition, *object, offset, &req.data, now, trace)
                {
                    Ok(n) => (Reply::ok(ReplyBody::Appended(offset)), OpKind::Write, n),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Write, 0),
                }
            }
            RequestBody::GetAttr { partition, object } => {
                let version = object_version!(*partition, *object);
                verify!(Rights::GETATTR, version, None);
                match self.store.get_attr(*partition, *object, now) {
                    Ok(attrs) => (Reply::ok(ReplyBody::Attr(attrs)), OpKind::GetAttr, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::GetAttr, 0),
                }
            }
            RequestBody::SetAttr {
                partition,
                object,
                mask,
                fs_specific,
                preallocated,
                cluster_with,
            } => {
                let version = object_version!(*partition, *object);
                verify!(Rights::SETATTR, version, None);
                match self.store.set_attr(
                    *partition,
                    *object,
                    *mask,
                    fs_specific,
                    *preallocated,
                    *cluster_with,
                    now,
                    trace,
                ) {
                    Ok(()) => (Reply::ok(ReplyBody::Empty), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::Create {
                partition,
                preallocate,
                cluster_with,
            } => {
                verify!(Rights::CREATE, Version(0), None);
                match self
                    .store
                    .create_object(*partition, *preallocate, *cluster_with, now, trace)
                {
                    Ok(id) => (Reply::ok(ReplyBody::Created(id)), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::Remove { partition, object } => {
                let version = object_version!(*partition, *object);
                verify!(Rights::REMOVE, version, None);
                match self.store.remove_object(*partition, *object, trace) {
                    Ok(()) => (Reply::ok(ReplyBody::Empty), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::Resize {
                partition,
                object,
                new_size,
            } => {
                let version = object_version!(*partition, *object);
                verify!(Rights::RESIZE, version, Some((0, *new_size)));
                match self
                    .store
                    .resize(*partition, *object, *new_size, now, trace)
                {
                    Ok(()) => (Reply::ok(ReplyBody::Empty), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::Snapshot { partition, object } => {
                let version = object_version!(*partition, *object);
                verify!(Rights::SNAPSHOT, version, None);
                match self.store.snapshot(*partition, *object, now, trace) {
                    Ok(id) => (Reply::ok(ReplyBody::Created(id)), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::Flush { partition, object } => {
                let version = object_version!(*partition, *object);
                verify!(Rights::WRITE, version, None);
                match self.store.flush(trace) {
                    Ok(()) => (Reply::ok(ReplyBody::Empty), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::ListObjects { partition } => {
                verify!(Rights::GETATTR, Version(0), None);
                match self.store.list_objects(*partition) {
                    Ok(ids) => (Reply::ok(ReplyBody::Objects(ids)), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::CreatePartition { partition, quota } => {
                if let Err(s) = self.security.verify_admin(req) {
                    return (Reply::error(s), OpKind::Control, 0);
                }
                match self.store.create_partition(*partition, *quota) {
                    Ok(()) => {
                        let keys = self.hierarchy.partition_keys(partition.0, 0);
                        self.security.install_partition_keys(*partition, keys);
                        (Reply::ok(ReplyBody::Empty), OpKind::Control, 0)
                    }
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::ResizePartition { partition, quota } => {
                if let Err(s) = self.security.verify_admin(req) {
                    return (Reply::error(s), OpKind::Control, 0);
                }
                match self.store.resize_partition(*partition, *quota) {
                    Ok(()) => (Reply::ok(ReplyBody::Empty), OpKind::Control, 0),
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::RemovePartition { partition } => {
                if let Err(s) = self.security.verify_admin(req) {
                    return (Reply::error(s), OpKind::Control, 0);
                }
                match self.store.remove_partition(*partition) {
                    Ok(()) => {
                        self.security.remove_partition_keys(*partition);
                        (Reply::ok(ReplyBody::Empty), OpKind::Control, 0)
                    }
                    Err(e) => (Reply::error(Self::status_of(&e)), OpKind::Control, 0),
                }
            }
            RequestBody::SetKey {
                partition,
                kind,
                wrapped_key,
            } => {
                if let Err(s) = self.security.verify_setkey(req, now) {
                    return (Reply::error(s), OpKind::Control, 0);
                }
                let Ok(bytes): Result<[u8; 32], _> = wrapped_key.as_slice().try_into() else {
                    return (Reply::error(NasdStatus::BadRequest), OpKind::Control, 0);
                };
                match self
                    .security
                    .set_working_key(*partition, *kind, SecretKey::from_bytes(bytes))
                {
                    Ok(()) => (Reply::ok(ReplyBody::Empty), OpKind::Control, 0),
                    Err(s) => (Reply::error(s), OpKind::Control, 0),
                }
            }
            // The protocol enum is non-exhaustive; a drive must answer
            // requests it does not understand.
            _ => (Reply::error(NasdStatus::BadRequest), OpKind::Control, 0),
        }
    }

    // ----- owner / administrative convenience API ----------------------
    //
    // These mirror what a file manager (holding the partition keys) or a
    // drive administrator (holding the drive key) does over the secure
    // administrative channel. Examples and tests use them to avoid
    // re-implementing a file manager; `nasd-fm` builds the real thing.

    /// Create a partition as the drive administrator.
    ///
    /// # Errors
    ///
    /// Propagates the drive status on failure.
    pub fn admin_create_partition(&mut self, p: PartitionId, quota: u64) -> Result<(), NasdStatus> {
        let req = self.admin_request(RequestBody::CreatePartition {
            partition: p,
            quota,
        });
        let (reply, _) = self.handle(&req);
        if reply.status.is_ok() {
            Ok(())
        } else {
            Err(reply.status)
        }
    }

    /// Create an object as the partition owner; returns its name.
    ///
    /// # Errors
    ///
    /// Propagates the drive status on failure.
    pub fn admin_create_object(
        &mut self,
        p: PartitionId,
        preallocate: u64,
    ) -> Result<ObjectId, NasdStatus> {
        let cap = self.issue_partition_capability(p, Rights::CREATE, 3_600);
        let client = self.client(cap);
        let (reply, _) = self.handle(&client.build(
            RequestBody::Create {
                partition: p,
                preallocate,
                cluster_with: None,
            },
            Bytes::new(),
        ));
        match (reply.status, reply.body) {
            (NasdStatus::Ok, ReplyBody::Created(id)) => Ok(id),
            (s, _) if !s.is_ok() => Err(s),
            _ => Err(NasdStatus::DriveError),
        }
    }

    /// Build a drive-key-authorized administrative request.
    #[must_use]
    pub fn admin_request(&self, body: RequestBody) -> Request {
        let nonce = Nonce::new(0xad31, self.issue_nonce.replace(self.issue_nonce.get() + 1));
        let digest = DriveSecurity::request_digest(
            self.hierarchy.drive().as_bytes(),
            nonce,
            &body.to_wire(),
            &[],
            ProtectionLevel::ArgsIntegrity,
        );
        Request {
            header: nasd_proto::SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce,
            },
            capability: None,
            body,
            digest,
            data: Bytes::new(),
        }
    }

    /// Build a partition-key-authorized `SetKey` request.
    #[must_use]
    pub fn setkey_request(&self, p: PartitionId, kind: KeyKind, new_key: &SecretKey) -> Request {
        let body = RequestBody::SetKey {
            partition: p,
            kind,
            // nasd-lint: allow(hot-path-copy, "32-byte key material on the control path, not payload")
            wrapped_key: new_key.as_bytes().to_vec(),
        };
        let keys = self.hierarchy.partition_keys(p.0, 0);
        let nonce = Nonce::new(0xad32, self.issue_nonce.replace(self.issue_nonce.get() + 1));
        let digest = DriveSecurity::request_digest(
            keys.partition.as_bytes(),
            nonce,
            &body.to_wire(),
            &[],
            ProtectionLevel::ArgsIntegrity,
        );
        Request {
            header: nasd_proto::SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce,
            },
            capability: None,
            body,
            digest,
            data: Bytes::new(),
        }
    }

    /// Mint a capability for an object, as the file manager would: rights
    /// over the object's full byte range, expiring `ttl_secs` from now,
    /// under the gold working key.
    #[must_use]
    pub fn issue_capability(
        &self,
        p: PartitionId,
        object: ObjectId,
        rights: Rights,
        ttl_secs: u64,
    ) -> Capability {
        self.issue_capability_region(p, object, rights, ByteRange::FULL, ttl_secs)
    }

    /// Mint a capability restricted to a byte region (the AFS quota-escrow
    /// mechanism uses this).
    #[must_use]
    pub fn issue_capability_region(
        &self,
        p: PartitionId,
        object: ObjectId,
        rights: Rights,
        region: ByteRange,
        ttl_secs: u64,
    ) -> Capability {
        let version = self.store.object_version(p, object).unwrap_or(Version(0));
        let public = CapabilityPublic {
            drive: self.id,
            partition: p,
            object,
            version,
            rights,
            region,
            expires: self.clock + ttl_secs,
            key_kind: KeyKind::Gold,
            min_protection: ProtectionLevel::ArgsIntegrity,
        };
        let key = self
            .security
            .working_key(p, KeyKind::Gold)
            .cloned()
            .unwrap_or_else(|| self.hierarchy.partition_keys(p.0, 0).gold);
        public.mint(&key)
    }

    /// Mint a partition-level capability (create / list), which addresses
    /// `ObjectId(0)` by convention.
    #[must_use]
    pub fn issue_partition_capability(
        &self,
        p: PartitionId,
        rights: Rights,
        ttl_secs: u64,
    ) -> Capability {
        let public = CapabilityPublic {
            drive: self.id,
            partition: p,
            object: ObjectId(0),
            version: Version(0),
            rights,
            region: ByteRange::FULL,
            expires: self.clock + ttl_secs,
            key_kind: KeyKind::Gold,
            min_protection: ProtectionLevel::ArgsIntegrity,
        };
        let key = self
            .security
            .working_key(p, KeyKind::Gold)
            .cloned()
            .unwrap_or_else(|| self.hierarchy.partition_keys(p.0, 0).gold);
        public.mint(&key)
    }

    /// Create a client handle that signs requests with `capability`.
    pub fn client(&mut self, capability: Capability) -> ClientHandle {
        let id = self.next_client;
        self.next_client += 1;
        ClientHandle::new(id, capability)
    }
}

impl<D: nasd_disk::BlockDevice> std::fmt::Debug for NasdDrive<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NasdDrive")
            .field("id", &self.id)
            .field("clock", &self.clock)
            .field("store", &self.store)
            .finish()
    }
}

/// A client-side handle: holds a capability and signs requests with its
/// private field, exactly as a NASD client library would.
#[derive(Debug, Clone)]
pub struct ClientHandle {
    client_id: u64,
    capability: Capability,
    counter: Cell<u64>,
    protection: ProtectionLevel,
}

impl ClientHandle {
    /// Wrap a capability for client `client_id`.
    #[must_use]
    pub fn new(client_id: u64, capability: Capability) -> Self {
        ClientHandle {
            client_id,
            capability,
            counter: Cell::new(1),
            protection: ProtectionLevel::ArgsIntegrity,
        }
    }

    /// The capability in use.
    #[must_use]
    pub fn capability(&self) -> &Capability {
        &self.capability
    }

    /// Use a stronger protection level for subsequent requests.
    pub fn set_protection(&mut self, protection: ProtectionLevel) {
        self.protection = protection;
    }

    /// Build a signed request for `body` carrying `data`.
    #[must_use]
    pub fn build(&self, body: RequestBody, data: Bytes) -> Request {
        let nonce = Nonce::new(self.client_id, self.counter.replace(self.counter.get() + 1));
        let digest = DriveSecurity::request_digest(
            self.capability.private.as_bytes(),
            nonce,
            &body.to_wire(),
            &data,
            self.protection,
        );
        Request {
            header: nasd_proto::SecurityHeader {
                protection: self.protection,
                nonce,
            },
            capability: Some(self.capability.public.clone()),
            body,
            digest,
            data,
        }
    }

    fn target(&self) -> (PartitionId, ObjectId) {
        (
            self.capability.public.partition,
            self.capability.public.object,
        )
    }

    /// Read object data through the drive's full request path. The
    /// payload arrives as a scatter-gather rope of cache-block views;
    /// callers that need contiguous bytes flatten it themselves, at the
    /// last possible moment.
    ///
    /// # Errors
    ///
    /// The drive's [`NasdStatus`] on failure.
    pub fn read<D: nasd_disk::BlockDevice>(
        &self,
        drive: &mut NasdDrive<D>,
        offset: u64,
        len: u64,
    ) -> Result<ByteRope, NasdStatus> {
        let (partition, object) = self.target();
        let req = self.build(
            RequestBody::Read {
                partition,
                object,
                offset,
                len,
            },
            Bytes::new(),
        );
        let (reply, _) = drive.handle(&req);
        match (reply.status, reply.body) {
            (NasdStatus::Ok, ReplyBody::Data(d)) => Ok(d),
            (s, _) if !s.is_ok() => Err(s),
            _ => Err(NasdStatus::DriveError),
        }
    }

    /// Write object data through the drive's full request path.
    ///
    /// # Errors
    ///
    /// The drive's [`NasdStatus`] on failure.
    pub fn write<D: nasd_disk::BlockDevice>(
        &self,
        drive: &mut NasdDrive<D>,
        offset: u64,
        data: &[u8],
    ) -> Result<u64, NasdStatus> {
        let (partition, object) = self.target();
        let req = self.build(
            RequestBody::Write {
                partition,
                object,
                offset,
                len: data.len() as u64,
            },
            // nasd-lint: allow(hot-path-copy, "client write ingest: borrowed caller slice becomes the owned request payload")
            Bytes::copy_from_slice(data),
        );
        let (reply, _) = drive.handle(&req);
        match (reply.status, reply.body) {
            (NasdStatus::Ok, ReplyBody::Written(n)) => Ok(n),
            (s, _) if !s.is_ok() => Err(s),
            _ => Err(NasdStatus::DriveError),
        }
    }

    /// Read object attributes.
    ///
    /// # Errors
    ///
    /// The drive's [`NasdStatus`] on failure.
    pub fn get_attr<D: nasd_disk::BlockDevice>(
        &self,
        drive: &mut NasdDrive<D>,
    ) -> Result<nasd_proto::ObjectAttributes, NasdStatus> {
        let (partition, object) = self.target();
        let req = self.build(RequestBody::GetAttr { partition, object }, Bytes::new());
        let (reply, _) = drive.handle(&req);
        match (reply.status, reply.body) {
            (NasdStatus::Ok, ReplyBody::Attr(a)) => Ok(a),
            (s, _) if !s.is_ok() => Err(s),
            _ => Err(NasdStatus::DriveError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(1);

    fn drive() -> NasdDrive {
        let mut d = NasdDrive::builder(1).build();
        d.admin_create_partition(P, 16 << 20).unwrap();
        d
    }

    #[test]
    fn full_secure_read_write_path() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ | Rights::WRITE, 100);
        let c = d.client(cap);
        assert_eq!(c.write(&mut d, 0, b"secured data").unwrap(), 12);
        assert_eq!(c.read(&mut d, 0, 12).unwrap(), b"secured data");
    }

    #[test]
    fn rights_enforced() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let read_only = d.issue_capability(P, obj, Rights::READ, 100);
        let c = d.client(read_only);
        assert_eq!(
            c.write(&mut d, 0, b"nope").unwrap_err(),
            NasdStatus::AccessDenied
        );
    }

    #[test]
    fn region_enforced() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let full = d.issue_capability(P, obj, Rights::WRITE, 100);
        d.client(full).write(&mut d, 0, &[0u8; 1000]).unwrap();

        let windowed =
            d.issue_capability_region(P, obj, Rights::READ, ByteRange::new(100, 200), 100);
        let c = d.client(windowed);
        assert!(c.read(&mut d, 100, 100).is_ok());
        assert_eq!(
            c.read(&mut d, 100, 101).unwrap_err(),
            NasdStatus::RangeViolation
        );
        assert_eq!(
            c.read(&mut d, 0, 10).unwrap_err(),
            NasdStatus::RangeViolation
        );
    }

    #[test]
    fn expired_capability_rejected() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ, 10);
        let c = d.client(cap);
        assert!(c.read(&mut d, 0, 0).is_ok());
        d.advance_clock(100);
        assert_eq!(c.read(&mut d, 0, 0).unwrap_err(), NasdStatus::AccessDenied);
    }

    #[test]
    fn version_bump_revokes() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ | Rights::SETATTR, 100);
        let c = d.client(cap);
        assert!(c.read(&mut d, 0, 0).is_ok());

        // The file manager bumps the version to revoke.
        let req = c.build(
            RequestBody::SetAttr {
                partition: P,
                object: obj,
                mask: nasd_proto::SetAttrMask::bump_version_only(),
                fs_specific: Box::new([0u8; nasd_proto::FS_SPECIFIC_ATTR_LEN]),
                preallocated: 0,
                cluster_with: None,
            },
            Bytes::new(),
        );
        let (reply, _) = d.handle(&req);
        assert!(reply.status.is_ok());

        // Old capability now fails; a re-issued one works.
        assert_eq!(c.read(&mut d, 0, 0).unwrap_err(), NasdStatus::AccessDenied);
        let fresh = d.issue_capability(P, obj, Rights::READ, 100);
        let c2 = d.client(fresh);
        assert!(c2.read(&mut d, 0, 0).is_ok());
    }

    #[test]
    fn tampered_request_rejected() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ, 100);
        let c = d.client(cap);
        let mut req = c.build(
            RequestBody::Read {
                partition: P,
                object: obj,
                offset: 0,
                len: 4,
            },
            Bytes::new(),
        );
        // Adversary enlarges the read after signing.
        req.body = RequestBody::Read {
            partition: P,
            object: obj,
            offset: 0,
            len: 4_096,
        };
        let (reply, _) = d.handle(&req);
        assert_eq!(reply.status, NasdStatus::AccessDenied);
    }

    #[test]
    fn forged_rights_rejected() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ, 100);
        // Adversary edits the public portion to claim WRITE.
        let mut forged = cap.clone();
        forged.public.rights = Rights::READ | Rights::WRITE;
        let c = ClientHandle::new(99, forged);
        assert_eq!(
            c.write(&mut d, 0, b"evil").unwrap_err(),
            NasdStatus::AccessDenied
        );
    }

    #[test]
    fn replayed_request_rejected() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ, 100);
        let c = d.client(cap);
        let req = c.build(
            RequestBody::Read {
                partition: P,
                object: obj,
                offset: 0,
                len: 0,
            },
            Bytes::new(),
        );
        let (r1, _) = d.handle(&req);
        assert!(r1.status.is_ok());
        let (r2, _) = d.handle(&req);
        assert_eq!(r2.status, NasdStatus::Replay);
    }

    #[test]
    fn setkey_rotates_and_revokes() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ, 100);
        let c = d.client(cap);
        assert!(c.read(&mut d, 0, 0).is_ok());

        // Rotate the gold working key: the capability dies with it.
        let new_key = SecretKey::random_from(b"rotation", 1);
        let req = d.setkey_request(P, KeyKind::Gold, &new_key);
        let (reply, _) = d.handle(&req);
        assert!(reply.status.is_ok(), "{:?}", reply.status);
        assert_eq!(c.read(&mut d, 0, 0).unwrap_err(), NasdStatus::AccessDenied);
    }

    #[test]
    fn admin_ops_require_drive_key() {
        let mut d = drive();
        // Request signed with the wrong key.
        let body = RequestBody::CreatePartition {
            partition: PartitionId(9),
            quota: 1,
        };
        let nonce = Nonce::new(5, 1);
        let digest = DriveSecurity::request_digest(
            b"not the drive key",
            nonce,
            &body.to_wire(),
            &[],
            ProtectionLevel::ArgsIntegrity,
        );
        let req = Request {
            header: nasd_proto::SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce,
            },
            capability: None,
            body,
            digest,
            data: Bytes::new(),
        };
        let (reply, _) = d.handle(&req);
        assert_eq!(reply.status, NasdStatus::AccessDenied);
    }

    #[test]
    fn capability_for_wrong_object_rejected() {
        let mut d = drive();
        let a = d.admin_create_object(P, 0).unwrap();
        let b = d.admin_create_object(P, 0).unwrap();
        let cap_a = d.issue_capability(P, a, Rights::READ, 100);
        let c = d.client(cap_a);
        // Hand-build a request against object b with a's capability.
        let req = c.build(
            RequestBody::Read {
                partition: P,
                object: b,
                offset: 0,
                len: 0,
            },
            Bytes::new(),
        );
        let (reply, _) = d.handle(&req);
        assert_eq!(reply.status, NasdStatus::AccessDenied);
    }

    #[test]
    fn service_report_reflects_cost_and_io() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ | Rights::WRITE, 100);
        let c = d.client(cap);
        c.write(&mut d, 0, &vec![1u8; 65_536]).unwrap();

        let req = c.build(
            RequestBody::Read {
                partition: P,
                object: obj,
                offset: 0,
                len: 65_536,
            },
            Bytes::new(),
        );
        let (reply, report) = d.handle(&req);
        assert!(reply.status.is_ok());
        assert_eq!(report.kind, OpKind::Read);
        // Warm 64 KB read: Table 1 says ~224k instructions, ~97% comm.
        assert!(report.cost.total() > 150_000.0);
        assert!(report.cost.pct_comm() > 90.0);
        assert!(report.trace.is_warm());
    }

    #[test]
    fn disabled_security_accepts_anything() {
        let mut config = DriveConfig::small();
        config.security_enabled = false;
        let mut d = NasdDrive::builder(1).config(config).build();
        d.admin_create_partition(P, 1 << 20).unwrap();
        let obj = d.admin_create_object(P, 0).unwrap();
        // Garbage capability, garbage digest: accepted when disabled.
        let cap = d.issue_capability(P, obj, Rights::NONE, 0);
        let c = ClientHandle::new(7, cap);
        assert!(c.read(&mut d, 0, 0).is_ok());
    }

    #[test]
    fn snapshot_via_wire() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ | Rights::WRITE | Rights::SNAPSHOT, 100);
        let c = d.client(cap);
        c.write(&mut d, 0, b"before").unwrap();
        let req = c.build(
            RequestBody::Snapshot {
                partition: P,
                object: obj,
            },
            Bytes::new(),
        );
        let (reply, _) = d.handle(&req);
        let ReplyBody::Created(snap) = reply.body else {
            panic!("expected snapshot id, got {reply:?}");
        };
        c.write(&mut d, 0, b"after!").unwrap();
        let snap_cap = d.issue_capability(P, snap, Rights::READ, 100);
        let sc = d.client(snap_cap);
        assert_eq!(sc.read(&mut d, 0, 6).unwrap(), b"before");
    }

    #[test]
    fn list_objects_via_wire() {
        let mut d = drive();
        let a = d.admin_create_object(P, 0).unwrap();
        let b = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_partition_capability(P, Rights::GETATTR, 100);
        let c = d.client(cap);
        let req = c.build(RequestBody::ListObjects { partition: P }, Bytes::new());
        let (reply, _) = d.handle(&req);
        assert_eq!(reply.body, ReplyBody::Objects(vec![a, b]));
    }

    #[test]
    fn well_known_object_lists_namespace() {
        let mut d = drive();
        let a = d.admin_create_object(P, 0).unwrap();
        let b = d.admin_create_object(P, 0).unwrap();
        // A capability for the well-known object-list object.
        let cap = d.issue_capability(P, nasd_proto::WELL_KNOWN_OBJECT_LIST, Rights::READ, 100);
        let c = d.client(cap);
        let data = c.read(&mut d, 0, 1 << 16).unwrap().flatten();
        // Decode: count + ids.
        let mut r = nasd_proto::wire::WireReader::new(&data);
        let n = r.u32().unwrap();
        assert_eq!(n, 2);
        let ids: Vec<ObjectId> = (0..n)
            .map(|_| nasd_proto::wire::WireDecode::decode(&mut r).unwrap())
            .collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn drive_survives_power_cycle() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::READ | Rights::WRITE, 1_000);
        let c = d.client(cap.clone());
        c.write(&mut d, 0, b"durable across reboot").unwrap();
        d.checkpoint().unwrap();

        // "Power off": recover the device, reopen the drive.
        let device = d.store().cache().device().clone();
        drop(d);
        let mut d2 = NasdDrive::builder(1).open(device).expect("remount");

        // The pre-reboot capability still verifies (keys re-derived) and
        // the data is intact.
        let c2 = ClientHandle::new(99, cap);
        assert_eq!(c2.read(&mut d2, 0, 21).unwrap(), b"durable across reboot");
        // New objects continue from the persisted namespace.
        let next = d2.admin_create_object(P, 0).unwrap();
        assert!(next > obj);
    }

    #[test]
    fn open_blank_device_fails() {
        let device = nasd_disk::MemDisk::new(8_192, 256);
        assert!(matches!(
            NasdDrive::builder(1).open(device),
            Err(StoreError::NotFormatted)
        ));
    }

    #[test]
    fn write_length_mismatch_rejected() {
        let mut d = drive();
        let obj = d.admin_create_object(P, 0).unwrap();
        let cap = d.issue_capability(P, obj, Rights::WRITE, 100);
        let c = d.client(cap);
        let req = c.build(
            RequestBody::Write {
                partition: P,
                object: obj,
                offset: 0,
                len: 10, // claims 10
            },
            Bytes::from_static(b"four"), // carries 4
        );
        let (reply, _) = d.handle(&req);
        assert_eq!(reply.status, NasdStatus::BadRequest);
    }
}
