//! The drive's block cache.
//!
//! Sits between the object layer and the [`BlockDevice`]: an LRU cache of
//! device blocks with write-behind (dirty blocks are flushed on eviction
//! or explicit flush). Every device access performed on behalf of an
//! operation is recorded in an [`IoTrace`] so that (a) the cost meter can
//! distinguish the paper's *cold* and *warm* code paths and (b) the
//! simulation harnesses can replay the physical I/O against a mechanical
//! [`DiskModel`](nasd_disk::DiskModel) for timing.

use bytes::Bytes;
use nasd_disk::{BlockDevice, DiskError};
use std::collections::HashMap;
use std::sync::Arc;

/// One physical device access captured during an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoRecord {
    /// `count` blocks read from the device starting at `block`.
    Read {
        /// First device block.
        block: u64,
        /// Blocks read.
        count: u64,
    },
    /// `count` blocks written to the device starting at `block`.
    Write {
        /// First device block.
        block: u64,
        /// Blocks written.
        count: u64,
    },
}

/// The device I/O performed by one operation, plus hit/miss counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IoTrace {
    /// Physical accesses in issue order (adjacent blocks coalesced).
    pub records: Vec<IoRecord>,
    /// Block lookups satisfied by the cache.
    pub hits: u64,
    /// Block lookups that went to the device.
    pub misses: u64,
}

impl IoTrace {
    /// Whether the operation touched the device at all.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.records.is_empty()
    }

    /// Total blocks read from the device.
    #[must_use]
    pub fn blocks_read(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                IoRecord::Read { count, .. } => *count,
                IoRecord::Write { .. } => 0,
            })
            .sum()
    }

    /// Total blocks written to the device.
    #[must_use]
    pub fn blocks_written(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                IoRecord::Write { count, .. } => *count,
                IoRecord::Read { .. } => 0,
            })
            .sum()
    }

    fn push_read(&mut self, block: u64) {
        self.misses += 1;
        if let Some(IoRecord::Read { block: b, count }) = self.records.last_mut() {
            if *b + *count == block {
                *count += 1;
                return;
            }
        }
        self.records.push(IoRecord::Read { block, count: 1 });
    }

    fn push_write(&mut self, block: u64) {
        if let Some(IoRecord::Write { block: b, count }) = self.records.last_mut() {
            if *b + *count == block {
                *count += 1;
                return;
            }
        }
        self.records.push(IoRecord::Write { block, count: 1 });
    }
}

/// Cumulative cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied without device I/O.
    pub hits: u64,
    /// Lookups requiring a device read.
    pub misses: u64,
    /// Dirty blocks written back to the device.
    pub writebacks: u64,
    /// Blocks evicted (clean or dirty).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// Block contents, shareable with readers: [`BlockCache::read_shared`]
    /// hands out O(1) [`Bytes`] views of this allocation, and writes go
    /// copy-on-write when such a view is still alive.
    data: Arc<[u8]>,
    dirty: bool,
    /// LRU clock: larger = more recent.
    used: u64,
}

impl Entry {
    /// Mutable access to the block, cloning it first if a reader still
    /// holds a shared view (copy-on-write).
    fn data_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.data).is_none() {
            bytes::stats::record_copy(self.data.len());
            self.data = Arc::from(&*self.data);
        }
        // nasd-lint: allow(panic, "the arc above was just re-created with refcount 1")
        Arc::get_mut(&mut self.data).expect("freshly cloned block is unshared")
    }
}

/// LRU block cache with write-behind over a [`BlockDevice`].
///
/// # Example
///
/// ```
/// use nasd_disk::MemDisk;
/// use nasd_object::{BlockCache, IoTrace};
///
/// let mut cache = BlockCache::new(MemDisk::new(512, 64), 8);
/// let mut trace = IoTrace::default();
/// cache.write(3, &vec![7u8; 512], &mut trace)?;      // absorbed, no I/O
/// assert!(trace.is_warm());
/// assert_eq!(cache.read(3, &mut trace)?[0], 7);       // hit
/// cache.flush(&mut trace)?;                           // write-behind drains
/// assert_eq!(trace.blocks_written(), 1);
/// # Ok::<(), nasd_disk::DiskError>(())
/// ```
pub struct BlockCache<D> {
    device: D,
    capacity_blocks: usize,
    entries: HashMap<u64, Entry>,
    clock: u64,
    stats: CacheStats,
}

impl<D: BlockDevice> BlockCache<D> {
    /// Wrap `device` with a cache of `capacity_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    #[must_use]
    pub fn new(device: D, capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "cache needs at least one block");
        BlockCache {
            device,
            capacity_blocks,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable access to the wrapped device, bypassing the cache. Used
    /// by the WAL and checkpoint paths, whose writes must reach the
    /// media *now* and in order — write-behind would destroy exactly
    /// the ordering their crash-consistency argument depends on. Callers
    /// must not touch blocks the cache also holds.
    #[must_use]
    pub(crate) fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Block size of the underlying device.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.device.block_size()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Blocks currently cached.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Whether `block` is currently cached (does not touch LRU state).
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.entries.contains_key(&block)
    }

    fn touch(&mut self, block: u64) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&block) {
            e.used = self.clock;
        }
    }

    /// Make room for one more entry, evicting the LRU entry if full.
    fn evict_if_full(&mut self, trace: &mut IoTrace) -> Result<(), DiskError> {
        while self.entries.len() >= self.capacity_blocks {
            // An empty cache can only be "full" at capacity zero; there is
            // nothing to evict then.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(&b, _)| b)
            else {
                break;
            };
            let Some(entry) = self.entries.remove(&victim) else {
                break;
            };
            self.stats.evictions += 1;
            if entry.dirty {
                self.device.write_block(victim, &entry.data)?;
                trace.push_write(victim);
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Read one block through the cache. Returns a reference to the
    /// cached data (valid until the next cache call).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read(&mut self, block: u64, trace: &mut IoTrace) -> Result<&[u8], DiskError> {
        self.fill(block, trace)?;
        match self.entries.get(&block) {
            Some(e) => Ok(&e.data),
            // Unreachable in practice: the block was resident or was just
            // inserted above; report rather than panic mid-request.
            None => Err(DiskError::OutOfRange {
                block,
                device_blocks: self.device.num_blocks(),
            }),
        }
    }

    /// Read one block through the cache as an O(1) shared view of the
    /// cached allocation — the zero-copy read path. The view stays valid
    /// (and immutable) even if the block is later written or evicted:
    /// writes to a shared block go copy-on-write.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_shared(&mut self, block: u64, trace: &mut IoTrace) -> Result<Bytes, DiskError> {
        self.fill(block, trace)?;
        match self.entries.get(&block) {
            Some(e) => Ok(Bytes::from_arc(Arc::clone(&e.data))),
            None => Err(DiskError::OutOfRange {
                block,
                device_blocks: self.device.num_blocks(),
            }),
        }
    }

    /// Ensure `block` is resident, reading it from the device on a miss.
    fn fill(&mut self, block: u64, trace: &mut IoTrace) -> Result<(), DiskError> {
        if self.entries.contains_key(&block) {
            self.stats.hits += 1;
            trace.hits += 1;
            self.touch(block);
        } else {
            self.evict_if_full(trace)?;
            let mut buf = vec![0u8; self.device.block_size()];
            self.device.read_block(block, &mut buf)?;
            // Vec -> Arc<[u8]> moves the bytes into the refcounted
            // allocation: a real (cold-path) copy, so the ledger sees it.
            bytes::stats::record_copy(buf.len());
            self.stats.misses += 1;
            trace.push_read(block);
            self.clock += 1;
            self.entries.insert(
                block,
                Entry {
                    data: Arc::from(buf),
                    dirty: false,
                    used: self.clock,
                },
            );
        }
        Ok(())
    }

    /// Write one full block through the cache (write-behind: the device
    /// write is deferred to eviction or [`Self::flush`]).
    ///
    /// # Errors
    ///
    /// [`DiskError::BadBufferSize`] if `data` is not exactly one block;
    /// device errors from any eviction writeback.
    pub fn write(&mut self, block: u64, data: &[u8], trace: &mut IoTrace) -> Result<(), DiskError> {
        if data.len() != self.device.block_size() {
            return Err(DiskError::BadBufferSize {
                expected: self.device.block_size(),
                got: data.len(),
            });
        }
        if let Some(e) = self.entries.get_mut(&block) {
            // Full-block overwrite: one ingest copy either way. In place
            // when the block is unshared; otherwise a fresh allocation so
            // readers keep their (old) view untouched.
            bytes::stats::record_copy(data.len());
            match Arc::get_mut(&mut e.data) {
                // nasd-lint: allow(hot-path-copy, "write ingest: the one mandated copy into the cache block")
                Some(d) => d.copy_from_slice(data),
                None => e.data = Arc::from(data),
            }
            e.dirty = true;
            self.stats.hits += 1;
            trace.hits += 1;
            self.touch(block);
        } else {
            self.evict_if_full(trace)?;
            self.clock += 1;
            bytes::stats::record_copy(data.len());
            self.entries.insert(
                block,
                Entry {
                    data: Arc::from(data),
                    dirty: true,
                    used: self.clock,
                },
            );
            // A full-block overwrite needs no device read; count it as a
            // (write) hit for Table 1's warm/cold distinction.
            self.stats.hits += 1;
            trace.hits += 1;
        }
        Ok(())
    }

    /// Read-modify-write a partial block.
    ///
    /// # Errors
    ///
    /// Propagates device errors; panics are avoided by validating the
    /// range against the block size.
    pub fn write_partial(
        &mut self,
        block: u64,
        offset: usize,
        data: &[u8],
        trace: &mut IoTrace,
    ) -> Result<(), DiskError> {
        let bs = self.device.block_size();
        if offset + data.len() > bs {
            return Err(DiskError::BadBufferSize {
                expected: bs,
                got: offset + data.len(),
            });
        }
        // Bring the block in (read-modify-write).
        self.read(block, trace)?;
        let e = self.entries.get_mut(&block).ok_or(DiskError::OutOfRange {
            block,
            device_blocks: self.device.num_blocks(),
        })?;
        bytes::stats::record_copy(data.len());
        e.data_mut()
            .get_mut(offset..offset + data.len())
            .ok_or(DiskError::BadBufferSize {
                expected: bs,
                got: offset + data.len(),
            })?
            // nasd-lint: allow(hot-path-copy, "partial-write ingest into the cached block")
            .copy_from_slice(data);
        e.dirty = true;
        Ok(())
    }

    /// Drop a block from the cache without writeback (used when the block
    /// is freed — its contents are dead).
    pub fn discard(&mut self, block: u64) {
        self.entries.remove(&block);
    }

    /// Write all dirty blocks to the device.
    ///
    /// # Errors
    ///
    /// Propagates device errors; blocks written before an error remain
    /// clean.
    pub fn flush(&mut self, trace: &mut IoTrace) -> Result<(), DiskError> {
        let mut dirty: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&b, _)| b)
            .collect();
        dirty.sort_unstable(); // elevator order
        for block in dirty {
            // A block listed dirty a moment ago but now gone has nothing
            // left to write back.
            let Some(e) = self.entries.get_mut(&block) else {
                continue;
            };
            self.device.write_block(block, &e.data)?;
            e.dirty = false;
            trace.push_write(block);
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Flush and return the device (teardown path — C-DTOR-FAIL says do
    /// fallible work here, not in `Drop`).
    ///
    /// # Errors
    ///
    /// Propagates device errors from the final flush.
    pub fn into_device(mut self) -> Result<D, DiskError> {
        let mut trace = IoTrace::default();
        self.flush(&mut trace)?;
        Ok(self.device)
    }
}

impl<D: BlockDevice> std::fmt::Debug for BlockCache<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity_blocks", &self.capacity_blocks)
            .field("resident", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasd_disk::MemDisk;

    fn cache(cap: usize) -> BlockCache<MemDisk> {
        BlockCache::new(MemDisk::new(512, 1024), cap)
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        let _ = c.read(5, &mut t).unwrap();
        assert_eq!((t.hits, t.misses), (0, 1));
        assert_eq!(t.blocks_read(), 1);
        let _ = c.read(5, &mut t).unwrap();
        assert_eq!((t.hits, t.misses), (1, 1));
        assert_eq!(c.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn full_block_write_is_absorbed() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        c.write(3, &[9u8; 512], &mut t).unwrap();
        assert!(t.is_warm(), "write-behind should not touch the device");
        // Data readable through cache.
        assert_eq!(c.read(3, &mut t).unwrap()[0], 9);
    }

    #[test]
    fn partial_write_reads_then_modifies() {
        let mut c = cache(4);
        // Seed the device with recognizable data.
        let mut t = IoTrace::default();
        c.write(0, &[1u8; 512], &mut t).unwrap();
        c.flush(&mut t).unwrap();
        c.discard(0);

        let mut t = IoTrace::default();
        c.write_partial(0, 10, &[2u8; 5], &mut t).unwrap();
        assert_eq!(t.misses, 1, "partial write must read-modify-write");
        let data = c.read(0, &mut t).unwrap();
        assert_eq!(data[9], 1);
        assert_eq!(&data[10..15], &[2u8; 5]);
        assert_eq!(data[15], 1);
    }

    #[test]
    fn partial_write_beyond_block_rejected() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        assert!(c.write_partial(0, 510, &[0u8; 5], &mut t).is_err());
    }

    #[test]
    fn eviction_writes_back_dirty_lru() {
        let mut c = cache(2);
        let mut t = IoTrace::default();
        c.write(1, &[1u8; 512], &mut t).unwrap();
        c.write(2, &[2u8; 512], &mut t).unwrap();
        assert!(t.is_warm());
        // Touch 1 so 2 becomes LRU.
        let _ = c.read(1, &mut t).unwrap();
        let mut t = IoTrace::default();
        c.write(3, &[3u8; 512], &mut t).unwrap();
        assert_eq!(t.blocks_written(), 1, "dirty LRU written back");
        assert_eq!(t.records[0], IoRecord::Write { block: 2, count: 1 });
        assert!(!c.contains(2));
        assert!(c.contains(1) && c.contains(3));
        assert_eq!(c.stats().evictions, 1);
        // Device now holds block 2's data.
        let mut buf = vec![0u8; 512];
        c.device().read_block(2, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn flush_drains_in_elevator_order() {
        let mut c = cache(8);
        let mut t = IoTrace::default();
        for b in [5u64, 1, 3] {
            c.write(b, &[b as u8; 512], &mut t).unwrap();
        }
        let mut t = IoTrace::default();
        c.flush(&mut t).unwrap();
        let order: Vec<u64> = t
            .records
            .iter()
            .map(|r| match r {
                IoRecord::Write { block, .. } => *block,
                IoRecord::Read { .. } => panic!("flush must not read"),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
        // Second flush is a no-op.
        let mut t2 = IoTrace::default();
        c.flush(&mut t2).unwrap();
        assert!(t2.is_warm());
    }

    #[test]
    fn discard_drops_without_writeback() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        c.write(7, &[7u8; 512], &mut t).unwrap();
        c.discard(7);
        let mut t = IoTrace::default();
        c.flush(&mut t).unwrap();
        assert!(t.is_warm(), "discarded dirty block must not be written");
    }

    #[test]
    fn trace_coalesces_adjacent_blocks() {
        let mut c = cache(8);
        let mut t = IoTrace::default();
        for b in 0..4u64 {
            let _ = c.read(b, &mut t).unwrap();
        }
        assert_eq!(t.records, vec![IoRecord::Read { block: 0, count: 4 }]);
        assert_eq!(t.blocks_read(), 4);
    }

    #[test]
    fn into_device_flushes() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        c.write(0, &[5u8; 512], &mut t).unwrap();
        let dev = c.into_device().unwrap();
        let mut buf = vec![0u8; 512];
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 5);
    }

    #[test]
    fn capacity_respected() {
        let mut c = cache(3);
        let mut t = IoTrace::default();
        for b in 0..10u64 {
            let _ = c.read(b, &mut t).unwrap();
        }
        assert!(c.resident() <= 3);
    }

    #[test]
    fn hit_ratio_empty_is_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn read_shared_hit_copies_nothing() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        c.write(3, &[9u8; 512], &mut t).unwrap();
        let warm = c.read_shared(3, &mut t).unwrap();
        let before = bytes::stats::bytes_copied();
        let again = c.read_shared(3, &mut t).unwrap();
        assert_eq!(
            bytes::stats::bytes_copied(),
            before,
            "warm shared read must not copy the block"
        );
        // Both views alias the same cached allocation.
        assert_eq!(warm.as_ref().as_ptr(), again.as_ref().as_ptr());
        assert_eq!(&warm[..], &[9u8; 512][..]);
    }

    #[test]
    fn write_after_shared_read_leaves_the_view_untouched() {
        let mut c = cache(4);
        let mut t = IoTrace::default();
        c.write(0, &[1u8; 512], &mut t).unwrap();
        let view = c.read_shared(0, &mut t).unwrap();
        c.write(0, &[2u8; 512], &mut t).unwrap();
        c.write_partial(0, 5, &[3u8; 2], &mut t).unwrap();
        assert_eq!(&view[..], &[1u8; 512][..], "old view is immutable");
        let now = c.read_shared(0, &mut t).unwrap();
        assert_eq!(now[0], 2);
        assert_eq!(&now[5..7], &[3u8; 2]);
    }

    #[test]
    fn eviction_with_live_view_writes_back_correct_data() {
        let mut c = cache(2);
        let mut t = IoTrace::default();
        c.write(1, &[1u8; 512], &mut t).unwrap();
        let view = c.read_shared(1, &mut t).unwrap();
        c.write(2, &[2u8; 512], &mut t).unwrap();
        // Evict block 1 (LRU) while the view is alive.
        c.write(3, &[3u8; 512], &mut t).unwrap();
        assert!(!c.contains(1));
        assert_eq!(&view[..], &[1u8; 512][..]);
        let mut buf = vec![0u8; 512];
        c.device().read_block(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "writeback must carry the block contents");
    }
}
