//! Property tests for the scatter-gather read path: `ObjectStore::read`
//! now returns a [`bytes::ByteRope`] of cache-block views instead of a
//! flat copy, and this file proves the rope is byte-for-byte identical
//! to the flat reference model across random offset/len/block-size
//! combinations — including reads that span zero-filled gap blocks
//! created by writes past end-of-object.

use nasd_disk::MemDisk;
use nasd_object::{IoTrace, ObjectStore};
use nasd_proto::{ObjectId, PartitionId};
use proptest::prelude::*;

const BLOCK_SIZES: [usize; 3] = [512, 2048, 8192];

fn seeded_store(
    bs: usize,
    cache_blocks: usize,
    writes: &[(u64, usize, u8)],
) -> (ObjectStore<MemDisk>, PartitionId, ObjectId, Vec<u8>) {
    let mut store = ObjectStore::new(MemDisk::new(bs, 4096), cache_blocks);
    let p = PartitionId(1);
    store.create_partition(p, 1 << 30).unwrap();
    let mut t = IoTrace::default();
    let obj = store.create_object(p, 0, None, 0, &mut t).unwrap();
    let mut model: Vec<u8> = Vec::new();
    for &(offset, len, byte) in writes {
        store
            .write(p, obj, offset, &vec![byte; len], 0, &mut t)
            .unwrap();
        let end = offset as usize + len;
        if model.len() < end {
            // Writes past end-of-object leave a zero-filled gap, same
            // as the store's eager gap blocks.
            model.resize(end, 0);
        }
        model[offset as usize..end].fill(byte);
    }
    (store, p, obj, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rope a read returns flattens to exactly what the old flat
    /// read produced: the model slice, truncated at end-of-object.
    /// Write offsets jump around so reads cross zero-filled gap blocks,
    /// and the 16-block cache forces eviction/refill along the way.
    #[test]
    fn rope_read_matches_flat_model(
        bs_sel in 0usize..BLOCK_SIZES.len(),
        writes in proptest::collection::vec(
            (0u64..120_000, 1usize..20_000, any::<u8>()),
            1..12
        ),
        reads in proptest::collection::vec(
            (0u64..140_000, 0u64..40_000),
            1..16
        ),
    ) {
        let bs = BLOCK_SIZES[bs_sel];
        let (mut store, p, obj, model) = seeded_store(bs, 16, &writes);
        let mut t = IoTrace::default();
        for (offset, len) in reads {
            let got = store.read(p, obj, offset, len, 1, &mut t).unwrap();
            let start = (offset as usize).min(model.len());
            let end = (offset as usize).saturating_add(len as usize).min(model.len());
            prop_assert_eq!(
                got.to_vec(),
                model[start..end].to_vec(),
                "offset {} len {} bs {}",
                offset, len, bs
            );
        }
    }

    /// Cache-warm reads are zero-copy: once every block of the range is
    /// resident, re-reading it moves no payload bytes — the rope is
    /// views of the cached blocks, not copies.
    #[test]
    fn warm_reads_copy_nothing(
        bs_sel in 0usize..BLOCK_SIZES.len(),
        fill in any::<u8>(),
        size in 1usize..30_000,
        offset in 0u64..30_000,
        len in 0u64..35_000,
    ) {
        let bs = BLOCK_SIZES[bs_sel];
        // Cache big enough to hold the whole object: no eviction, so
        // the second read finds every block resident.
        let (mut store, p, obj, model) = seeded_store(bs, 128, &[(0, size, fill)]);
        let mut t = IoTrace::default();
        let cold = store.read(p, obj, offset, len, 1, &mut t).unwrap();
        let before = bytes::stats::bytes_copied();
        let warm = store.read(p, obj, offset, len, 2, &mut t).unwrap();
        prop_assert_eq!(
            bytes::stats::bytes_copied(), before,
            "warm read of a resident range must not copy payload bytes"
        );
        prop_assert_eq!(cold.to_vec(), warm.to_vec());
        let start = (offset as usize).min(model.len());
        let end = (offset as usize).saturating_add(len as usize).min(model.len());
        prop_assert_eq!(warm.to_vec(), model[start..end].to_vec());
    }
}
