//! Property tests for metadata corruption detection.
//!
//! Every on-disk metadata structure carries a [`checksum64`]; these
//! properties prove the promise that matters at `open` time: a bit flip
//! anywhere in the superblock, allocation bitmap, or index checkpoint is
//! *detected* — `open` either recovers through a redundant copy (the
//! secondary superblock) or fails with a clean [`StoreError::Corrupt`],
//! never a panic and never silently serving damaged state.

use nasd_disk::{BlockDevice, MemDisk, SharedDisk};
use nasd_object::{checksum64, IoTrace, Layout, ObjectStore, StoreError};
use nasd_proto::{ObjectId, PartitionId};
use proptest::prelude::*;

const BS: usize = 512;
const BLOCKS: u64 = 2_048;
const P: PartitionId = PartitionId(1);

/// Encoded superblock length (must match `layout::SB_BYTES`): magic +
/// version + block_size + 10 u64 fields + trailing checksum. Flips are
/// confined to these bytes — the rest of the block is padding that no
/// checksum covers and no reader interprets.
const SB_BYTES: usize = 8 + 4 + 4 + 8 * 10 + 8;

/// Format a device with one partition and three objects of known
/// content, checkpointed exactly once (checkpoint epoch 1, so the *odd*
/// bitmap/index copies are live).
fn formatted_media() -> SharedDisk {
    let media = SharedDisk::new(MemDisk::new(BS, BLOCKS));
    let mut store = ObjectStore::new(media.clone(), 32);
    let mut t = IoTrace::default();
    store.create_partition(P, 1 << 20).unwrap();
    for i in 0..3u8 {
        let o = store.create_object(P, 0, None, 0, &mut t).unwrap();
        let fill = vec![0x40 + i; 700 + 300 * i as usize];
        store.write(P, o, 0, &fill, 0, &mut t).unwrap();
    }
    store.checkpoint(&mut t).unwrap();
    media
}

/// Digest of the full logical state, for "fallback preserved everything"
/// assertions.
fn state_digest(store: &mut ObjectStore<SharedDisk>) -> u64 {
    let mut t = IoTrace::default();
    let mut h = 0u64;
    for o in store.list_objects(P).unwrap() {
        let len = store.get_attr(P, o, 0).unwrap().size;
        let data = store.read(P, o, 0, len, 0, &mut t).unwrap().to_vec();
        h = checksum64(&data) ^ h.rotate_left(9) ^ o.0;
    }
    h
}

fn flip(media: &mut SharedDisk, block: u64, byte: usize, bit: u8) {
    let mut buf = vec![0u8; BS];
    media.read_block(block, &mut buf).unwrap();
    buf[byte] ^= 1 << bit;
    media.write_block(block, &buf).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A bit flip anywhere in the primary superblock is survived: `open`
    /// falls back to the secondary copy and every object reads back
    /// intact.
    #[test]
    fn flipped_primary_superblock_falls_back_to_secondary(
        byte in 0usize..SB_BYTES,
        bit in 0u8..8,
    ) {
        let pristine = formatted_media();
        let want = state_digest(&mut ObjectStore::open(pristine, 32).unwrap());

        let mut media = formatted_media();
        flip(&mut media, 0, byte, bit);
        let mut store = ObjectStore::open(media, 32).unwrap();
        prop_assert_eq!(state_digest(&mut store), want);
    }

    /// The same flip in the *secondary* is equally survivable — the
    /// primary answers and the damage is invisible.
    #[test]
    fn flipped_secondary_superblock_is_invisible(
        byte in 0usize..SB_BYTES,
        bit in 0u8..8,
    ) {
        let pristine = formatted_media();
        let want = state_digest(&mut ObjectStore::open(pristine, 32).unwrap());

        let mut media = formatted_media();
        flip(&mut media, 1, byte, bit);
        let mut store = ObjectStore::open(media, 32).unwrap();
        prop_assert_eq!(state_digest(&mut store), want);
    }

    /// Flipping a bit in the *body* of both superblock copies of a
    /// formatted device is unrecoverable — `open` reports a clean
    /// [`StoreError::Corrupt`] (never a panic, and never `NotFormatted`,
    /// which would invite a data-destroying reformat of a device that
    /// plainly held state). The magic field is excluded here: both
    /// magics present but both checksums broken is provably damage.
    #[test]
    fn flipped_both_superblocks_is_a_clean_corrupt_error(
        byte0 in 8usize..SB_BYTES,
        bit0 in 0u8..8,
        byte1 in 8usize..SB_BYTES,
        bit1 in 0u8..8,
    ) {
        let mut media = formatted_media();
        flip(&mut media, 0, byte0, bit0);
        flip(&mut media, 1, byte1, bit1);
        prop_assert!(matches!(
            ObjectStore::open(media, 32),
            Err(StoreError::Corrupt(_))
        ));
    }

    /// When a flip lands in the 8-byte *magic* of one or both copies,
    /// the damaged copy is indistinguishable from a never-formatted
    /// block — the magic IS the format marker. `open` may then report
    /// `NotFormatted` (both magics gone, or one gone and the survivor's
    /// checksum broken: the same signature a crash during first format
    /// leaves). The contract that still holds, and that this property
    /// pins: a clean typed error, never a panic, never silent success
    /// off damaged copies.
    #[test]
    fn flipped_superblock_magic_is_a_clean_typed_error(
        byte0 in 0usize..8,
        bit0 in 0u8..8,
        byte1 in 0usize..SB_BYTES,
        bit1 in 0u8..8,
    ) {
        let mut media = formatted_media();
        flip(&mut media, 0, byte0, bit0);
        flip(&mut media, 1, byte1, bit1);
        prop_assert!(matches!(
            ObjectStore::open(media, 32),
            Err(StoreError::Corrupt(_) | StoreError::NotFormatted)
        ));
    }

    /// A bit flip anywhere in a live allocation-bitmap block — payload
    /// or trailer — is caught on `open` as a clean `Corrupt` error.
    #[test]
    fn flipped_bitmap_block_is_rejected_on_open(
        byte in 0usize..BS,
        bit in 0u8..8,
        pick in 0u64..1_000,
    ) {
        let mut media = formatted_media();
        // Checkpoint epoch is 1, so the odd (second) copy is live.
        let layout = Layout::compute(BS, BLOCKS);
        let live = layout.bitmap_start + layout.bitmap_blocks;
        flip(&mut media, live + pick % layout.bitmap_blocks, byte, bit);
        prop_assert!(matches!(
            ObjectStore::open(media, 32),
            Err(StoreError::Corrupt(_))
        ));
    }

    /// A bit flip in the live index-checkpoint payload is caught on
    /// `open` as a clean `Corrupt` error. (The flip lands in the first
    /// 64 bytes, safely inside any non-empty checkpoint.)
    #[test]
    fn flipped_index_checkpoint_is_rejected_on_open(
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let mut media = formatted_media();
        let layout = Layout::compute(BS, BLOCKS);
        let live = layout.index_start + layout.index_blocks;
        flip(&mut media, live, byte, bit);
        prop_assert!(matches!(
            ObjectStore::open(media, 32),
            Err(StoreError::Corrupt(_))
        ));
    }
}

/// The stale bitmap/index copies (epoch 0, the even pair) are dead after
/// the epoch-1 checkpoint: damaging them changes nothing.
#[test]
fn flipping_the_stale_metadata_copies_is_harmless() {
    let pristine = formatted_media();
    let want = state_digest(&mut ObjectStore::open(pristine, 32).unwrap());

    let mut media = formatted_media();
    let layout = Layout::compute(BS, BLOCKS);
    for b in layout.bitmap_start..layout.bitmap_start + layout.bitmap_blocks {
        flip(&mut media, b, 17, 3);
    }
    flip(&mut media, layout.index_start, 5, 6);
    let mut store = ObjectStore::open(media, 32).unwrap();
    assert_eq!(state_digest(&mut store), want);
}

/// Objects created after the checkpoint live only in the WAL; a corrupt
/// live bitmap must still be detected even though replay would have
/// rebuilt past it — detection happens before replay, from the
/// checkpointed state alone.
#[test]
fn bitmap_damage_detected_even_with_wal_tail_pending() {
    let media = formatted_media();
    {
        let mut store = ObjectStore::open(media.clone(), 32).unwrap();
        store.enable_wal(true);
        let mut t = IoTrace::default();
        let o = store.create_object(P, 0, None, 0, &mut t).unwrap();
        store.write(P, o, 0, &[0x77; 300], 0, &mut t).unwrap();
        store.wal_commit(&mut t).unwrap();
        assert!(store.wal_durable_bytes() > 0);
    }
    let mut media = media;
    let layout = Layout::compute(BS, BLOCKS);
    flip(&mut media, layout.bitmap_start + layout.bitmap_blocks, 9, 1);
    assert!(matches!(
        ObjectStore::open(media, 32),
        Err(StoreError::Corrupt(_))
    ));
}

/// Sanity anchor for the digest helper: distinct formatted devices agree,
/// and the digest actually depends on object bytes.
#[test]
fn state_digest_tracks_content() {
    let a = formatted_media();
    let b = formatted_media();
    let da = state_digest(&mut ObjectStore::open(a, 32).unwrap());
    let db = state_digest(&mut ObjectStore::open(b, 32).unwrap());
    assert_eq!(da, db);

    let c = SharedDisk::new(MemDisk::new(BS, BLOCKS));
    let mut store = ObjectStore::new(c.clone(), 32);
    let mut t = IoTrace::default();
    store.create_partition(P, 1 << 20).unwrap();
    let o = store.create_object(P, 0, None, 0, &mut t).unwrap();
    assert_eq!(o, ObjectId(nasd_object::FIRST_DYNAMIC_OBJECT));
    store.write(P, o, 0, &[1, 2, 3], 0, &mut t).unwrap();
    store.checkpoint(&mut t).unwrap();
    let dc = state_digest(&mut ObjectStore::open(c, 32).unwrap());
    assert_ne!(da, dc);
}
