//! Property tests for write-ahead-log replay.
//!
//! The three contracts the recovery path promises, proven across random
//! operation sequences:
//!
//! * **prefix durability** — after any number of committed operations,
//!   remounting the media reproduces exactly the model state of those
//!   operations, with no checkpoint in between;
//! * **idempotence** — replaying the same log prefix twice (a crash
//!   during recovery, before the next checkpoint) yields the same state
//!   as replaying it once;
//! * **torn tails roll back cleanly** — corrupting or truncating the
//!   tail of the log never breaks `open`; the recovered state is the
//!   model state at some operation prefix (never an invented state, and
//!   never a loss of records before the damage).

use nasd_disk::{BlockDevice, MemDisk, SharedDisk};
use nasd_object::{IoTrace, ObjectStore};
use nasd_proto::{ObjectId, PartitionId};
use proptest::prelude::*;
use std::collections::BTreeMap;

const BS: usize = 512;
const BLOCKS: u64 = 2_048;
const P: PartitionId = PartitionId(1);

/// A workload step, with everything needed to apply it to both the
/// store and the flat model.
#[derive(Clone, Debug)]
enum Op {
    Create,
    Write {
        slot: usize,
        offset: u64,
        len: usize,
        fill: u8,
    },
    Resize {
        slot: usize,
        new_size: u64,
    },
    Remove {
        slot: usize,
    },
    Snapshot {
        slot: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Create),
        (0usize..8, 0u64..2_500, 1usize..1_200, any::<u8>()).prop_map(
            |(slot, offset, len, fill)| Op::Write {
                slot,
                offset,
                len,
                fill
            }
        ),
        (0usize..8, 0u64..2_500, 1usize..1_200, any::<u8>()).prop_map(
            |(slot, offset, len, fill)| Op::Write {
                slot,
                offset,
                len,
                fill
            }
        ),
        (0usize..8, 0u64..3_000).prop_map(|(slot, new_size)| Op::Resize { slot, new_size }),
        (0usize..8).prop_map(|slot| Op::Remove { slot }),
        (0usize..8).prop_map(|slot| Op::Snapshot { slot }),
    ]
}

type Model = BTreeMap<ObjectId, Vec<u8>>;

/// Apply one op to the durable store and the model. Slot indices pick
/// among live objects; ops against an empty store fall back to Create.
fn step(store: &mut ObjectStore<SharedDisk>, model: &mut Model, op: &Op) {
    let mut t = IoTrace::default();
    let live: Vec<ObjectId> = model.keys().copied().collect();
    let pick = |slot: usize| live[slot % live.len()];
    match (op, live.is_empty()) {
        (Op::Create, _) | (_, true) => {
            let id = store.create_object(P, 0, None, 0, &mut t).unwrap();
            model.insert(id, Vec::new());
        }
        (
            Op::Write {
                slot,
                offset,
                len,
                fill,
            },
            _,
        ) => {
            let o = pick(*slot);
            store
                .write(P, o, *offset, &vec![*fill; *len], 0, &mut t)
                .unwrap();
            let data = model.get_mut(&o).unwrap();
            let end = *offset as usize + len;
            if data.len() < end {
                data.resize(end, 0);
            }
            data[*offset as usize..end].fill(*fill);
        }
        (Op::Resize { slot, new_size }, _) => {
            let o = pick(*slot);
            store.resize(P, o, *new_size, 0, &mut t).unwrap();
            model.get_mut(&o).unwrap().resize(*new_size as usize, 0);
        }
        (Op::Remove { slot }, _) => {
            let o = pick(*slot);
            store.remove_object(P, o, &mut t).unwrap();
            model.remove(&o);
        }
        (Op::Snapshot { slot }, _) => {
            let o = pick(*slot);
            let id = store.snapshot(P, o, 0, &mut t).unwrap();
            let data = model[&o].clone();
            model.insert(id, data);
        }
    }
}

/// Build a durable store on shared media, run `committed` ops (each one
/// logged and group-committed), then `uncommitted` more ops that are
/// logged but never committed. Returns the media, the model after the
/// committed prefix, and the model snapshots after every committed op
/// (index k = state after k ops).
fn seeded_run(ops: &[Op], committed: usize) -> (SharedDisk, Vec<Model>, u64) {
    let media = SharedDisk::new(MemDisk::new(BS, BLOCKS));
    let mut store = ObjectStore::new(media.clone(), 32);
    store.enable_wal(true);
    store.create_partition(P, 1 << 20).unwrap();
    // First commit formats the device (superblock + checkpoint), so even
    // a zero-op run has durable state to remount.
    store.wal_commit(&mut IoTrace::default()).unwrap();
    let mut model = Model::new();
    let mut prefixes = vec![model.clone()];
    for (i, op) in ops.iter().enumerate() {
        step(&mut store, &mut model, op);
        if i < committed {
            store.wal_commit(&mut IoTrace::default()).unwrap();
            prefixes.push(model.clone());
        }
    }
    let durable = store.wal_durable_bytes();
    drop(store);
    (media, prefixes, durable)
}

/// Read a store's full logical state back into a model.
fn observed(store: &mut ObjectStore<SharedDisk>) -> Model {
    let mut t = IoTrace::default();
    let mut out = Model::new();
    for o in store.list_objects(P).unwrap() {
        let len = store.get_attr(P, o, 0).unwrap().size;
        let data = store.read(P, o, 0, len, 0, &mut t).unwrap().to_vec();
        out.insert(o, data);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every committed operation survives a power cut with no checkpoint:
    /// the remounted state is exactly the model — and a second remount
    /// (replaying the identical log prefix again) changes nothing.
    #[test]
    fn committed_prefix_is_durable_and_replay_is_idempotent(
        ops in proptest::collection::vec(arb_op(), 1..16),
    ) {
        let n = ops.len();
        let (media, prefixes, _) = seeded_run(&ops, n);
        let mut once = ObjectStore::open(media.clone(), 32).unwrap();
        prop_assert_eq!(&observed(&mut once), prefixes.last().unwrap());
        drop(once);
        // Replay the same prefix a second time: byte-identical state.
        let mut twice = ObjectStore::open(media, 32).unwrap();
        prop_assert_eq!(&observed(&mut twice), prefixes.last().unwrap());
    }

    /// Operations logged but never committed are invisible after a
    /// crash: recovery yields exactly the committed prefix.
    #[test]
    fn uncommitted_tail_is_invisible(
        ops in proptest::collection::vec(arb_op(), 2..16),
        keep_pct in 0u64..100,
    ) {
        let committed = (ops.len() * keep_pct as usize) / 100;
        let (media, prefixes, _) = seeded_run(&ops, committed);
        let mut store = ObjectStore::open(media, 32).unwrap();
        prop_assert_eq!(&observed(&mut store), &prefixes[committed]);
    }

    /// Flipping any byte of the committed log makes recovery roll back
    /// to *some* operation prefix — `open` never fails, never panics,
    /// and never invents state that no prefix produced. Bytes before the
    /// flip survive because replay stops exactly at the first record
    /// whose checksum breaks.
    #[test]
    fn corrupt_log_tail_recovers_a_clean_prefix(
        ops in proptest::collection::vec(arb_op(), 1..12),
        pos_pct in 0u64..100,
        bit in 0usize..8,
    ) {
        let n = ops.len();
        let (media, prefixes, durable) = seeded_run(&ops, n);
        prop_assert!(durable > 0, "a committed op must append log bytes");

        // Flip one bit somewhere in the committed log bytes.
        let layout = nasd_object::Layout::compute(BS, BLOCKS);
        let byte = durable * pos_pct / 100;
        let block = layout.log_start + byte / BS as u64;
        let mut media = media;
        let mut buf = vec![0u8; BS];
        media.read_block(block, &mut buf).unwrap();
        buf[(byte % BS as u64) as usize] ^= 1 << bit;
        media.write_block(block, &buf).unwrap();

        let mut store = ObjectStore::open(media, 32).unwrap();
        let got = observed(&mut store);
        prop_assert!(
            prefixes.contains(&got),
            "recovered state matches no operation prefix (flipped log byte {})",
            byte
        );
    }

    /// Zeroing the tail of the log (a truncated final write) likewise
    /// recovers a clean prefix.
    #[test]
    fn truncated_log_tail_recovers_a_clean_prefix(
        ops in proptest::collection::vec(arb_op(), 1..12),
        cut_pct in 0u64..100,
    ) {
        let n = ops.len();
        let (media, prefixes, durable) = seeded_run(&ops, n);
        prop_assert!(durable > 0, "a committed op must append log bytes");

        // Zero everything from `cut` to the end of the committed log.
        let layout = nasd_object::Layout::compute(BS, BLOCKS);
        let cut = durable * cut_pct / 100;
        let mut media = media;
        let mut buf = vec![0u8; BS];
        for block in layout.log_start..layout.log_start + layout.log_blocks {
            let block_start = (block - layout.log_start) * BS as u64;
            if block_start + BS as u64 <= cut {
                continue;
            }
            media.read_block(block, &mut buf).unwrap();
            for (i, b) in buf.iter_mut().enumerate() {
                if block_start + i as u64 >= cut {
                    *b = 0;
                }
            }
            media.write_block(block, &buf).unwrap();
        }

        let mut store = ObjectStore::open(media, 32).unwrap();
        let got = observed(&mut store);
        prop_assert!(
            prefixes.contains(&got),
            "recovered state matches no operation prefix (cut at byte {})",
            cut
        );
    }
}
