//! The unified, transport-agnostic call surface.
//!
//! A [`Channel`] fronts any [`Transport`] — the in-process channel
//! service ([`Rpc`]) or the pooled socket client
//! ([`SocketClient`](crate::SocketClient)) — behind the single call
//! surface the rest of the stack uses: `call_with(&CallOptions)` plus
//! `call_async` for pipelining. File managers, Cheops and PFS hold
//! [`Channel`]s, not raw transports, so moving a drive from an
//! in-process thread to a real socket changes construction
//! (see [`Connector`](crate::Connector)) and nothing else.
//!
//! Fault injection composes at this layer too: [`Channel::with_faults`]
//! wraps *any* transport in a connection-level fault decorator driven by
//! the same seeded [`FaultPlan`](crate::FaultPlan) the chaos suite has
//! always used, so drop/dup/delay schedules replay identically over
//! channels and over sockets.

use crate::fault::{ChannelFaults, FaultAction};
use crate::options::CallOptions;
use crate::rpc::{Rpc, RpcError};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A reply that has been requested but not yet received — the handle a
/// pipelining client holds while it issues more requests.
///
/// Under fault injection (or over a dying socket) the reply may never
/// arrive; receive with [`Pending::recv_timeout`] when faults may be
/// active.
#[derive(Debug)]
pub struct Pending<Resp> {
    rx: Receiver<Resp>,
}

impl<Resp> Pending<Resp> {
    /// Wrap a reply receiver.
    pub(crate) fn new(rx: Receiver<Resp>) -> Self {
        Pending { rx }
    }

    /// A pending reply that will never arrive (its sender is already
    /// gone) — how a dropped request surfaces to an async caller.
    pub(crate) fn dead() -> Self {
        let (_tx, rx) = bounded(1);
        Pending { rx }
    }

    /// Wait for the reply — bounded by `timeout` when given, until the
    /// transport disconnects otherwise.
    ///
    /// # Errors
    ///
    /// [`RpcError::TimedOut`] when `timeout` expires first;
    /// [`RpcError::Disconnected`] when the reply can no longer arrive.
    pub fn wait(&self, timeout: Option<Duration>) -> Result<Resp, RpcError> {
        match timeout {
            None => self.rx.recv().map_err(|_| RpcError::Disconnected),
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => RpcError::TimedOut,
                RecvTimeoutError::Disconnected => RpcError::Disconnected,
            }),
        }
    }

    /// Wait for the reply forever (see [`Pending::wait`]).
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] when the reply can no longer arrive.
    pub fn recv(&self) -> Result<Resp, RpcError> {
        self.wait(None)
    }

    /// Wait for the reply, bounded by `timeout` (see [`Pending::wait`]).
    ///
    /// # Errors
    ///
    /// [`RpcError::TimedOut`] or [`RpcError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Resp, RpcError> {
        self.wait(Some(timeout))
    }
}

/// One concrete way to move a request to a service and its reply back.
///
/// Implementations: [`Rpc`] (in-process channels),
/// [`SocketClient`](crate::SocketClient) (framed TCP/UDS with
/// pipelining), and the internal fault decorator behind
/// [`Channel::with_faults`]. Every error a transport reports is one of
/// the two [`RpcError`] classes — the retry loop in
/// [`Channel::call_with`] keys on exactly that taxonomy.
pub trait Transport<Req, Resp>: Send + Sync {
    /// One transport attempt: send `req`, wait for the reply — bounded
    /// by `timeout` when given, forever otherwise.
    ///
    /// # Errors
    ///
    /// [`RpcError::TimedOut`] when no reply arrived in time (the request
    /// or its reply may have been lost); [`RpcError::Disconnected`] when
    /// the service (or the connection to it) is gone.
    fn attempt(&self, req: Req, timeout: Option<Duration>) -> Result<Resp, RpcError>;

    /// Fire a request without waiting; the reply arrives on the returned
    /// [`Pending`]. This is the pipelining primitive: issue many, then
    /// collect.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] when the request cannot be sent at all.
    fn call_async(&self, req: Req) -> Result<Pending<Resp>, RpcError>;

    /// Whether a later attempt may reach a *new* connection to the same
    /// service. `false` for a fixed in-process channel (a disconnect is
    /// permanent — the service thread is gone); `true` for a socket
    /// client that re-dials, which makes [`RpcError::Disconnected`]
    /// retryable in [`Channel::call_with`].
    fn reconnects(&self) -> bool {
        false
    }

    /// Short diagnostic label (`"in-proc"`, `"socket"`, `"faulty"`).
    fn name(&self) -> &'static str {
        "transport"
    }
}

/// The shared retry loop behind every `call_with`: attempts, backoff,
/// per-attempt timeout and metrics all come from `opts`. Timeouts are
/// retried when the policy grants more attempts; [`RpcError::Disconnected`]
/// is retried only when `reconnects` says a fresh attempt can reach a new
/// connection, and is returned immediately otherwise.
pub(crate) fn retry_loop<Req: Clone, Resp>(
    req: Req,
    opts: &CallOptions,
    reconnects: bool,
    mut attempt: impl FnMut(Req, Option<Duration>) -> Result<Resp, RpcError>,
) -> Result<Resp, RpcError> {
    if let Some(stats) = &opts.stats {
        stats.calls.inc();
    }
    let attempts = opts.policy.max_attempts.max(1);
    let mut last = RpcError::TimedOut;
    for attempt_no in 0..attempts {
        crate::pacing::pace(opts.policy.backoff(attempt_no));
        if let Some(stats) = &opts.stats {
            stats.attempts.inc();
        }
        match attempt(req.clone(), opts.attempt_timeout) {
            Ok(resp) => return Ok(resp),
            Err(RpcError::TimedOut) => {
                if let Some(stats) = &opts.stats {
                    stats.timeouts.inc();
                }
                last = RpcError::TimedOut;
            }
            Err(RpcError::Disconnected) => {
                if let Some(stats) = &opts.stats {
                    stats.disconnects.inc();
                }
                if !reconnects {
                    return Err(RpcError::Disconnected);
                }
                last = RpcError::Disconnected;
            }
        }
    }
    if let Some(stats) = &opts.stats {
        stats.exhausted.inc();
    }
    Err(last)
}

impl<Req: Send + Clone + 'static, Resp: Send + 'static> Transport<Req, Resp> for Rpc<Req, Resp> {
    fn attempt(&self, req: Req, timeout: Option<Duration>) -> Result<Resp, RpcError> {
        self.attempt_once(req, timeout)
    }

    fn call_async(&self, req: Req) -> Result<Pending<Resp>, RpcError> {
        Rpc::call_async(self, req).map(Pending::new)
    }

    fn name(&self) -> &'static str {
        "in-proc"
    }
}

/// A cloneable handle to a service over *some* transport — the type every
/// client in the stack holds. Obtain one from a
/// [`Connector`](crate::Connector) (or [`Channel::in_proc`] directly) and
/// call through [`Channel::call_with`] / [`Channel::call_async`].
pub struct Channel<Req, Resp> {
    inner: Arc<dyn Transport<Req, Resp>>,
}

impl<Req, Resp> Clone for Channel<Req, Resp> {
    fn clone(&self) -> Self {
        Channel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<Req, Resp> fmt::Debug for Channel<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("transport", &self.inner.name())
            .finish()
    }
}

impl<Req: Send + Clone + 'static, Resp: Send + 'static> Channel<Req, Resp> {
    /// Wrap an already-built transport.
    #[must_use]
    pub fn new(transport: Arc<dyn Transport<Req, Resp>>) -> Self {
        Channel { inner: transport }
    }

    /// A channel over an in-process [`Rpc`] handle — today's threaded
    /// services, unchanged.
    #[must_use]
    pub fn in_proc(rpc: Rpc<Req, Resp>) -> Self {
        Channel {
            inner: Arc::new(rpc),
        }
    }

    /// A handle whose traffic is subject to seeded connection-level
    /// fault injection. Works over any transport: the decorator drops,
    /// duplicates and delays whole requests/replies per the plan's
    /// deterministic schedule, exactly as [`Rpc::with_faults`] always
    /// did for in-process channels.
    #[must_use]
    pub fn with_faults(&self, faults: Arc<ChannelFaults>) -> Self {
        Channel {
            inner: Arc::new(FaultTransport {
                inner: Arc::clone(&self.inner),
                faults,
            }),
        }
    }

    /// The unified call path: attempts, backoff, per-attempt timeout and
    /// metrics all come from `opts`. Timeouts are retried (when the
    /// policy grants more attempts); disconnections are retried only on
    /// transports that re-dial (see [`Transport::reconnects`]).
    ///
    /// Retrying is only safe for requests that are idempotent or
    /// independently signed (drive traffic: each attempt carries a fresh
    /// nonce).
    ///
    /// # Errors
    ///
    /// [`RpcError::TimedOut`] when every attempt timed out;
    /// [`RpcError::Disconnected`] when the service is gone (immediately
    /// on fixed transports, after exhausting attempts on re-dialing
    /// ones).
    pub fn call_with(&self, req: Req, opts: &CallOptions) -> Result<Resp, RpcError> {
        retry_loop(req, opts, self.inner.reconnects(), |r, t| {
            self.inner.attempt(r, t)
        })
    }

    /// Fire a request without waiting (request pipelining); the reply
    /// arrives on the returned [`Pending`].
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] when the request cannot be sent.
    pub fn call_async(&self, req: Req) -> Result<Pending<Resp>, RpcError> {
        self.inner.call_async(req)
    }

    /// The underlying transport's diagnostic label.
    #[must_use]
    pub fn transport_name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Connection-level fault decorator: applies one seeded [`FaultAction`]
/// per request, then delegates to the wrapped transport. Mirrors the
/// in-channel injection [`Rpc`] performs, so the same plan produces the
/// same realized schedule over any transport.
struct FaultTransport<Req, Resp> {
    inner: Arc<dyn Transport<Req, Resp>>,
    faults: Arc<ChannelFaults>,
}

impl<Req: Send + Clone + 'static, Resp: Send + 'static> Transport<Req, Resp>
    for FaultTransport<Req, Resp>
{
    fn attempt(&self, req: Req, timeout: Option<Duration>) -> Result<Resp, RpcError> {
        match self.faults.next_action() {
            FaultAction::Deliver => self.inner.attempt(req, timeout),
            FaultAction::DelayMicros(us) => {
                crate::pacing::pace(Duration::from_micros(us));
                self.inner.attempt(req, timeout)
            }
            FaultAction::DropRequest => Err(RpcError::TimedOut),
            FaultAction::DropReply => {
                // nasd-lint: allow(swallowed-error, "fault injection: the reply is discarded by design; waiting only sequences the service")
                let _ = self.inner.attempt(req, timeout);
                Err(RpcError::TimedOut)
            }
            FaultAction::Duplicate => {
                // Two independent deliveries of the same message; the
                // caller listens to the first. For signed drive traffic
                // the second delivery trips the replay window.
                let first = self.inner.call_async(req.clone())?;
                // nasd-lint: allow(swallowed-error, "fault injection: the duplicate copy is best-effort; the caller waits on the first delivery")
                let _ = self.inner.call_async(req);
                first.wait(timeout)
            }
        }
    }

    fn call_async(&self, req: Req) -> Result<Pending<Resp>, RpcError> {
        match self.faults.next_action() {
            FaultAction::Deliver => self.inner.call_async(req),
            FaultAction::DelayMicros(us) => {
                crate::pacing::pace(Duration::from_micros(us));
                self.inner.call_async(req)
            }
            FaultAction::Duplicate => {
                let first = self.inner.call_async(req.clone())?;
                // nasd-lint: allow(swallowed-error, "fault injection: the duplicate copy is best-effort; the caller waits on the first delivery")
                let _ = self.inner.call_async(req);
                Ok(first)
            }
            // Never sent: the pending reply can never arrive.
            FaultAction::DropRequest => Ok(Pending::dead()),
            FaultAction::DropReply => {
                // Delivered and processed, but the reply is lost: the
                // caller's pending handle is not the one the service
                // answers on.
                // nasd-lint: allow(swallowed-error, "fault injection: the reply is discarded by design")
                let _ = self.inner.call_async(req)?;
                Ok(Pending::dead())
            }
        }
    }

    fn reconnects(&self) -> bool {
        self.inner.reconnects()
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan, RetryPolicy};
    use crate::rpc::spawn_service;

    #[test]
    fn channel_over_in_proc_roundtrips() {
        let (rpc, _h) = spawn_service(|x: u64| x * 3);
        let ch = Channel::in_proc(rpc);
        assert_eq!(ch.call_with(7, &CallOptions::blocking()).unwrap(), 21);
        assert_eq!(ch.transport_name(), "in-proc");
        let ch2 = ch.clone();
        assert_eq!(ch2.call_with(9, &CallOptions::blocking()).unwrap(), 27);
    }

    #[test]
    fn channel_async_pipelines() {
        let (rpc, _h) = spawn_service(|x: u64| x + 1);
        let ch = Channel::in_proc(rpc);
        let pending: Vec<_> = (0..10).map(|i| ch.call_async(i).unwrap()).collect();
        let results: Vec<u64> = pending.iter().map(|p| p.recv().unwrap()).collect();
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn in_proc_disconnect_is_permanent() {
        let (rpc, h) = spawn_service(|x: u64| x);
        let ch = Channel::in_proc(rpc);
        h.shutdown();
        // Even a retrying policy fails fast: the service thread is gone
        // and no reconnect can bring it back.
        assert_eq!(
            ch.call_with(1, &CallOptions::retry(RetryPolicy::standard())),
            Err(RpcError::Disconnected)
        );
    }

    #[test]
    fn channel_faults_drop_requests_deterministically() {
        let plan = FaultPlan::new(42);
        let config = FaultConfig {
            drop: 0.5,
            ..FaultConfig::none()
        };
        let (rpc, _h) = spawn_service(|x: u64| x + 1);
        let ch = Channel::in_proc(rpc).with_faults(plan.channel(1, config));
        assert_eq!(ch.transport_name(), "faulty");
        let policy = RetryPolicy {
            max_attempts: 32,
            timeout: Duration::from_millis(100),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut timeouts = 0;
        for i in 0..50 {
            match ch.call_with(i, &CallOptions::once(Duration::from_millis(100))) {
                Ok(v) => assert_eq!(v, i + 1),
                Err(RpcError::TimedOut) => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
            // The retry wrapper always gets through at 50% loss.
            assert_eq!(ch.call_with(i, &CallOptions::retry(policy)).unwrap(), i + 1);
        }
        assert!(timeouts > 0, "the seed should drop some of 50 calls");
        assert!(!plan.trace().is_empty());
    }

    #[test]
    fn channel_fault_schedule_matches_rpc_fault_schedule() {
        // The decorator consults the same (seed, target, seq) stream as
        // the legacy in-channel injection, so a chaos seed produces the
        // identical realized schedule through either path.
        let config = FaultConfig::lossy(1.0);
        let via_rpc = {
            let plan = FaultPlan::new(9);
            let (rpc, _h) = spawn_service(|x: u64| x);
            let faulty = rpc.with_faults(plan.channel(3, config));
            for i in 0..100 {
                // Outcome irrelevant: the consumed fault schedule is the point.
                let _ = faulty.call_with(i, &CallOptions::once(Duration::from_millis(50)));
            }
            plan.trace()
        };
        let via_channel = {
            let plan = FaultPlan::new(9);
            let (rpc, _h) = spawn_service(|x: u64| x);
            let ch = Channel::in_proc(rpc).with_faults(plan.channel(3, config));
            for i in 0..100 {
                let _ = ch.call_with(i, &CallOptions::once(Duration::from_millis(50)));
            }
            plan.trace()
        };
        assert_eq!(via_rpc, via_channel);
    }

    #[test]
    fn duplicated_channel_calls_still_answer() {
        let plan = FaultPlan::new(7);
        let config = FaultConfig {
            duplicate: 1.0,
            ..FaultConfig::none()
        };
        let (rpc, _h) = spawn_service({
            let mut hits = 0u64;
            move |(): ()| {
                hits += 1;
                hits
            }
        });
        let plain = Channel::in_proc(rpc);
        let faulty = plain.with_faults(plan.channel(1, config));
        // Every call is duplicated: the service sees two deliveries but
        // the caller gets exactly one answer.
        assert_eq!(faulty.call_with((), &CallOptions::blocking()).unwrap(), 1);
        // Drain: by the next exchange the duplicate has also run.
        let second = plain.call_with((), &CallOptions::blocking()).unwrap();
        assert!(second >= 3, "duplicate delivery should have run: {second}");
    }

    #[test]
    fn dropped_reply_sequences_then_times_out() {
        let plan = FaultPlan::new(1);
        let config = FaultConfig {
            drop_reply: 1.0,
            ..FaultConfig::none()
        };
        let (rpc, _h) = spawn_service({
            let mut hits = 0u64;
            move |(): ()| {
                hits += 1;
                hits
            }
        });
        let plain = Channel::in_proc(rpc);
        let faulty = plain.with_faults(plan.channel(1, config));
        assert_eq!(
            faulty.call_with((), &CallOptions::once(Duration::from_millis(200))),
            Err(RpcError::TimedOut)
        );
        // The service did process the dropped-reply request.
        assert_eq!(plain.call_with((), &CallOptions::blocking()).unwrap(), 2);
    }

    #[test]
    fn pending_dead_reads_as_disconnected() {
        let p: Pending<u64> = Pending::dead();
        assert_eq!(p.recv(), Err(RpcError::Disconnected));
    }
}
