//! [`Connector`]: the one way clients obtain a [`Channel`].
//!
//! Mirrors the PR 3 `DriveBuilder` pattern: configuration accumulates
//! on the builder (pool size, fault plan), then a terminal method
//! produces the endpoint — [`Connector::in_proc`] for a channel over a
//! threaded in-process service, [`Connector::dial`] for one over a real
//! TCP/UDS socket. Higher layers add their own terminal methods via
//! extension traits (`FmConnect::nfs/afs`, `CheopsConnect::cheops`, …)
//! so every client in the stack is constructed the same way and none of
//! them holds a raw transport.

use crate::fault::ChannelFaults;
use crate::rpc::Rpc;
use crate::socket::{BindAddr, SocketClient};
use crate::transport::Channel;
use nasd_proto::{Reply, Request};
use std::io;
use std::sync::Arc;

/// Builder for transport endpoints. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Connector {
    faults: Option<Arc<ChannelFaults>>,
    pool: usize,
}

impl Connector {
    /// A connector with defaults: no fault injection, single-connection
    /// pool.
    #[must_use]
    pub fn new() -> Self {
        Connector::default()
    }

    /// Pool size for socket endpoints (clamped to at least one
    /// connection; in-proc endpoints ignore it).
    #[must_use]
    pub fn pool(mut self, connections: usize) -> Self {
        self.pool = connections;
        self
    }

    /// Subject every endpoint built from this connector to seeded
    /// connection-level fault injection (drop/dup/delay per the plan's
    /// deterministic schedule) — the chaos suite's hook into both
    /// transports.
    #[must_use]
    pub fn faults(mut self, faults: Arc<ChannelFaults>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Apply the configured fault decorator, if any.
    fn wrap<Req: Send + Clone + 'static, Resp: Send + 'static>(
        &self,
        ch: Channel<Req, Resp>,
    ) -> Channel<Req, Resp> {
        match &self.faults {
            Some(f) => ch.with_faults(Arc::clone(f)),
            None => ch,
        }
    }

    /// A channel over an in-process [`Rpc`] service handle.
    #[must_use]
    pub fn in_proc<Req: Send + Clone + 'static, Resp: Send + 'static>(
        &self,
        rpc: Rpc<Req, Resp>,
    ) -> Channel<Req, Resp> {
        self.wrap(Channel::in_proc(rpc))
    }

    /// A channel over a real socket to a wire server speaking drive
    /// traffic — the only message family with a wire codec.
    ///
    /// # Errors
    ///
    /// The dial failure, verbatim.
    pub fn dial(&self, addr: &BindAddr) -> io::Result<Channel<Request, Reply>> {
        let client = SocketClient::dial(addr, self.pool.max(1))?;
        Ok(self.wrap(Channel::new(Arc::new(client))))
    }
}
