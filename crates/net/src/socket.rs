//! Real sockets: a multi-threaded TCP/UDS drive server and a pooled,
//! pipelining client — the paper's drive-on-the-network (§3) made
//! concrete.
//!
//! ## Server anatomy
//!
//! [`serve`] binds a [`BindAddr`] and spawns:
//!
//! - one **acceptor** thread looping on `accept`;
//! - per connection, a **reader** thread (frame → decode →
//!   [`Request`] → work queue) and a **writer** thread (reply queue →
//!   batched [`write_frames`], coalescing up to [`MAX_BATCH`] replies
//!   per `writev` round);
//! - a shared pool of **worker** threads executing the service function
//!   — requests from many connections interleave, which is what gives
//!   one slow client no power to starve the rest.
//!
//! Graceful shutdown ([`WireServer::shutdown`]) closes every socket,
//! lets readers/workers/writers drain, and joins all threads.
//!
//! ## Client anatomy
//!
//! [`SocketClient`] keeps a small pool of connections; each owns a
//! reader thread demuxing tagged replies to per-request waiters, so any
//! number of requests can be in flight per connection and complete out
//! of order (pipelining). Dead connections are re-dialed lazily on the
//! next attempt, which is why [`Transport::reconnects`] is `true` for
//! this transport — `Disconnected` is retryable here.
//!
//! ## Copy discipline
//!
//! Requests and replies are staged as [`FrameBuf`]s straight from
//! `encode_frame`: header + encoded head + shared payload segments,
//! written with vectored I/O. The server measures its own send path
//! ([`ServerStats::send_copies`]): for cached reads the payload bytes
//! memcpied on the send side must be zero, and the perf harness holds
//! that line.

use crate::frame::{read_frame, write_frames, FrameBuf, FrameError};
use crate::rpc::RpcError;
use crate::transport::{Pending, Transport};
use bytes::stats as byte_stats;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use nasd_obs::Counter;
use nasd_proto::wire::WireWriter;
use nasd_proto::{NasdStatus, Reply, Request};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum replies a writer thread coalesces into one vectored write.
pub const MAX_BATCH: usize = 32;

/// Where a wire server listens / a client dials: TCP or a Unix-domain
/// socket path. CI uses UDS (no ports to fight over); TCP is the
/// paper's actual deployment shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// TCP endpoint. Bind with port 0 to let the OS pick; the resolved
    /// address comes back from [`serve`].
    Tcp(SocketAddr),
    /// Unix-domain socket path. [`serve`] removes a stale file first;
    /// [`WireServer::shutdown`] removes it again on the way out.
    Uds(PathBuf),
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Tcp(a) => write!(f, "tcp://{a}"),
            BindAddr::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// Process-wide counter so every [`BindAddr::uds_temp`] path is unique
/// even within one test binary.
static UDS_SEQ: AtomicU64 = AtomicU64::new(0);

impl BindAddr {
    /// Loopback TCP with an OS-assigned port.
    #[must_use]
    pub fn tcp_ephemeral() -> Self {
        BindAddr::Tcp(SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// A fresh Unix-socket path under the system temp directory,
    /// unique per process and call — what tests and the CI smoke job
    /// bind to.
    #[must_use]
    pub fn uds_temp(label: &str) -> Self {
        let seq = UDS_SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        BindAddr::Uds(std::env::temp_dir().join(format!("nasd-{label}-{pid}-{seq}.sock")))
    }
}

/// A connected stream of either flavor. `write_vectored` MUST delegate
/// (the default `Write` impl falls back to plain `write`, which would
/// silently defeat the `writev` batching this transport is built on).
enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Uds(s) => s.try_clone().map(Stream::Uds),
        }
    }

    /// Best-effort full shutdown — used to unblock reader threads; a
    /// failure means the peer beat us to it.
    fn shutdown_both(&self) {
        // nasd-lint: allow(swallowed-error, "shutdown races with the peer closing first; either way the socket is dead")
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write_vectored(bufs),
            Stream::Uds(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    /// Bind, returning the listener and the *resolved* address (TCP
    /// port 0 becomes the real port).
    fn bind(addr: &BindAddr) -> io::Result<(Listener, BindAddr)> {
        match addr {
            BindAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let resolved = BindAddr::Tcp(l.local_addr()?);
                Ok((Listener::Tcp(l), resolved))
            }
            BindAddr::Uds(p) => {
                // A stale socket file from a dead process would make
                // bind fail; removing a path that isn't there is fine.
                // nasd-lint: allow(swallowed-error, "stale-socket cleanup; bind below reports the real failure if any")
                let _ = std::fs::remove_file(p);
                let l = UnixListener::bind(p)?;
                Ok((Listener::Uds(l), BindAddr::Uds(p.clone())))
            }
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
        }
    }
}

/// Server-side counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: Counter,
    /// Request frames successfully decoded and dispatched.
    pub frames_in: Counter,
    /// Reply frames handed to writer threads.
    pub frames_out: Counter,
    /// Frames whose payload failed to decode as a [`Request`] (the
    /// client gets a [`NasdStatus::BadRequest`] reply, the connection
    /// survives).
    pub decode_errors: Counter,
    /// Payload bytes memcpied on the send side (reply encode + write),
    /// measured via the thread-local copy ledger. Cached reads must
    /// keep this at zero — the perf harness asserts it.
    pub send_copies: Counter,
}

/// One unit of work: a decoded request, its correlation tag, and the
/// reply queue of the connection it arrived on.
struct Job {
    tag: u64,
    req: Request,
    out: Sender<FrameBuf>,
}

/// Encode a reply into a [`FrameBuf`], debiting any bytes the encode
/// itself copied to the server's send-copy counter. Payload segments
/// ride as shared handles, so for data replies this counts only the
/// fixed head.
fn encode_reply(tag: u64, reply: &Reply, stats: &ServerStats) -> Result<FrameBuf, FrameError> {
    let before = byte_stats::bytes_copied();
    let mut head = WireWriter::new();
    let mut segments = Vec::new();
    reply.encode_frame(&mut head, &mut segments);
    stats
        .send_copies
        .add(byte_stats::bytes_copied().saturating_sub(before));
    FrameBuf::new(tag, head.into_vec(), segments)
}

fn worker_loop<F>(work: &Receiver<Job>, service: &F, stats: &ServerStats)
where
    F: Fn(Request) -> Reply,
{
    while let Ok(job) = work.recv() {
        let reply = service(job.req);
        let frame = match encode_reply(job.tag, &reply, stats) {
            Ok(f) => f,
            // A reply too large to frame becomes an in-band error; the
            // error reply itself is tiny and cannot fail to frame.
            Err(FrameError::Oversized(_)) => {
                match encode_reply(job.tag, &Reply::error(NasdStatus::DriveError), stats) {
                    Ok(f) => f,
                    Err(_) => continue,
                }
            }
            Err(_) => continue,
        };
        stats.frames_out.inc();
        // A send failure means the connection's writer is gone; the
        // client will see the disconnect.
        // nasd-lint: allow(swallowed-error, "reply to a vanished connection; the disconnect is the client's signal")
        let _ = job.out.send(frame);
    }
}

/// Reader side of one server connection: frames in, requests decoded,
/// jobs dispatched. Malformed payloads get an in-band `BadRequest`
/// reply; framing errors end the connection.
fn conn_reader(
    mut stream: Stream,
    work: &Sender<Job>,
    out: &Sender<FrameBuf>,
    stats: &ServerStats,
) {
    while let Ok(frame) = read_frame(&mut stream) {
        match Request::from_wire_shared(frame.payload) {
            Ok(req) => {
                stats.frames_in.inc();
                if work
                    .send(Job {
                        tag: frame.tag,
                        req,
                        out: out.clone(),
                    })
                    .is_err()
                {
                    break; // server shutting down
                }
            }
            Err(_) => {
                stats.decode_errors.inc();
                if let Ok(f) = encode_reply(frame.tag, &Reply::error(NasdStatus::BadRequest), stats)
                {
                    if out.send(f).is_err() {
                        break;
                    }
                }
            }
        }
    }
    stream.shutdown_both();
}

/// Writer side of one connection: drain the reply queue, coalescing up
/// to [`MAX_BATCH`] frames per vectored write. Write-side copies (there
/// should be none beyond the 12-byte headers) are debited to the
/// server's ledger column.
fn conn_writer(mut stream: Stream, replies: &Receiver<FrameBuf>, stats: &ServerStats) {
    let mut batch: Vec<FrameBuf> = Vec::with_capacity(MAX_BATCH);
    while let Ok(first) = replies.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < MAX_BATCH {
            match replies.try_recv() {
                Ok(f) => batch.push(f),
                Err(_) => break,
            }
        }
        let before = byte_stats::bytes_copied();
        let result = write_frames(&mut stream, &batch);
        stats
            .send_copies
            .add(byte_stats::bytes_copied().saturating_sub(before));
        if result.is_err() {
            break;
        }
    }
    stream.shutdown_both();
}

/// A running wire server. Dropping it (or calling
/// [`WireServer::shutdown`]) closes every connection and joins every
/// thread.
pub struct WireServer {
    addr: BindAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    work_tx: Option<Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Stream>>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .finish()
    }
}

/// Start a wire server: bind `addr`, run `service` on a pool of
/// `workers` threads (clamped to at least one), spawn
/// reader/writer threads per accepted connection.
///
/// The service function sees whole decoded [`Request`]s and returns
/// whole [`Reply`]s; framing, decoding, tagging and batching are the
/// server's business. Drive services wrap `NasdDrive::handle` here
/// (behind a mutex — the drive itself is single-threaded by design,
/// the concurrency win is overlapping I/O and framing across
/// connections).
///
/// # Errors
///
/// Propagates the bind failure (address in use, bad path, …).
pub fn serve<F>(addr: &BindAddr, workers: usize, service: F) -> io::Result<WireServer>
where
    F: Fn(Request) -> Reply + Send + Sync + 'static,
{
    let (listener, resolved) = Listener::bind(addr)?;
    let stats = Arc::new(ServerStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<Stream>>> = Arc::new(Mutex::new(Vec::new()));
    let (work_tx, work_rx) = unbounded::<Job>();
    let service = Arc::new(service);
    let mut threads = Vec::new();

    for _ in 0..workers.max(1) {
        let rx = work_rx.clone();
        let svc = Arc::clone(&service);
        let st = Arc::clone(&stats);
        threads.push(std::thread::spawn(move || {
            worker_loop(&rx, svc.as_ref(), &st);
        }));
    }

    {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let conns = Arc::clone(&conns);
        let work_tx = work_tx.clone();
        threads.push(std::thread::spawn(move || {
            let mut conn_threads = Vec::new();
            loop {
                let stream = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => break,
                };
                if stop.load(Ordering::SeqCst) {
                    // The wake-up dial from shutdown lands here.
                    stream.shutdown_both();
                    break;
                }
                stats.connections.inc();
                let (reader_stream, writer_stream, registered) =
                    match (stream.try_clone(), stream.try_clone()) {
                        (Ok(w), Ok(r)) => (stream, w, r),
                        _ => {
                            stream.shutdown_both();
                            continue;
                        }
                    };
                conns.lock().push(registered);
                let (reply_tx, reply_rx) = unbounded::<FrameBuf>();
                {
                    let work = work_tx.clone();
                    let st = Arc::clone(&stats);
                    conn_threads.push(std::thread::spawn(move || {
                        conn_reader(reader_stream, &work, &reply_tx, &st);
                    }));
                }
                {
                    let st = Arc::clone(&stats);
                    conn_threads.push(std::thread::spawn(move || {
                        conn_writer(writer_stream, &reply_rx, &st);
                    }));
                }
            }
            for t in conn_threads {
                // A panicking connection thread is a bug, but the
                // acceptor is the last thread standing at shutdown —
                // re-raising here would abort the join sequence. The
                // chaos suite asserts on stats instead.
                // nasd-lint: allow(swallowed-error, "join of connection threads at shutdown; panics surface via missing replies in tests")
                let _ = t.join();
            }
        }));
    }

    Ok(WireServer {
        addr: resolved,
        stats,
        stop,
        work_tx: Some(work_tx),
        threads,
        conns,
    })
}

impl WireServer {
    /// The resolved listen address (real port for TCP port-0 binds) —
    /// what clients dial.
    #[must_use]
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// Live server counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor: it only checks the flag after accept
        // returns, so dial it once. Failure means it is already gone.
        // nasd-lint: allow(swallowed-error, "wake-up dial; if the listener is already closed the acceptor has already exited")
        let _ = match &self.addr {
            BindAddr::Tcp(a) => TcpStream::connect(a).map(Stream::Tcp).map(|s| {
                s.shutdown_both();
            }),
            BindAddr::Uds(p) => UnixStream::connect(p).map(Stream::Uds).map(|s| {
                s.shutdown_both();
            }),
        };
        // Close every live connection: readers unblock and exit, their
        // job/reply senders drop, workers and writers drain out.
        for c in self.conns.lock().drain(..) {
            c.shutdown_both();
        }
        // Dropping the server's clone of the work queue lets workers
        // observe disconnect once the readers' clones are gone too.
        self.work_tx = None;
        for t in self.threads.drain(..) {
            // nasd-lint: allow(swallowed-error, "thread join at teardown; a panicked worker shows up as test failure via dropped replies")
            let _ = t.join();
        }
        if let BindAddr::Uds(p) = &self.addr {
            // nasd-lint: allow(swallowed-error, "socket-file cleanup; a missing file is the desired end state")
            let _ = std::fs::remove_file(p);
        }
    }

    /// Graceful shutdown: close sockets, drain queues, join all
    /// threads, remove the UDS socket file.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop_inner();
        }
    }
}

/// One pooled client connection: a writer queue, a demux map from tag
/// to waiter, and a detached reader thread filling it.
struct Conn {
    tx: Sender<FrameBuf>,
    pending: Arc<Mutex<HashMap<u64, Sender<Reply>>>>,
    next_tag: AtomicU64,
    alive: Arc<AtomicBool>,
    stream: Stream,
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.stream.shutdown_both();
    }
}

impl Conn {
    fn dial(addr: &BindAddr) -> io::Result<Arc<Conn>> {
        let stream = match addr {
            BindAddr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
            BindAddr::Uds(p) => Stream::Uds(UnixStream::connect(p)?),
        };
        let mut reader = stream.try_clone()?;
        let mut writer = stream.try_clone()?;
        let pending: Arc<Mutex<HashMap<u64, Sender<Reply>>>> = Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        let (tx, rx) = unbounded::<FrameBuf>();

        {
            let pending = Arc::clone(&pending);
            let alive = Arc::clone(&alive);
            std::thread::spawn(move || {
                while let Ok(frame) = read_frame(&mut reader) {
                    let waiter = pending.lock().remove(&frame.tag);
                    if let Some(w) = waiter {
                        if let Ok(reply) = Reply::from_wire_shared(frame.payload) {
                            // A waiter that timed out and left is fine.
                            // nasd-lint: allow(swallowed-error, "late reply after the caller timed out; dropping it is the contract")
                            let _ = w.send(reply);
                        }
                    }
                    // No waiter: a reply to a request whose caller gave
                    // up — dropped by design, same as Rpc's
                    // replies_dropped path.
                }
                alive.store(false, Ordering::SeqCst);
                // Every in-flight waiter sees Disconnected, not a hang.
                pending.lock().clear();
            });
        }

        {
            let alive = Arc::clone(&alive);
            let mut batch: Vec<FrameBuf> = Vec::with_capacity(MAX_BATCH);
            std::thread::spawn(move || {
                while let Ok(first) = rx.recv() {
                    batch.clear();
                    batch.push(first);
                    while batch.len() < MAX_BATCH {
                        match rx.try_recv() {
                            Ok(f) => batch.push(f),
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                        }
                    }
                    if write_frames(&mut writer, &batch).is_err() {
                        break;
                    }
                }
                alive.store(false, Ordering::SeqCst);
                writer.shutdown_both();
            });
        }

        Ok(Arc::new(Conn {
            tx,
            pending,
            next_tag: AtomicU64::new(1),
            alive,
            stream,
        }))
    }

    /// Send `req` on this connection; the reply will arrive on the
    /// returned receiver (capacity 1 — the reader never blocks on a
    /// slow caller).
    fn begin(&self, req: &Request) -> Result<(u64, Receiver<Reply>), RpcError> {
        if !self.alive.load(Ordering::SeqCst) {
            return Err(RpcError::Disconnected);
        }
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        self.pending.lock().insert(tag, reply_tx);
        let mut head = WireWriter::new();
        let mut segments = Vec::new();
        req.encode_frame(&mut head, &mut segments);
        let frame = FrameBuf::new(tag, head.into_vec(), segments).map_err(|e| e.to_rpc())?;
        if self.tx.send(frame).is_err() {
            self.pending.lock().remove(&tag);
            return Err(RpcError::Disconnected);
        }
        Ok((tag, reply_rx))
    }

    fn forget(&self, tag: u64) {
        self.pending.lock().remove(&tag);
    }
}

/// A pooled, pipelining socket client for drive traffic: the `Socket`
/// implementation of [`Transport`]`<Request, Reply>`.
///
/// Requests round-robin over a small connection pool; each connection
/// supports unbounded in-flight requests with out-of-order completion
/// (tagged frames). A connection that dies is re-dialed on the next
/// attempt that lands on its pool slot, so [`Transport::reconnects`]
/// is `true` and the [`Channel`](crate::Channel) retry loop treats
/// `Disconnected` as retryable.
pub struct SocketClient {
    addr: BindAddr,
    pool: Vec<Mutex<Option<Arc<Conn>>>>,
    next: AtomicUsize,
}

impl std::fmt::Debug for SocketClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketClient")
            .field("addr", &self.addr)
            .field("pool", &self.pool.len())
            .finish()
    }
}

impl SocketClient {
    /// Dial `addr` with a pool of `pool` connections (clamped to at
    /// least one). The first connection is established eagerly so a bad
    /// address fails here, not on the first call.
    ///
    /// # Errors
    ///
    /// The dial failure, verbatim.
    pub fn dial(addr: &BindAddr, pool: usize) -> io::Result<SocketClient> {
        let pool_size = pool.max(1);
        let first = Conn::dial(addr)?;
        let mut slots = Vec::with_capacity(pool_size);
        slots.push(Mutex::new(Some(first)));
        for _ in 1..pool_size {
            slots.push(Mutex::new(None));
        }
        Ok(SocketClient {
            addr: addr.clone(),
            pool: slots,
            next: AtomicUsize::new(1),
        })
    }

    /// The dialed address.
    #[must_use]
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// Pick the next pool slot (round-robin), re-dialing it if its
    /// connection is absent or dead.
    fn conn(&self) -> Result<Arc<Conn>, RpcError> {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.pool.get(n % self.pool.len().max(1)) else {
            return Err(RpcError::Disconnected);
        };
        let mut guard = slot.lock();
        if let Some(c) = guard.as_ref() {
            if c.alive.load(Ordering::SeqCst) {
                return Ok(Arc::clone(c));
            }
        }
        match Conn::dial(&self.addr) {
            Ok(c) => {
                *guard = Some(Arc::clone(&c));
                Ok(c)
            }
            Err(e) => {
                *guard = None;
                Err(crate::frame::classify_io(e.kind()))
            }
        }
    }
}

impl Transport<Request, Reply> for SocketClient {
    fn attempt(&self, req: Request, timeout: Option<Duration>) -> Result<Reply, RpcError> {
        let conn = self.conn()?;
        let (tag, rx) = conn.begin(&req)?;
        match timeout {
            None => rx.recv().map_err(|_| RpcError::Disconnected),
            Some(t) => rx.recv_timeout(t).map_err(|e| {
                conn.forget(tag);
                match e {
                    RecvTimeoutError::Timeout => RpcError::TimedOut,
                    RecvTimeoutError::Disconnected => RpcError::Disconnected,
                }
            }),
        }
    }

    fn call_async(&self, req: Request) -> Result<Pending<Reply>, RpcError> {
        let conn = self.conn()?;
        let (_tag, rx) = conn.begin(&req)?;
        Ok(Pending::new(rx))
    }

    fn reconnects(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "socket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan};
    use crate::options::CallOptions;
    use crate::Connector;
    use bytes::{ByteRope, Bytes};
    use nasd_crypto::Sha256;
    use nasd_proto::wire::WireEncode;
    use nasd_proto::{
        Nonce, ObjectId, PartitionId, ProtectionLevel, ReplyBody, RequestBody, RequestDigest,
        SecurityHeader,
    };

    /// A write-shaped request whose payload is `data`; `mark` lands in
    /// the object id so the echo service can key behavior off it.
    fn request(mark: u64, data: Vec<u8>) -> Request {
        let len = u64::try_from(data.len()).unwrap_or(u64::MAX);
        Request {
            header: SecurityHeader {
                protection: ProtectionLevel::ArgsIntegrity,
                nonce: Nonce::new(1, mark),
            },
            capability: None,
            body: RequestBody::Write {
                partition: PartitionId(1),
                object: ObjectId(mark),
                offset: 0,
                len,
            },
            digest: RequestDigest(Sha256::digest(b"socket-test")),
            data: Bytes::from(data),
        }
    }

    /// Echo service: replies with the request payload as shared bytes.
    fn echo(req: Request) -> Reply {
        Reply::ok(ReplyBody::Data(ByteRope::from(req.data)))
    }

    fn reply_data(reply: &Reply) -> Vec<u8> {
        match &reply.body {
            ReplyBody::Data(rope) => rope.to_vec(),
            other => panic!("expected data reply, got {other:?}"),
        }
    }

    #[test]
    fn uds_roundtrip_echoes_payload() {
        let server = serve(&BindAddr::uds_temp("echo"), 2, echo).unwrap();
        let client = SocketClient::dial(server.addr(), 1).unwrap();
        let reply = client
            .attempt(request(1, vec![0xa5; 4096]), Some(Duration::from_secs(5)))
            .unwrap();
        assert!(reply.status.is_ok());
        assert_eq!(reply_data(&reply), vec![0xa5; 4096]);
        assert_eq!(server.stats().frames_in.value(), 1);
        assert_eq!(server.stats().frames_out.value(), 1);
        server.shutdown();
    }

    #[test]
    fn tcp_roundtrip_echoes_payload() {
        let server = serve(&BindAddr::tcp_ephemeral(), 2, echo).unwrap();
        // Port 0 must have been resolved to a real port.
        match server.addr() {
            BindAddr::Tcp(a) => assert_ne!(a.port(), 0),
            BindAddr::Uds(_) => panic!("bound TCP, resolved UDS"),
        }
        let client = SocketClient::dial(server.addr(), 2).unwrap();
        for i in 0..4u64 {
            let reply = client
                .attempt(request(i, vec![0x5a; 1024]), Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(reply_data(&reply), vec![0x5a; 1024]);
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_complete_out_of_order() {
        // The service stalls requests marked `1`; others return at once.
        // With both in flight on ONE connection, the fast one must come
        // back first — out-of-order completion over tagged frames.
        let service = |req: Request| {
            if req.body.object() == Some(ObjectId(1)) {
                std::thread::sleep(Duration::from_millis(150));
            }
            echo(req)
        };
        let server = serve(&BindAddr::uds_temp("pipeline"), 2, service).unwrap();
        let client = SocketClient::dial(server.addr(), 1).unwrap();
        let slow = client.call_async(request(1, vec![1; 8])).unwrap();
        let fast = client.call_async(request(2, vec![2; 8])).unwrap();
        // The fast reply lands while the slow request is still parked in
        // its worker; a blocked pipeline would time this out.
        let fast_reply = fast.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(reply_data(&fast_reply), vec![2; 8]);
        let slow_reply = slow.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply_data(&slow_reply), vec![1; 8]);
        server.shutdown();
    }

    #[test]
    fn socket_reply_bytes_match_in_proc_exactly() {
        // The same service reached both ways must produce byte-identical
        // wire replies — the transports may not disturb the protocol.
        let server = serve(&BindAddr::uds_temp("parity"), 1, echo).unwrap();
        let socket = Connector::new().dial(server.addr()).unwrap();
        let (rpc, _handle) = crate::spawn_service(echo);
        let in_proc = Connector::new().in_proc(rpc);
        let opts = CallOptions::blocking();
        for i in 0..8u64 {
            let req = request(i, vec![0x11 ^ (i as u8); 2048]);
            let a = socket.call_with(req.clone(), &opts).unwrap();
            let b = in_proc.call_with(req, &opts).unwrap();
            assert_eq!(a.to_wire(), b.to_wire(), "request {i}");
        }
        server.shutdown();
    }

    #[test]
    fn malformed_payload_gets_bad_request_and_connection_survives() {
        let server = serve(&BindAddr::uds_temp("garbage"), 1, echo).unwrap();
        let BindAddr::Uds(path) = server.addr().clone() else {
            panic!("expected UDS")
        };
        let mut stream = UnixStream::connect(&path).unwrap();
        // A frame whose payload is not a decodable Request.
        let garbage = FrameBuf::new(7, vec![0xff, 0xee, 0xdd], Vec::new()).unwrap();
        write_frames(&mut stream, std::slice::from_ref(&garbage)).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert_eq!(frame.tag, 7);
        let reply = Reply::from_wire_shared(frame.payload).unwrap();
        assert_eq!(reply.status, NasdStatus::BadRequest);
        assert_eq!(server.stats().decode_errors.value(), 1);
        // Same connection still serves well-formed traffic.
        let req = request(3, vec![9; 64]);
        let mut head = WireWriter::new();
        let mut segments = Vec::new();
        req.encode_frame(&mut head, &mut segments);
        let good = FrameBuf::new(8, head.into_vec(), segments).unwrap();
        write_frames(&mut stream, std::slice::from_ref(&good)).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert_eq!(frame.tag, 8);
        let reply = Reply::from_wire_shared(frame.payload).unwrap();
        assert_eq!(reply_data(&reply), vec![9; 64]);
        server.shutdown();
    }

    #[test]
    fn client_redials_after_server_restart() {
        let addr = BindAddr::uds_temp("restart");
        let server = serve(&addr, 1, echo).unwrap();
        let channel = Connector::new().dial(&addr).unwrap();
        let opts = CallOptions::blocking();
        assert!(channel.call_with(request(1, vec![1; 16]), &opts).is_ok());
        server.shutdown();
        // Dead server: the pooled connection is gone and re-dial fails.
        assert!(channel.call_with(request(2, vec![2; 16]), &opts).is_err());
        // New server on the same address: the retry loop re-dials
        // because the socket transport reconnects.
        let server = serve(&addr, 1, echo).unwrap();
        let retry = CallOptions::retry(crate::RetryPolicy::standard());
        let reply = channel.call_with(request(3, vec![3; 16]), &retry).unwrap();
        assert_eq!(reply_data(&reply), vec![3; 16]);
        server.shutdown();
    }

    #[test]
    fn shutdown_removes_socket_file_and_joins() {
        let addr = BindAddr::uds_temp("teardown");
        let server = serve(&addr, 2, echo).unwrap();
        let client = SocketClient::dial(&addr, 1).unwrap();
        client
            .attempt(request(1, vec![4; 32]), Some(Duration::from_secs(5)))
            .unwrap();
        let BindAddr::Uds(path) = addr else {
            panic!("expected UDS")
        };
        assert!(path.exists());
        server.shutdown();
        assert!(!path.exists(), "shutdown must remove the socket file");
        // Calls after shutdown fail cleanly rather than hang.
        assert!(client
            .attempt(request(2, vec![5; 32]), Some(Duration::from_secs(1)))
            .is_err());
    }

    #[test]
    fn seeded_faults_on_socket_match_in_proc_replies() {
        // Satellite: pipelining correctness under fault injection. For
        // three seeds, a fault-wrapped socket channel and a
        // fault-wrapped in-proc channel (fresh but identically seeded
        // plans) must converge to byte-identical replies under retry.
        for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
            let server = serve(&BindAddr::uds_temp("faults"), 2, echo).unwrap();
            let config = FaultConfig {
                drop: 0.2,
                duplicate: 0.1,
                delay: 0.2,
                max_delay: Duration::from_micros(200),
                drop_reply: 0.2,
            };
            let sock_plan = FaultPlan::new(seed);
            let socket = Connector::new()
                .faults(sock_plan.channel(1, config))
                .dial(server.addr())
                .unwrap();
            let (rpc, _handle) = crate::spawn_service(echo);
            let proc_plan = FaultPlan::new(seed);
            let in_proc = Connector::new()
                .faults(proc_plan.channel(1, config))
                .in_proc(rpc);
            let opts = CallOptions {
                policy: crate::RetryPolicy::standard(),
                attempt_timeout: Some(Duration::from_millis(200)),
                stats: None,
            };
            for i in 0..16u64 {
                let req = request(i, vec![(i as u8) | 0x40; 512]);
                let a = socket.call_with(req.clone(), &opts).unwrap();
                let b = in_proc.call_with(req, &opts).unwrap();
                assert_eq!(a.to_wire(), b.to_wire(), "seed {seed:#x} request {i}");
            }
            // Both plans consumed the same deterministic schedule.
            assert_eq!(sock_plan.trace(), proc_plan.trace(), "seed {seed:#x}");
            server.shutdown();
        }
    }
}
