//! Real-thread pacing.
//!
//! The one sanctioned wall-clock sleep in the workspace. Fault-injected
//! delays and retry backoff pause the *calling* thread — they model wire
//! and scheduling latency, not simulated time — and every such pause must
//! go through [`pace`] so the D1 determinism lint can keep
//! `std::thread::sleep` out of sim-visible code, and so no caller ever
//! sleeps while holding a drive or store lock (callers pace before
//! acquiring, never inside a critical section).

use std::time::Duration;

/// Pause the calling OS thread for `d`. No-op for a zero duration.
///
/// Must be called without any drive/store lock held: pacing is a
/// transport-layer concern and a held lock would turn an injected delay
/// into a cross-request stall.
pub fn pace(d: Duration) {
    if d.is_zero() {
        return;
    }
    // nasd-lint: allow(wall-clock, "single sanctioned real-thread pacing site; models wire latency and retry backoff, never sim-visible time")
    std::thread::sleep(d);
}
