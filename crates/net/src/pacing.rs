//! Real-thread pacing.
//!
//! The one sanctioned wall-clock sleep in the workspace. Fault-injected
//! delays and retry backoff pause the *calling* thread — they model wire
//! and scheduling latency, not simulated time — and every such pause must
//! go through [`pace`] so the D1 determinism lint can keep
//! `std::thread::sleep` out of sim-visible code, and so no caller ever
//! sleeps while holding a drive or store lock (callers pace before
//! acquiring, never inside a critical section).

use parking_lot::Mutex;
use std::time::Duration;

/// Pause the calling OS thread for `d`. No-op for a zero duration.
///
/// Must be called without any drive/store lock held: pacing is a
/// transport-layer concern and a held lock would turn an injected delay
/// into a cross-request stall.
pub fn pace(d: Duration) {
    if d.is_zero() {
        return;
    }
    // nasd-lint: allow(wall-clock, "single sanctioned real-thread pacing site; models wire latency and retry backoff, never sim-visible time")
    std::thread::sleep(d);
}

/// A byte-rate token bucket built on [`pace`]: callers debit bytes and
/// the pacer stalls the calling thread just long enough to hold the
/// stream to the configured rate. This is how background storage-
/// management I/O (rebuild, scrubbing) is throttled so foreground
/// traffic degrades gracefully instead of collapsing.
///
/// Sub-millisecond debts accumulate instead of being dropped, so many
/// small debits pace as accurately as one large debit. The pacer is
/// shared-state-safe: the debt ledger sits behind a mutex, and the
/// sleep itself always happens with the ledger lock released.
#[derive(Debug)]
pub struct RatePacer {
    /// Bytes per second; `None` is unlimited.
    bytes_per_sec: Option<u64>,
    /// Accumulated unpaid debt, in nanoseconds.
    debt_ns: Mutex<u64>,
}

/// Debts below this threshold keep accumulating rather than sleeping:
/// sleeping for microseconds costs more scheduling noise than it pays
/// back in rate accuracy.
const MIN_SLEEP_NS: u64 = 1_000_000;

impl RatePacer {
    /// A pacer that never stalls (rebuild at full platter speed).
    #[must_use]
    pub fn unlimited() -> Self {
        RatePacer {
            bytes_per_sec: None,
            debt_ns: Mutex::new(0),
        }
    }

    /// A pacer holding callers to `bytes_per_sec`. A rate of zero means
    /// unlimited (the conventional "no throttle" config value).
    #[must_use]
    pub fn with_rate(bytes_per_sec: u64) -> Self {
        RatePacer {
            bytes_per_sec: (bytes_per_sec > 0).then_some(bytes_per_sec),
            debt_ns: Mutex::new(0),
        }
    }

    /// The configured rate, if any.
    #[must_use]
    pub fn rate(&self) -> Option<u64> {
        self.bytes_per_sec
    }

    /// Account for `bytes` of transfer, stalling the calling thread (via
    /// [`pace`], never under the ledger lock) as needed to hold the
    /// configured rate.
    pub fn debit(&self, bytes: u64) {
        let Some(rate) = self.bytes_per_sec else {
            return;
        };
        let owed = {
            let mut debt = self.debt_ns.lock();
            // bytes/rate seconds → nanoseconds, saturating on overflow.
            let add = (u128::from(bytes) * 1_000_000_000 / u128::from(rate.max(1)))
                .min(u128::from(u64::MAX)) as u64;
            *debt = debt.saturating_add(add);
            if *debt < MIN_SLEEP_NS {
                return;
            }
            std::mem::take(&mut *debt)
        };
        pace(Duration::from_nanos(owed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unlimited_never_stalls() {
        assert_eq!(RatePacer::unlimited().rate(), None);
        assert_eq!(RatePacer::with_rate(0).rate(), None, "rate 0 is unlimited");
        let p = RatePacer::with_rate(0);
        let t0 = Instant::now();
        p.debit(u64::MAX);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn rate_holds_stream_to_budget() {
        // 10 MiB at 100 MiB/s must take ~100 ms.
        let p = RatePacer::with_rate(100 << 20);
        let t0 = Instant::now();
        for _ in 0..10 {
            p.debit(1 << 20);
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(80),
            "paced too little: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(3),
            "paced too much: {elapsed:?}"
        );
    }

    #[test]
    fn sub_threshold_debts_accumulate() {
        // 256 KiB at 1 GiB/s is ~0.24 ms — below the minimum sleep in one
        // debit, but 80 of them owe ~19 ms in aggregate.
        let p = RatePacer::with_rate(1 << 30);
        let t0 = Instant::now();
        for _ in 0..80 {
            p.debit(256 << 10);
        }
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }
}
