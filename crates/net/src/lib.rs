//! Network substrate for the NASD reproduction.
//!
//! Two planes, mirroring `nasd-disk`:
//!
//! * **Timing** ([`NetworkModel`]): a switched network — each node owns a
//!   full-duplex link to a switch with "sufficient bisection bandwidth"
//!   (§7), so contention happens only at the endpoints' links, plus a
//!   protocol CPU-cost model ([`RpcCostModel`]) reproducing the paper's
//!   observation that "DCE RPC cannot push more than 80 Mb/s through a
//!   155 Mb/s ATM link before the receiving client saturates" (§4.3).
//! * **Functional** ([`spawn_service`], [`Rpc`]): a threaded in-process
//!   request/reply transport over crossbeam channels, used by the real
//!   file managers, Cheops and PFS to talk to real drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod model;
mod options;
mod pacing;
mod rpc;

pub use fault::{
    splitmix64, ChannelFaults, FaultAction, FaultConfig, FaultEvent, FaultPlan, RetryPolicy,
};
pub use model::{LinkSpec, NetworkModel, NodeId, RpcCostModel};
pub use options::{CallOptions, CallStats};
pub use pacing::{pace, RatePacer};
pub use rpc::{spawn_service, Rpc, RpcError, ServiceHandle};
