//! Network substrate for the NASD reproduction.
//!
//! Two planes, mirroring `nasd-disk`:
//!
//! * **Timing** ([`NetworkModel`]): a switched network — each node owns a
//!   full-duplex link to a switch with "sufficient bisection bandwidth"
//!   (§7), so contention happens only at the endpoints' links, plus a
//!   protocol CPU-cost model ([`RpcCostModel`]) reproducing the paper's
//!   observation that "DCE RPC cannot push more than 80 Mb/s through a
//!   155 Mb/s ATM link before the receiving client saturates" (§4.3).
//! * **Functional**: a unified [`Transport`] abstraction behind the
//!   [`Channel`] handle every client holds — with two implementations:
//!   the threaded in-process [`Rpc`] over crossbeam channels
//!   ([`spawn_service`]), and a real TCP/UDS socket transport
//!   ([`serve`], [`SocketClient`]) speaking the length-prefixed wire
//!   protocol with tagged frames, request pipelining and reply
//!   batching. [`Connector`] is how endpoints are built; `call_with`
//!   ([`CallOptions`]) is the single call surface on both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connect;
mod fault;
mod frame;
mod model;
mod options;
mod pacing;
mod rpc;
mod socket;
mod transport;

pub use connect::Connector;
pub use fault::{
    splitmix64, ChannelFaults, FaultAction, FaultConfig, FaultEvent, FaultPlan, RetryPolicy,
};
pub use frame::{
    classify_io, read_frame, write_frames, Frame, FrameBuf, FrameError, HEADER_LEN, MAX_FRAME_LEN,
};
pub use model::{LinkSpec, NetworkModel, NodeId, RpcCostModel};
pub use options::{CallOptions, CallStats};
pub use pacing::{pace, RatePacer};
pub use rpc::{spawn_service, Rpc, RpcError, ServiceHandle};
pub use socket::{serve, BindAddr, ServerStats, SocketClient, WireServer, MAX_BATCH};
pub use transport::{Channel, Pending, Transport};
