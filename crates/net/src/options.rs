//! Unified call options for [`Rpc`](crate::Rpc) clients.
//!
//! The NFS, AFS and Cheops clients each grew an identical hand-rolled
//! retry loop around `call_timeout`; [`CallOptions`] replaces all of them
//! with one policy object that [`Rpc::call_with`](crate::Rpc::call_with)
//! interprets: how many attempts, how long to wait per attempt, and an
//! optional [`CallStats`] bundle so every retry and timeout shows up in a
//! metrics [`Registry`](nasd_obs::Registry).

use std::sync::Arc;
use std::time::Duration;

use nasd_obs::{Counter, Registry};

use crate::fault::RetryPolicy;

/// Counter bundle for one client's RPC traffic, resolved once from a
/// registry and shared by every call.
#[derive(Debug, Clone)]
pub struct CallStats {
    /// Logical calls issued (one per `call_with`).
    pub calls: Arc<Counter>,
    /// Transport attempts, including the first try of each call.
    pub attempts: Arc<Counter>,
    /// Attempts that timed out (message lost or service slow).
    pub timeouts: Arc<Counter>,
    /// Calls that failed because the service disconnected.
    pub disconnects: Arc<Counter>,
    /// Calls that exhausted every attempt without an answer.
    pub exhausted: Arc<Counter>,
}

impl CallStats {
    /// Resolve the bundle under `prefix` (e.g. `"nfs/fm"`) in `registry`,
    /// creating `prefix/calls`, `prefix/attempts`, `prefix/timeouts`,
    /// `prefix/disconnects` and `prefix/exhausted`.
    #[must_use]
    pub fn in_registry(registry: &Registry, prefix: &str) -> CallStats {
        CallStats {
            calls: registry.counter(&format!("{prefix}/calls")),
            attempts: registry.counter(&format!("{prefix}/attempts")),
            timeouts: registry.counter(&format!("{prefix}/timeouts")),
            disconnects: registry.counter(&format!("{prefix}/disconnects")),
            exhausted: registry.counter(&format!("{prefix}/exhausted")),
        }
    }
}

/// How an RPC call should be executed: attempts, pacing, per-attempt
/// timeout, and optional metrics.
///
/// The three legacy entry points map onto options like this:
///
/// | legacy                  | options                       |
/// |-------------------------|-------------------------------|
/// | `call(req)`             | [`CallOptions::blocking()`]   |
/// | `call_timeout(req, t)`  | [`CallOptions::once(t)`]      |
/// | `call_retry(req, p)`    | [`CallOptions::retry(p)`]     |
#[derive(Debug, Clone)]
pub struct CallOptions {
    /// Attempt count and backoff schedule.
    pub policy: RetryPolicy,
    /// Per-attempt reply timeout; `None` blocks until the reply arrives
    /// or the service disconnects (only sensible with a single attempt).
    pub attempt_timeout: Option<Duration>,
    /// Optional counters recording this call's traffic.
    pub stats: Option<CallStats>,
}

impl CallOptions {
    /// One attempt, wait forever — the semantics of plain `call`.
    #[must_use]
    pub fn blocking() -> CallOptions {
        CallOptions {
            policy: RetryPolicy::once(Duration::MAX),
            attempt_timeout: None,
            stats: None,
        }
    }

    /// One attempt bounded by `timeout` — the semantics of `call_timeout`.
    #[must_use]
    pub fn once(timeout: Duration) -> CallOptions {
        CallOptions {
            policy: RetryPolicy::once(timeout),
            attempt_timeout: Some(timeout),
            stats: None,
        }
    }

    /// Retry per `policy` with its per-attempt timeout — the semantics of
    /// `call_retry`.
    #[must_use]
    pub fn retry(policy: RetryPolicy) -> CallOptions {
        CallOptions {
            attempt_timeout: Some(policy.timeout),
            policy,
            stats: None,
        }
    }

    /// Attach a [`CallStats`] bundle (fluent).
    #[must_use]
    pub fn with_stats(mut self, stats: CallStats) -> CallOptions {
        self.stats = Some(stats);
        self
    }

    /// Resolve and attach stats under `prefix` in `registry` (fluent).
    #[must_use]
    pub fn with_registry(self, registry: &Registry, prefix: &str) -> CallOptions {
        self.with_stats(CallStats::in_registry(registry, prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_map_legacy_semantics() {
        let blocking = CallOptions::blocking();
        assert_eq!(blocking.policy.max_attempts, 1);
        assert_eq!(blocking.attempt_timeout, None);

        let once = CallOptions::once(Duration::from_millis(5));
        assert_eq!(once.policy.max_attempts, 1);
        assert_eq!(once.attempt_timeout, Some(Duration::from_millis(5)));

        let policy = RetryPolicy::standard();
        let retry = CallOptions::retry(policy);
        assert_eq!(retry.policy, policy);
        assert_eq!(retry.attempt_timeout, Some(policy.timeout));
    }

    #[test]
    fn stats_resolve_under_prefix() {
        let registry = Registry::new();
        let opts = CallOptions::blocking().with_registry(&registry, "nfs/fm");
        let stats = opts.stats.unwrap();
        stats.calls.inc();
        assert_eq!(registry.counter("nfs/fm/calls").value(), 1);
        // Same prefix shares the same counters.
        let again = CallStats::in_registry(&registry, "nfs/fm");
        assert!(Arc::ptr_eq(&stats.calls, &again.calls));
    }
}
