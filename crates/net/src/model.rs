//! Switched-network timing model and protocol CPU costs.

use nasd_obs::{Counter, Histogram, Registry};
use nasd_sim::{BandwidthShare, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a node (client, drive, or server) on the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Parameters of a node's link to the switch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in megabits per second.
    pub mbits_per_sec: f64,
    /// One-way latency to the switch.
    pub latency: SimTime,
}

impl LinkSpec {
    /// OC-3 ATM as in the prototype testbed: 155 Mb/s.
    #[must_use]
    pub fn oc3_atm() -> Self {
        LinkSpec {
            mbits_per_sec: 155.0,
            latency: SimTime::from_micros(20),
        }
    }

    /// 10 Mb/s Ethernet (the Active Disks experiment's network, §6).
    #[must_use]
    pub fn ethernet_10() -> Self {
        LinkSpec {
            mbits_per_sec: 10.0,
            latency: SimTime::from_micros(100),
        }
    }

    /// Fast (100 Mb/s) Ethernet — the low-cost server NIC of Figure 4.
    #[must_use]
    pub fn fast_ethernet() -> Self {
        LinkSpec {
            mbits_per_sec: 100.0,
            latency: SimTime::from_micros(50),
        }
    }

    /// Gigabit Ethernet — the high-end server NIC of Figure 4.
    #[must_use]
    pub fn gigabit_ethernet() -> Self {
        LinkSpec {
            mbits_per_sec: 1000.0,
            latency: SimTime::from_micros(20),
        }
    }
}

struct Duplex {
    up: BandwidthShare,
    down: BandwidthShare,
    latency: SimTime,
}

struct NetMetrics {
    messages: Arc<Counter>,
    bytes: Arc<Counter>,
    sizes: Arc<Histogram>,
}

/// A switched network with per-node full-duplex links and an
/// uncontended fabric.
///
/// # Example
///
/// ```
/// use nasd_net::{LinkSpec, NetworkModel, NodeId};
/// use nasd_sim::SimTime;
///
/// let mut net = NetworkModel::new();
/// let a = NodeId(1);
/// let b = NodeId(2);
/// net.add_node(a, LinkSpec::oc3_atm());
/// net.add_node(b, LinkSpec::oc3_atm());
/// // 2 MB at 155 Mb/s ≈ 108 ms per hop, two store-and-forward hops.
/// let arrival = net.send(SimTime::ZERO, a, b, 2 << 20);
/// assert!((210..225).contains(&arrival.as_millis()));
/// ```
#[derive(Default)]
pub struct NetworkModel {
    nodes: HashMap<NodeId, Duplex>,
    metrics: Option<NetMetrics>,
}

impl NetworkModel {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        NetworkModel::default()
    }

    /// Attach `node` to the switch over `link`.
    ///
    /// # Panics
    ///
    /// Panics if the node is already attached.
    pub fn add_node(&mut self, node: NodeId, link: LinkSpec) {
        let bytes_per_sec = link.mbits_per_sec * 1e6 / 8.0;
        let prev = self.nodes.insert(
            node,
            Duplex {
                up: BandwidthShare::new(format!("{node}-up"), bytes_per_sec),
                down: BandwidthShare::new(format!("{node}-down"), bytes_per_sec),
                latency: link.latency,
            },
        );
        assert!(prev.is_none(), "{node} already attached");
    }

    /// Whether `node` is attached.
    #[must_use]
    pub fn has_node(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Record every message into `registry` under `prefix`:
    /// `prefix/messages` and `prefix/bytes` counters plus a
    /// `prefix/message_bytes` size histogram.
    pub fn observe(&mut self, registry: &Registry, prefix: &str) {
        self.metrics = Some(NetMetrics {
            messages: registry.counter(&format!("{prefix}/messages")),
            bytes: registry.counter(&format!("{prefix}/bytes")),
            sizes: registry.histogram(&format!("{prefix}/message_bytes")),
        });
    }

    /// Send `bytes` from `from` to `to` starting at `now`; returns the
    /// arrival time at `to`. Serializes on the sender's uplink, crosses
    /// the switch, then serializes on the receiver's downlink.
    ///
    /// # Panics
    ///
    /// Panics if either node is not attached.
    // nasd-lint: allow(transitive-panic, "sim-model contract: nodes attach at topology build time; a missing node is a harness bug, documented under Panics")
    pub fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        if let Some(metrics) = &self.metrics {
            metrics.messages.inc();
            metrics.bytes.add(bytes);
            metrics.sizes.record(bytes);
        }
        let (tx_end, tx_latency) = {
            let src = self.nodes.get_mut(&from).unwrap_or_else(|| {
                panic!("{from} not attached");
            });
            let (_, end) = src.up.transfer(now, bytes);
            (end, src.latency)
        };
        let dst = self.nodes.get_mut(&to).unwrap_or_else(|| {
            panic!("{to} not attached");
        });
        // The head of the message reaches the downlink after the uplink
        // serialization of the first bytes + propagation; modelling at
        // message granularity, the downlink starts no earlier than the
        // uplink finishes plus propagation (store-and-forward switch).
        let at_switch = tx_end + tx_latency;
        let (_, rx_end) = dst.down.transfer(at_switch, bytes);
        rx_end + dst.latency
    }

    /// Utilization of a node's downlink over `elapsed` (0–1).
    #[must_use]
    pub fn downlink_utilization(&self, node: NodeId, elapsed: SimTime) -> f64 {
        self.nodes
            .get(&node)
            .map_or(0.0, |d| d.down.fifo().utilization(elapsed))
    }

    /// Utilization of a node's uplink over `elapsed` (0–1).
    #[must_use]
    pub fn uplink_utilization(&self, node: NodeId, elapsed: SimTime) -> f64 {
        self.nodes
            .get(&node)
            .map_or(0.0, |d| d.up.fifo().utilization(elapsed))
    }
}

impl std::fmt::Debug for NetworkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkModel")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// CPU cost of the RPC protocol stack at an endpoint.
///
/// The paper blames "workstation-class implementations of communications"
/// (DCE RPC over UDP/IP) for most of the request cost; at the client,
/// receive processing caps goodput. The default constants reproduce §4.3:
/// a 233 MHz AlphaStation receiving over OC-3 saturates near 80 Mb/s
/// (10 MB/s), i.e. the stack burns roughly all of one CPU at that rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RpcCostModel {
    /// Fixed instructions per message (marshalling, syscalls, interrupts).
    pub per_message: f64,
    /// Instructions per payload byte (checksums + copies).
    pub per_byte: f64,
}

impl RpcCostModel {
    /// The heavyweight DCE-RPC-class stack of the prototype.
    #[must_use]
    pub fn dce_rpc() -> Self {
        RpcCostModel {
            per_message: 35_000.0,
            per_byte: 10.0,
        }
    }

    /// A leaner stack ("commodity NASD drives must have a less costly RPC
    /// mechanism") for sensitivity studies.
    #[must_use]
    pub fn lean() -> Self {
        RpcCostModel {
            per_message: 5_000.0,
            per_byte: 1.0,
        }
    }

    /// Instructions to process one message of `bytes` payload.
    #[must_use]
    pub fn instructions(&self, bytes: u64) -> u64 {
        (self.per_message + self.per_byte * bytes as f64).round() as u64
    }

    /// Goodput ceiling in MB/s for a CPU of `mhz` MHz at `cpi` cycles per
    /// instruction spending all its time in the stack, at message size
    /// `bytes`.
    #[must_use]
    pub fn saturation_mb_s(&self, mhz: f64, cpi: f64, bytes: u64) -> f64 {
        let instr_per_sec = mhz * 1e6 / cpi;
        let instr_per_msg = self.instructions(bytes) as f64;
        instr_per_sec / instr_per_msg * bytes as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> NetworkModel {
        let mut net = NetworkModel::new();
        net.add_node(NodeId(1), LinkSpec::oc3_atm());
        net.add_node(NodeId(2), LinkSpec::oc3_atm());
        net
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let mut net = two_node_net();
        // 155 Mb/s = 19.375 MB/s; 19_375_000 bytes ≈ 1 s on each link,
        // store-and-forward = 2 s + latency.
        let arrival = net.send(SimTime::ZERO, NodeId(1), NodeId(2), 19_375_000);
        let s = arrival.as_secs_f64();
        assert!((1.99..2.02).contains(&s), "arrival at {s}s");
    }

    #[test]
    fn senders_share_receiver_downlink() {
        let mut net = NetworkModel::new();
        for n in 1..=3u64 {
            net.add_node(NodeId(n), LinkSpec::oc3_atm());
        }
        // Nodes 2 and 3 each send 1 MB to node 1 at t=0: the downlink
        // serializes them.
        let a1 = net.send(SimTime::ZERO, NodeId(2), NodeId(1), 1 << 20);
        let a2 = net.send(SimTime::ZERO, NodeId(3), NodeId(1), 1 << 20);
        assert!(a2 > a1, "second transfer must queue behind the first");
        let one_mb_time = (1 << 20) as f64 / (155e6 / 8.0);
        assert!((a2 - a1).as_secs_f64() >= one_mb_time * 0.99);
    }

    #[test]
    fn distinct_receivers_do_not_contend() {
        let mut net = NetworkModel::new();
        for n in 1..=4u64 {
            net.add_node(NodeId(n), LinkSpec::oc3_atm());
        }
        let a1 = net.send(SimTime::ZERO, NodeId(1), NodeId(3), 1 << 20);
        let a2 = net.send(SimTime::ZERO, NodeId(2), NodeId(4), 1 << 20);
        assert_eq!(a1, a2, "disjoint pairs ride the switch in parallel");
    }

    #[test]
    fn utilization_reported() {
        let mut net = two_node_net();
        let arrival = net.send(SimTime::ZERO, NodeId(1), NodeId(2), 1_937_500);
        let u_up = net.uplink_utilization(NodeId(1), arrival);
        let u_down = net.downlink_utilization(NodeId(2), arrival);
        assert!(u_up > 0.2 && u_up <= 1.0);
        assert!(u_down > 0.2 && u_down <= 1.0);
        assert_eq!(net.uplink_utilization(NodeId(9), arrival), 0.0);
    }

    #[test]
    fn observed_network_counts_messages() {
        let registry = Registry::new();
        let mut net = two_node_net();
        net.observe(&registry, "net");
        net.send(SimTime::ZERO, NodeId(1), NodeId(2), 4096);
        net.send(SimTime::ZERO, NodeId(2), NodeId(1), 100);
        assert_eq!(registry.counter("net/messages").value(), 2);
        assert_eq!(registry.counter("net/bytes").value(), 4196);
        assert_eq!(registry.histogram("net/message_bytes").count(), 2);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_node_panics() {
        let mut net = two_node_net();
        net.add_node(NodeId(1), LinkSpec::oc3_atm());
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn unknown_node_panics() {
        let mut net = two_node_net();
        net.send(SimTime::ZERO, NodeId(1), NodeId(9), 10);
    }

    #[test]
    fn dce_rpc_saturates_near_80_mbits() {
        // §4.3: DCE RPC over OC-3 saturates the receiving client near
        // 80 Mb/s. AlphaStation 255: 233 MHz, CPI ~2.2, 512 KB messages.
        let mb_s = RpcCostModel::dce_rpc().saturation_mb_s(233.0, 2.2, 512 * 1024);
        let mbits = mb_s * 8.0;
        assert!(
            (70.0..95.0).contains(&mbits),
            "DCE RPC saturation at {mbits:.1} Mb/s"
        );
    }

    #[test]
    fn lean_stack_is_much_cheaper() {
        let dce = RpcCostModel::dce_rpc().instructions(65_536);
        let lean = RpcCostModel::lean().instructions(65_536);
        assert!(lean * 5 < dce);
    }

    #[test]
    fn link_presets() {
        assert_eq!(LinkSpec::ethernet_10().mbits_per_sec, 10.0);
        assert_eq!(LinkSpec::fast_ethernet().mbits_per_sec, 100.0);
        assert_eq!(LinkSpec::gigabit_ethernet().mbits_per_sec, 1000.0);
        assert!(!NetworkModel::new().has_node(NodeId(0)));
    }
}
