//! A threaded in-process request/reply transport.
//!
//! The functional stack (file managers, Cheops, PFS, examples) runs real
//! services — drives and managers — each on its own thread, reached by a
//! cloneable [`Rpc`] handle. The paper used DCE RPC over UDP/IP for the
//! same role; an in-process channel transport exercises the identical
//! message flow (every byte still crosses a serialized channel as a
//! `Request`/`Reply` value) without the 1998 protocol stack.
//!
//! The transport is fault-aware: an [`Rpc`] handle built with
//! [`Rpc::with_faults`] consults its [`ChannelFaults`] injector on every
//! call and can lose, duplicate, or delay messages per the seeded
//! [`crate::FaultPlan`]. A lost message surfaces as
//! [`RpcError::TimedOut`] — the client cannot distinguish a dropped
//! request from a dropped reply, exactly as on a real network.

use crate::fault::{ChannelFaults, FaultAction};
use crate::options::CallOptions;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The service thread has shut down.
    Disconnected,
    /// No reply arrived in time — the request or its reply may have been
    /// lost, or the service is too slow. The caller cannot tell which.
    TimedOut,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Disconnected => f.write_str("service disconnected"),
            RpcError::TimedOut => f.write_str("service call timed out"),
        }
    }
}

impl std::error::Error for RpcError {}

enum Envelope<Req, Resp> {
    Call(Req, Sender<Resp>),
    Stop,
}

/// Client handle to a threaded service. Cloneable; calls from any thread.
pub struct Rpc<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    faults: Option<Arc<ChannelFaults>>,
}

impl<Req, Resp> Clone for Rpc<Req, Resp> {
    fn clone(&self) -> Self {
        Rpc {
            tx: self.tx.clone(),
            faults: self.faults.clone(),
        }
    }
}

impl<Req, Resp> fmt::Debug for Rpc<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Rpc { .. }")
    }
}

/// Fate of a dispatched request, after fault injection.
enum Ticket<Resp> {
    /// Request delivered; wait on this receiver.
    Wait(Receiver<Resp>),
    /// Request delivered but the reply will be discarded (lost on the
    /// way back); wait so the service finishes, then report a timeout.
    WaitDiscard(Receiver<Resp>),
    /// Request lost before delivery.
    Lost,
}

impl<Req, Resp> Rpc<Req, Resp> {
    /// A handle that consults `faults` on every call. The underlying
    /// service is shared with `self`; only this handle's traffic is
    /// subject to injection.
    #[must_use]
    pub fn with_faults(&self, faults: Arc<ChannelFaults>) -> Rpc<Req, Resp> {
        Rpc {
            tx: self.tx.clone(),
            faults: Some(faults),
        }
    }
}

impl<Req: Send + Clone + 'static, Resp: Send + 'static> Rpc<Req, Resp> {
    fn dispatch(&self, req: Req) -> Result<Ticket<Resp>, RpcError> {
        let action = match &self.faults {
            Some(f) => f.next_action(),
            None => FaultAction::Deliver,
        };
        match action {
            FaultAction::DropRequest => Ok(Ticket::Lost),
            FaultAction::DelayMicros(us) => {
                crate::pacing::pace(Duration::from_micros(us));
                self.send_one(req).map(Ticket::Wait)
            }
            FaultAction::Duplicate => {
                // Two independent deliveries of the same message; the
                // caller listens to the first. For signed drive traffic
                // the second delivery trips the replay window.
                let rx = self.send_one(req.clone())?;
                // nasd-lint: allow(swallowed-error, "fault injection: the duplicate copy is best-effort; the caller waits on the first delivery")
                let _ = self.send_one(req);
                Ok(Ticket::Wait(rx))
            }
            FaultAction::DropReply => self.send_one(req).map(Ticket::WaitDiscard),
            FaultAction::Deliver => self.send_one(req).map(Ticket::Wait),
        }
    }

    fn send_one(&self, req: Req) -> Result<Receiver<Resp>, RpcError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Envelope::Call(req, reply_tx))
            .map_err(|_| RpcError::Disconnected)?;
        Ok(reply_rx)
    }

    /// One transport attempt: dispatch through fault injection, then wait
    /// for the reply — bounded by `timeout` when given, forever otherwise.
    pub(crate) fn attempt_once(
        &self,
        req: Req,
        timeout: Option<Duration>,
    ) -> Result<Resp, RpcError> {
        let wait = |rx: Receiver<Resp>| match timeout {
            None => rx.recv().map_err(|_| RpcError::Disconnected),
            Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => RpcError::TimedOut,
                RecvTimeoutError::Disconnected => RpcError::Disconnected,
            }),
        };
        match self.dispatch(req)? {
            Ticket::Wait(rx) => wait(rx),
            Ticket::WaitDiscard(rx) => {
                // nasd-lint: allow(swallowed-error, "fault injection: the reply is discarded by design; waiting only sequences the service")
                let _ = wait(rx);
                Err(RpcError::TimedOut)
            }
            Ticket::Lost => Err(RpcError::TimedOut),
        }
    }

    /// The unified call path: attempts, backoff, per-attempt timeout and
    /// metrics all come from `opts`. Timeouts are retried (when the
    /// policy grants more attempts); [`RpcError::Disconnected`] is
    /// permanent on a fixed channel and returned immediately.
    ///
    /// Retrying is only safe for requests that are idempotent or
    /// independently signed (drive traffic: each attempt carries a fresh
    /// nonce).
    ///
    /// # Errors
    ///
    /// [`RpcError::TimedOut`] when every attempt timed out (or injected
    /// faults lost a single blocking attempt's message);
    /// [`RpcError::Disconnected`] as soon as the service is gone.
    pub fn call_with(&self, req: Req, opts: &CallOptions) -> Result<Resp, RpcError> {
        crate::transport::retry_loop(req, opts, false, |r, t| self.attempt_once(r, t))
    }

    /// Fire a request without waiting; returns a receiver for the reply
    /// (lets a client pipeline requests to many services — how the PFS
    /// client reads all stripe units of a request in parallel).
    ///
    /// Under fault injection a lost message yields a receiver whose
    /// reply never arrives (its sender is gone) — receive with a timeout
    /// when faults may be active.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] if the service has stopped.
    pub fn call_async(&self, req: Req) -> Result<Receiver<Resp>, RpcError> {
        let action = match &self.faults {
            Some(f) => f.next_action(),
            None => FaultAction::Deliver,
        };
        match action {
            FaultAction::Deliver => self.send_one(req),
            FaultAction::DelayMicros(us) => {
                crate::pacing::pace(Duration::from_micros(us));
                self.send_one(req)
            }
            FaultAction::Duplicate => {
                let rx = self.send_one(req.clone())?;
                // nasd-lint: allow(swallowed-error, "fault injection: the duplicate copy is best-effort; the caller waits on the first delivery")
                let _ = self.send_one(req);
                Ok(rx)
            }
            FaultAction::DropRequest => {
                // Never sent: hand back a receiver whose sender is gone.
                let (_, rx) = bounded(1);
                Ok(rx)
            }
            FaultAction::DropReply => {
                // Delivered and processed, but the reply channel the
                // caller holds is not the one the service answers on.
                let (reply_tx, _) = bounded(1);
                self.tx
                    .send(Envelope::Call(req, reply_tx))
                    .map_err(|_| RpcError::Disconnected)?;
                let (_, rx) = bounded(1);
                Ok(rx)
            }
        }
    }
}

/// Owner handle for a spawned service: stops the service loop and joins
/// the thread on [`ServiceHandle::shutdown`].
pub struct ServiceHandle {
    stop: Option<Box<dyn FnOnce() + Send + Sync>>,
    thread: Option<JoinHandle<()>>,
    replies_dropped: Arc<nasd_obs::Counter>,
}

impl ServiceHandle {
    /// Stop the service loop and join its thread. Clients holding [`Rpc`]
    /// clones are not required to drop first: the loop exits on the stop
    /// message, and later calls return [`RpcError::Disconnected`].
    /// Dropping the handle without calling this detaches the thread (it
    /// exits when the last [`Rpc`] clone drops).
    ///
    /// # Panics
    ///
    /// Re-raises the service closure's panic, if it had one — a crashed
    /// service must not look like a clean shutdown.
    pub fn shutdown(mut self) {
        if let Some(stop) = self.stop.take() {
            stop();
        }
        if let Some(t) = self.thread.take() {
            if let Err(payload) = t.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Replies the service computed but could not deliver because the
    /// caller had already given up (timed out or dropped its receiver).
    /// A steadily climbing value means callers' timeouts are shorter
    /// than the service's latency.
    #[must_use]
    pub fn replies_dropped(&self) -> u64 {
        self.replies_dropped.value()
    }
}

impl fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ServiceHandle { .. }")
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        // Detach: the thread exits when all Rpc senders drop.
        self.stop = None;
        self.thread = None;
    }
}

/// Spawn `service` on its own thread; each incoming request invokes the
/// closure and sends its return value back to the caller.
///
/// # Example
///
/// ```
/// let (rpc, _handle) = nasd_net::spawn_service(|x: u64| x * 2);
/// let opts = nasd_net::CallOptions::blocking();
/// assert_eq!(rpc.call_with(21, &opts).unwrap(), 42);
/// ```
pub fn spawn_service<Req, Resp, F>(mut service: F) -> (Rpc<Req, Resp>, ServiceHandle)
where
    Req: Send + 'static,
    Resp: Send + 'static,
    F: FnMut(Req) -> Resp + Send + 'static,
{
    let (tx, rx) = unbounded::<Envelope<Req, Resp>>();
    let replies_dropped = Arc::new(nasd_obs::Counter::new());
    let dropped = Arc::clone(&replies_dropped);
    let thread = std::thread::spawn(move || {
        while let Ok(env) = rx.recv() {
            match env {
                Envelope::Call(req, reply_tx) => {
                    let resp = service(req);
                    // The caller may have given up; count the orphaned
                    // reply instead of silently discarding it.
                    if reply_tx.send(resp).is_err() {
                        dropped.inc();
                    }
                }
                Envelope::Stop => break,
            }
        }
    });
    let stop_tx = tx.clone();
    (
        Rpc { tx, faults: None },
        ServiceHandle {
            stop: Some(Box::new(move || {
                // nasd-lint: allow(swallowed-error, "failure means the loop already exited; shutdown's join still observes the thread's fate")
                let _ = stop_tx.send(Envelope::Stop);
            })),
            thread: Some(thread),
            replies_dropped,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan, RetryPolicy};

    #[test]
    fn call_roundtrip() {
        let (rpc, _h) = spawn_service(|s: String| s.len());
        assert_eq!(
            rpc.call_with("hello".to_string(), &CallOptions::blocking())
                .unwrap(),
            5
        );
    }

    #[test]
    fn clones_share_the_service() {
        let (rpc, _h) = spawn_service({
            let mut count = 0u64;
            move |(): ()| {
                count += 1;
                count
            }
        });
        let rpc2 = rpc.clone();
        assert_eq!(rpc.call_with((), &CallOptions::blocking()).unwrap(), 1);
        assert_eq!(rpc2.call_with((), &CallOptions::blocking()).unwrap(), 2);
    }

    #[test]
    fn async_calls_pipeline() {
        let (rpc, _h) = spawn_service(|x: u64| x + 1);
        let pending: Vec<_> = (0..10).map(|i| rpc.call_async(i).unwrap()).collect();
        let results: Vec<u64> = pending.into_iter().map(|r| r.recv().unwrap()).collect();
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_callers() {
        let (rpc, _h) = spawn_service(|x: u64| x * x);
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let rpc = rpc.clone();
            joins.push(std::thread::spawn(move || {
                rpc.call_with(i, &CallOptions::blocking()).unwrap()
            }));
        }
        let mut results: Vec<u64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn disconnected_after_shutdown_with_live_clients() {
        let (rpc, handle) = spawn_service(|(): ()| ());
        let rpc2 = rpc.clone();
        assert!(rpc.call_with((), &CallOptions::blocking()).is_ok());
        // Clients still hold handles; shutdown must not block on them.
        handle.shutdown();
        assert_eq!(
            rpc.call_with((), &CallOptions::blocking()),
            Err(RpcError::Disconnected)
        );
        assert_eq!(
            rpc2.call_with((), &CallOptions::blocking()),
            Err(RpcError::Disconnected)
        );
    }

    #[test]
    fn dropping_the_handle_detaches() {
        let (rpc, handle) = spawn_service(|(): ()| ());
        drop(handle); // detached; still serving
        assert!(rpc.call_with((), &CallOptions::blocking()).is_ok());
    }

    #[test]
    fn call_timeout_expires_on_slow_service() {
        let (rpc, _h) = spawn_service(|(): ()| {
            std::thread::sleep(Duration::from_millis(200));
        });
        assert_eq!(
            rpc.call_with((), &CallOptions::once(Duration::from_millis(5))),
            Err(RpcError::TimedOut)
        );
    }

    #[test]
    fn late_replies_to_departed_callers_are_counted() {
        let (rpc, h) = spawn_service(|(): ()| {
            std::thread::sleep(Duration::from_millis(50));
        });
        // The caller gives up long before the service answers; the
        // orphaned reply must be counted, not silently discarded.
        assert_eq!(
            rpc.call_with((), &CallOptions::once(Duration::from_millis(5))),
            Err(RpcError::TimedOut)
        );
        for _ in 0..200 {
            if h.replies_dropped() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(h.replies_dropped(), 1);
        // A caller that waits is never counted.
        assert!(rpc.call_with((), &CallOptions::blocking()).is_ok());
        assert_eq!(h.replies_dropped(), 1);
    }

    #[test]
    fn shutdown_propagates_a_service_panic() {
        let (rpc, h) = spawn_service(|x: u64| {
            assert!(x != 13, "unlucky");
            x
        });
        assert_eq!(rpc.call_with(7, &CallOptions::blocking()).unwrap(), 7);
        assert_eq!(
            rpc.call_with(13, &CallOptions::blocking()),
            Err(RpcError::Disconnected)
        );
        // The crashed service must not look like a clean shutdown.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.shutdown()));
        assert!(err.is_err(), "shutdown should re-raise the service panic");
    }

    #[test]
    fn dropped_requests_surface_as_timeouts_and_retry_recovers() {
        let plan = FaultPlan::new(42);
        let config = FaultConfig {
            drop: 0.5,
            ..FaultConfig::none()
        };
        let (rpc, _h) = spawn_service(|x: u64| x + 1);
        let faulty = rpc.with_faults(plan.channel(1, config));
        let policy = RetryPolicy {
            max_attempts: 32,
            timeout: Duration::from_millis(100),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut timeouts = 0;
        for i in 0..50 {
            // Every individual call either succeeds or times out...
            match faulty.call_with(i, &CallOptions::blocking()) {
                Ok(v) => assert_eq!(v, i + 1),
                Err(RpcError::TimedOut) => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
            // ...and the retry wrapper always gets through at 50% loss.
            assert_eq!(
                faulty.call_with(i, &CallOptions::retry(policy)).unwrap(),
                i + 1
            );
        }
        assert!(timeouts > 0, "the seed should drop some of 50 calls");
        assert!(!plan.trace().is_empty());
    }

    #[test]
    fn call_with_records_stats() {
        use nasd_obs::Registry;
        let registry = Registry::new();
        let plan = FaultPlan::new(42);
        let config = FaultConfig {
            drop: 0.5,
            ..FaultConfig::none()
        };
        let (rpc, _h) = spawn_service(|x: u64| x + 1);
        let faulty = rpc.with_faults(plan.channel(1, config));
        let opts = CallOptions::retry(RetryPolicy {
            max_attempts: 32,
            timeout: Duration::from_millis(100),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        })
        .with_registry(&registry, "test/rpc");
        for i in 0..20 {
            assert_eq!(faulty.call_with(i, &opts).unwrap(), i + 1);
        }
        assert_eq!(registry.counter("test/rpc/calls").value(), 20);
        let attempts = registry.counter("test/rpc/attempts").value();
        let timeouts = registry.counter("test/rpc/timeouts").value();
        assert!(attempts > 20, "50% loss must force retries: {attempts}");
        assert_eq!(attempts, 20 + timeouts);
        assert_eq!(registry.counter("test/rpc/exhausted").value(), 0);
        assert_eq!(registry.counter("test/rpc/disconnects").value(), 0);
    }

    #[test]
    fn call_with_counts_disconnects() {
        use nasd_obs::Registry;
        let registry = Registry::new();
        let (rpc, handle) = spawn_service(|x: u64| x);
        handle.shutdown();
        let opts = CallOptions::blocking().with_registry(&registry, "gone");
        assert_eq!(rpc.call_with(1, &opts), Err(RpcError::Disconnected));
        assert_eq!(registry.counter("gone/disconnects").value(), 1);
    }

    #[test]
    fn retry_does_not_mask_disconnection() {
        let (rpc, handle) = spawn_service(|x: u64| x);
        handle.shutdown();
        assert_eq!(
            rpc.call_with(1, &CallOptions::retry(RetryPolicy::standard())),
            Err(RpcError::Disconnected)
        );
    }

    #[test]
    fn duplicated_calls_still_answer_the_caller() {
        let plan = FaultPlan::new(7);
        let config = FaultConfig {
            duplicate: 1.0,
            ..FaultConfig::none()
        };
        let (rpc, _h) = spawn_service({
            let mut hits = 0u64;
            move |(): ()| {
                hits += 1;
                hits
            }
        });
        let faulty = rpc.with_faults(plan.channel(1, config));
        // Every call is duplicated: the service sees two deliveries but
        // the caller gets exactly one answer.
        let first = faulty.call_with((), &CallOptions::blocking()).unwrap();
        assert_eq!(first, 1);
        // Drain: by the next exchange the duplicate has also run.
        let second = rpc.call_with((), &CallOptions::blocking()).unwrap();
        assert!(second >= 3, "duplicate delivery should have run: {second}");
    }

    #[test]
    fn rpc_error_display() {
        assert_eq!(RpcError::Disconnected.to_string(), "service disconnected");
        assert_eq!(RpcError::TimedOut.to_string(), "service call timed out");
    }
}
