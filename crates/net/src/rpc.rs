//! A threaded in-process request/reply transport.
//!
//! The functional stack (file managers, Cheops, PFS, examples) runs real
//! services — drives and managers — each on its own thread, reached by a
//! cloneable [`Rpc`] handle. The paper used DCE RPC over UDP/IP for the
//! same role; an in-process channel transport exercises the identical
//! message flow (every byte still crosses a serialized channel as a
//! `Request`/`Reply` value) without the 1998 protocol stack.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::fmt;
use std::thread::JoinHandle;

/// Transport-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The service thread has shut down.
    Disconnected,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Disconnected => f.write_str("service disconnected"),
        }
    }
}

impl std::error::Error for RpcError {}

type Envelope<Req, Resp> = (Req, Sender<Resp>);

/// Client handle to a threaded service. Cloneable; calls from any thread.
pub struct Rpc<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
}

impl<Req, Resp> Clone for Rpc<Req, Resp> {
    fn clone(&self) -> Self {
        Rpc {
            tx: self.tx.clone(),
        }
    }
}

impl<Req, Resp> fmt::Debug for Rpc<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Rpc { .. }")
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> Rpc<Req, Resp> {
    /// Synchronous call: send `req`, wait for the reply.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] if the service has stopped.
    pub fn call(&self, req: Req) -> Result<Resp, RpcError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send((req, reply_tx))
            .map_err(|_| RpcError::Disconnected)?;
        reply_rx.recv().map_err(|_| RpcError::Disconnected)
    }

    /// Fire a request without waiting; returns a receiver for the reply
    /// (lets a client pipeline requests to many services — how the PFS
    /// client reads all stripe units of a request in parallel).
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] if the service has stopped.
    pub fn call_async(&self, req: Req) -> Result<Receiver<Resp>, RpcError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send((req, reply_tx))
            .map_err(|_| RpcError::Disconnected)?;
        Ok(reply_rx)
    }
}

/// Owner handle for a spawned service: keeps the thread alive and joins
/// it on [`ServiceHandle::shutdown`].
pub struct ServiceHandle {
    thread: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Stop accepting calls and join the service thread. Safe to call
    /// once; dropping without calling detaches the thread (it exits when
    /// the last [`Rpc`] clone drops).
    pub fn shutdown(mut self) {
        if let Some(t) = self.thread.take() {
            // Joining blocks until the last Rpc handle drops; the caller
            // is expected to drop its handles first.
            let _ = t.join();
        }
    }
}

impl fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ServiceHandle { .. }")
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        // Detach: the thread exits when all Rpc senders drop.
        let _ = self.thread.take();
    }
}

/// Spawn `service` on its own thread; each incoming request invokes the
/// closure and sends its return value back to the caller.
///
/// # Example
///
/// ```
/// let (rpc, _handle) = nasd_net::spawn_service(|x: u64| x * 2);
/// assert_eq!(rpc.call(21).unwrap(), 42);
/// ```
pub fn spawn_service<Req, Resp, F>(mut service: F) -> (Rpc<Req, Resp>, ServiceHandle)
where
    Req: Send + 'static,
    Resp: Send + 'static,
    F: FnMut(Req) -> Resp + Send + 'static,
{
    let (tx, rx) = unbounded::<Envelope<Req, Resp>>();
    let thread = std::thread::spawn(move || {
        while let Ok((req, reply_tx)) = rx.recv() {
            let resp = service(req);
            // The caller may have given up; that is its business.
            let _ = reply_tx.send(resp);
        }
    });
    (
        Rpc { tx },
        ServiceHandle {
            thread: Some(thread),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let (rpc, _h) = spawn_service(|s: String| s.len());
        assert_eq!(rpc.call("hello".to_string()).unwrap(), 5);
    }

    #[test]
    fn clones_share_the_service() {
        let (rpc, _h) = spawn_service({
            let mut count = 0u64;
            move |(): ()| {
                count += 1;
                count
            }
        });
        let rpc2 = rpc.clone();
        assert_eq!(rpc.call(()).unwrap(), 1);
        assert_eq!(rpc2.call(()).unwrap(), 2);
    }

    #[test]
    fn async_calls_pipeline() {
        let (rpc, _h) = spawn_service(|x: u64| x + 1);
        let pending: Vec<_> = (0..10).map(|i| rpc.call_async(i).unwrap()).collect();
        let results: Vec<u64> = pending.into_iter().map(|r| r.recv().unwrap()).collect();
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_callers() {
        let (rpc, _h) = spawn_service(|x: u64| x * x);
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let rpc = rpc.clone();
            joins.push(std::thread::spawn(move || rpc.call(i).unwrap()));
        }
        let mut results: Vec<u64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn disconnected_after_shutdown() {
        let (rpc, handle) = spawn_service(|(): ()| ());
        let rpc2 = rpc.clone();
        drop(rpc);
        drop(rpc2);
        handle.shutdown();
        // Spawning a new channel to the dead service is impossible; a
        // fresh handle to the dropped sender errors:
        let (rpc, handle) = spawn_service(|(): ()| ());
        drop(handle); // detached; still serving
        assert!(rpc.call(()).is_ok());
    }

    #[test]
    fn rpc_error_display() {
        assert_eq!(RpcError::Disconnected.to_string(), "service disconnected");
    }
}
