//! Length-prefixed, tagged framing for the socket transport.
//!
//! Every message on a connection — request or reply — travels as one
//! frame:
//!
//! ```text
//! [ payload_len: u32 BE ][ tag: u64 BE ][ payload: payload_len bytes ]
//! ```
//!
//! The `tag` correlates a reply with its request, which is what makes
//! pipelining work: a client may have many requests in flight on one
//! connection and replies may complete out of order. The payload is the
//! existing canonical wire encoding (`Request`/`Reply` `to_wire` bytes),
//! unchanged — the frame layer adds correlation and delimiting only.
//!
//! Copy discipline: the receive path reads each frame into exactly one
//! buffer and hands it out as [`Bytes`], so decoders can take O(1)
//! slice views of it ([`Reply::decode_owned`]). The send path never
//! glues: [`FrameBuf`] carries the 12-byte header, the encoded head and
//! the payload segments as separate pieces, and [`write_frames`] pushes
//! them (batched across frames) through a single vectored
//! [`Write::write_vectored`] call per syscall round.

use crate::rpc::RpcError;
use bytes::Bytes;
use nasd_proto::wire::WireReader;
use std::io::{self, IoSlice, Read, Write};

/// Bytes of frame header: u32 length + u64 tag.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame payload (64 MiB). Far above any legal
/// request/reply (object reads are capped well below this) and far
/// below an allocation that could hurt: a hostile or corrupt length
/// prefix is rejected before any buffer is sized from it.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// One received frame: correlation tag plus the complete payload as a
/// single shared buffer (decoders slice it without copying).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlation tag copied back verbatim from request to reply.
    pub tag: u64,
    /// The canonical wire encoding of the message.
    pub payload: Bytes,
}

/// How a socket connection fails at the framing layer. Everything here
/// collapses onto the two-class [`RpcError`] taxonomy via
/// [`FrameError::to_rpc`] — the framing layer never invents a new error
/// vocabulary for callers to interpret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary — a clean
    /// shutdown, not corruption.
    Closed,
    /// The connection died mid-frame: `got` of `needed` bytes arrived.
    /// The partial bytes are discarded; a frame is all-or-nothing.
    Torn {
        /// Bytes that did arrive before the stream ended.
        got: usize,
        /// Bytes the header or length prefix promised.
        needed: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`]; the connection is
    /// poisoned (stream framing is lost) and must be dropped.
    Oversized(u32),
    /// An OS-level I/O failure, carried as its [`io::ErrorKind`].
    Io(io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn { got, needed } => {
                write!(f, "torn frame: {got} of {needed} bytes before EOF")
            }
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            FrameError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Map an OS error kind onto the [`RpcError`] taxonomy: deadline-ish
/// kinds are [`RpcError::TimedOut`] (the request may yet be retried on
/// the same connection), everything else means the connection is
/// unusable — [`RpcError::Disconnected`].
#[must_use]
pub fn classify_io(kind: io::ErrorKind) -> RpcError {
    match kind {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => RpcError::TimedOut,
        _ => RpcError::Disconnected,
    }
}

impl FrameError {
    /// Collapse onto the transport error taxonomy (see [`classify_io`]).
    /// `Closed`/`Torn`/`Oversized` all mean the connection cannot carry
    /// further traffic: [`RpcError::Disconnected`].
    #[must_use]
    pub fn to_rpc(&self) -> RpcError {
        match self {
            FrameError::Io(kind) => classify_io(*kind),
            FrameError::Closed | FrameError::Torn { .. } | FrameError::Oversized(_) => {
                RpcError::Disconnected
            }
        }
    }
}

/// Fill `buf` completely, classifying the three ways a stream read ends:
/// success, clean EOF before any byte (only meaningful `at_boundary`),
/// or EOF partway through (`Torn`).
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        let dst = buf.get_mut(filled..).unwrap_or(&mut []);
        match r.read(dst) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Torn {
                        got: filled,
                        needed: buf.len(),
                    })
                };
            }
            Ok(n) => filled = filled.saturating_add(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Read one complete frame. The payload lands in a single allocation
/// returned as [`Bytes`], so the decoder can alias it instead of
/// copying.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF at a frame boundary,
/// [`FrameError::Torn`] when the stream ends mid-frame,
/// [`FrameError::Oversized`] for a hostile length prefix, and
/// [`FrameError::Io`] for OS failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let mut rd = WireReader::new(&header);
    // A 12-byte buffer always satisfies u32+u64 — decode cannot fail.
    let len = rd.u32().map_err(|_| FrameError::Torn {
        got: 0,
        needed: HEADER_LEN,
    })?;
    let tag = rd.u64().map_err(|_| FrameError::Torn {
        got: 4,
        needed: HEADER_LEN,
    })?;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    Ok(Frame {
        tag,
        payload: Bytes::from(payload),
    })
}

/// An encoded frame staged for vectored transmission: header, encoded
/// head bytes, and zero or more shared payload segments, kept separate
/// so [`write_frames`] can hand them all to `writev` without gluing.
#[derive(Debug)]
pub struct FrameBuf {
    header: [u8; HEADER_LEN],
    head: Vec<u8>,
    segments: Vec<Bytes>,
}

impl FrameBuf {
    /// Stage a frame from the pieces an `encode_frame` produced. The
    /// payload length is the head plus every segment; the segments are
    /// never touched, only referenced.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when the total payload exceeds
    /// [`MAX_FRAME_LEN`] — callers turn this into an error *reply*
    /// rather than sending a frame the peer would reject.
    pub fn new(tag: u64, head: Vec<u8>, segments: Vec<Bytes>) -> Result<Self, FrameError> {
        let mut total = head.len();
        for s in &segments {
            total = total.saturating_add(s.len());
        }
        let len = u32::try_from(total).map_err(|_| FrameError::Oversized(u32::MAX))?;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        let mut header = [0u8; HEADER_LEN];
        if let Some(dst) = header.get_mut(..4) {
            // nasd-lint: allow(hot-path-copy, "12-byte frame header, not payload")
            dst.copy_from_slice(&len.to_be_bytes());
        }
        if let Some(dst) = header.get_mut(4..) {
            // nasd-lint: allow(hot-path-copy, "12-byte frame header, not payload")
            dst.copy_from_slice(&tag.to_be_bytes());
        }
        Ok(FrameBuf {
            header,
            head,
            segments,
        })
    }

    /// Total bytes this frame puts on the wire (header included).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        let mut total = HEADER_LEN.saturating_add(self.head.len());
        for s in &self.segments {
            total = total.saturating_add(s.len());
        }
        total
    }

    /// Append this frame's pieces (skipping empty ones) to a flat slice
    /// list for vectored write.
    fn extend_slices<'a>(&'a self, out: &mut Vec<&'a [u8]>) {
        out.push(&self.header);
        if !self.head.is_empty() {
            out.push(&self.head);
        }
        for s in &self.segments {
            if !s.is_empty() {
                out.push(s.as_ref());
            }
        }
    }
}

/// Write a batch of frames with vectored I/O and flush once. Batching
/// across frames is the reply-coalescing path: a writer thread drains
/// its queue and all the drained replies go out in as few syscalls as
/// the OS allows.
///
/// # Errors
///
/// [`FrameError::Io`] for OS failures (a zero-length vectored write is
/// reported as `WriteZero`).
pub fn write_frames<W: Write>(w: &mut W, frames: &[FrameBuf]) -> Result<(), FrameError> {
    let mut slices: Vec<&[u8]> = Vec::with_capacity(frames.len().saturating_mul(3));
    for f in frames {
        f.extend_slices(&mut slices);
    }
    write_all_slices(w, &slices)?;
    w.flush().map_err(|e| FrameError::Io(e.kind()))
}

/// Drive `write_vectored` to completion over a slice list, re-slicing
/// after partial writes. The cursor is (slice index, offset into that
/// slice).
fn write_all_slices<W: Write>(w: &mut W, slices: &[&[u8]]) -> Result<(), FrameError> {
    let mut idx = 0usize;
    let mut off = 0usize;
    loop {
        // Skip exhausted slices.
        while slices.get(idx).is_some_and(|s| off >= s.len()) {
            idx = idx.saturating_add(1);
            off = 0;
        }
        if idx >= slices.len() {
            return Ok(());
        }
        let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(slices.len().saturating_sub(idx));
        if let Some(first) = slices.get(idx) {
            iov.push(IoSlice::new(first.get(off..).unwrap_or(&[])));
        }
        for s in slices.get(idx.saturating_add(1)..).unwrap_or(&[]) {
            if !s.is_empty() {
                iov.push(IoSlice::new(s));
            }
        }
        match w.write_vectored(&iov) {
            Ok(0) => return Err(FrameError::Io(io::ErrorKind::WriteZero)),
            Ok(mut n) => {
                // Advance the cursor across however many pieces `n`
                // covers.
                while n > 0 {
                    let Some(s) = slices.get(idx) else { break };
                    let avail = s.len().saturating_sub(off);
                    if n < avail {
                        off = off.saturating_add(n);
                        n = 0;
                    } else {
                        n = n.saturating_sub(avail);
                        idx = idx.saturating_add(1);
                        off = 0;
                        // Step over empty slices so the next outer
                        // iteration starts on real bytes.
                        while slices.get(idx).is_some_and(|s| s.is_empty()) {
                            idx = idx.saturating_add(1);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call, forcing the
    /// partial-write resumption paths.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frame_bytes(tag: u64, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_be_bytes());
        v.extend_from_slice(&tag.to_be_bytes());
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn roundtrip_single_frame() {
        let fb = FrameBuf::new(
            77,
            vec![1, 2, 3],
            vec![Bytes::from(vec![4, 5]), Bytes::from(vec![6])],
        )
        .unwrap();
        assert_eq!(fb.wire_len(), HEADER_LEN + 6);
        let mut wire = Vec::new();
        write_frames(&mut wire, &[fb]).unwrap();
        assert_eq!(wire, frame_bytes(77, &[1, 2, 3, 4, 5, 6]));
        let f = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(f.tag, 77);
        assert_eq!(f.payload.as_ref(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn batch_write_concatenates_frames_in_order() {
        let a = FrameBuf::new(1, vec![10], vec![]).unwrap();
        let b = FrameBuf::new(2, vec![], vec![Bytes::from(vec![20, 21])]).unwrap();
        let mut wire = Vec::new();
        write_frames(&mut wire, &[a, b]).unwrap();
        let mut expect = frame_bytes(1, &[10]);
        expect.extend_from_slice(&frame_bytes(2, &[20, 21]));
        assert_eq!(wire, expect);
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().tag, 1);
        assert_eq!(read_frame(&mut r).unwrap().tag, 2);
        assert_eq!(read_frame(&mut r), Err(FrameError::Closed));
    }

    #[test]
    fn partial_vectored_writes_resume_correctly() {
        for cap in 1..=7 {
            let a = FrameBuf::new(
                9,
                vec![1, 2, 3, 4],
                vec![
                    Bytes::from(vec![5, 6, 7]),
                    Bytes::from(vec![]),
                    Bytes::from(vec![8]),
                ],
            )
            .unwrap();
            let b = FrameBuf::new(10, vec![], vec![]).unwrap();
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            write_frames(&mut w, &[a, b]).unwrap();
            let mut expect = frame_bytes(9, &[1, 2, 3, 4, 5, 6, 7, 8]);
            expect.extend_from_slice(&frame_bytes(10, &[]));
            assert_eq!(w.out, expect, "cap {cap}");
        }
    }

    #[test]
    fn empty_payload_frame_roundtrips() {
        let fb = FrameBuf::new(0, vec![], vec![]).unwrap();
        let mut wire = Vec::new();
        write_frames(&mut wire, &[fb]).unwrap();
        let f = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(f.tag, 0);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn clean_eof_is_closed_not_torn() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut { empty }), Err(FrameError::Closed));
    }

    #[test]
    fn torn_header_reports_partial() {
        let partial: &[u8] = &[0, 0, 0, 5, 0];
        assert_eq!(
            read_frame(&mut { partial }),
            Err(FrameError::Torn { got: 5, needed: 12 })
        );
    }

    #[test]
    fn torn_payload_reports_partial() {
        let mut wire = frame_bytes(3, &[1, 2, 3, 4, 5]);
        wire.truncate(HEADER_LEN + 2); // 2 of 5 payload bytes
        assert_eq!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Torn { got: 2, needed: 5 })
        );
    }

    #[test]
    fn short_reads_accumulate() {
        /// A reader that returns one byte at a time.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match (self.0.split_first(), buf.first_mut()) {
                    (Some((b, rest)), Some(dst)) => {
                        *dst = *b;
                        self.0 = rest;
                        Ok(1)
                    }
                    _ => Ok(0),
                }
            }
        }
        let wire = frame_bytes(42, b"hello");
        let f = read_frame(&mut OneByte(&wire)).unwrap();
        assert_eq!(f.tag, 42);
        assert_eq!(f.payload.as_ref(), b"hello");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        wire.extend_from_slice(&0u64.to_be_bytes());
        assert_eq!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Oversized(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn oversized_frame_buf_rejected() {
        // Lie about nothing: an actual > MAX payload would need 64 MiB;
        // use segments summing past the cap via a shared handle instead.
        let big = Bytes::from(vec![0u8; 1 << 20]);
        let segs: Vec<Bytes> = (0..65).map(|_| big.clone()).collect();
        assert!(matches!(
            FrameBuf::new(0, vec![], segs),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn every_frame_error_classifies_onto_rpc_taxonomy() {
        // Satellite: the socket path introduces no new caller-visible
        // error vocabulary. Every FrameError collapses to TimedOut or
        // Disconnected, and every io::ErrorKind classifies.
        assert_eq!(FrameError::Closed.to_rpc(), RpcError::Disconnected);
        assert_eq!(
            FrameError::Torn { got: 1, needed: 2 }.to_rpc(),
            RpcError::Disconnected
        );
        assert_eq!(
            FrameError::Oversized(u32::MAX).to_rpc(),
            RpcError::Disconnected
        );
        assert_eq!(
            FrameError::Io(io::ErrorKind::TimedOut).to_rpc(),
            RpcError::TimedOut
        );
        assert_eq!(
            FrameError::Io(io::ErrorKind::WouldBlock).to_rpc(),
            RpcError::TimedOut
        );
        assert_eq!(
            FrameError::Io(io::ErrorKind::ConnectionReset).to_rpc(),
            RpcError::Disconnected
        );
    }

    #[test]
    fn payload_is_single_buffer_sliceable() {
        let wire = frame_bytes(1, &[9; 64]);
        let f = read_frame(&mut wire.as_slice()).unwrap();
        let view = f.payload.slice(10..20);
        assert_eq!(view.as_ref(), &[9; 10]);
    }
}
