//! Deterministic, seeded fault injection for the RPC transport.
//!
//! NASD's availability argument (§3–§4 of the paper) is that drives keep
//! serving capability-bearing clients while file managers are slow,
//! partitioned, or down. Exercising that requires losing messages and
//! crashing services *reproducibly*: a chaos run that cannot be replayed
//! is a flake generator, not a test.
//!
//! The design makes every fault decision a **pure function** of
//! `(plan seed, target id, per-target sequence number)` — no shared RNG
//! stream — so the injected-fault schedule for a given seed is identical
//! across runs regardless of thread interleaving. [`FaultPlan::trace`]
//! returns the realized schedule; chaos tests assert it is bit-for-bit
//! equal between two runs of the same seed.
//!
//! Faults are applied on the client side of the channel, which is where
//! a real network loses datagrams: a dropped request never reaches the
//! service, a dropped reply *was* processed by the service, a duplicated
//! request arrives twice (and, for signed drive requests, trips the
//! replay window on the second delivery).

use nasd_obs::{SimTime, TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64 finalizer: one 64-bit hash step, the deterministic core of
/// every fault decision.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-message fault probabilities for one class of channel.
///
/// All probabilities are independent cut-points on a single uniform
/// draw, so `drop + duplicate + delay + drop_reply` must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability the request message is lost before the service sees it.
    pub drop: f64,
    /// Probability the request is delivered twice.
    pub duplicate: f64,
    /// Probability the request is delayed by up to [`FaultConfig::max_delay`].
    pub delay: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
    /// Probability the reply is lost *after* the service processed the
    /// request — the nastiest case for exactly-once reasoning.
    pub drop_reply: f64,
}

impl FaultConfig {
    /// No faults at all.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: Duration::ZERO,
            drop_reply: 0.0,
        }
    }

    /// Delay-only plan, safe for non-idempotent services (no message is
    /// ever lost or duplicated, so no retry will re-execute an op).
    #[must_use]
    pub fn delay_only(delay: f64, max_delay: Duration) -> Self {
        FaultConfig {
            delay,
            max_delay,
            ..FaultConfig::none()
        }
    }

    /// A lossy-network plan for idempotent, independently-signed traffic
    /// (the drive data path): drops, duplicates, delays, and lost replies.
    #[must_use]
    pub fn lossy(intensity: f64) -> Self {
        FaultConfig {
            drop: 0.05 * intensity,
            duplicate: 0.04 * intensity,
            delay: 0.10 * intensity,
            max_delay: Duration::from_micros(500),
            drop_reply: 0.03 * intensity,
        }
    }

    fn validate(&self) {
        let total = self.drop + self.duplicate + self.delay + self.drop_reply;
        assert!(
            (0.0..=1.0).contains(&total),
            "fault probabilities must sum to at most 1, got {total}"
        );
    }
}

/// What the plan decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose the request; the service never sees it.
    DropRequest,
    /// Deliver the request twice.
    Duplicate,
    /// Hold the request for the given number of microseconds, then deliver.
    DelayMicros(u64),
    /// Deliver and process, but lose the reply.
    DropReply,
}

/// One realized fault, recorded in the plan's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The channel the fault hit (see [`FaultPlan::channel`]).
    pub target: u64,
    /// The per-target message sequence number the fault hit.
    pub seq: u64,
    /// What happened to the message.
    pub action: FaultAction,
}

/// A seeded, deterministic schedule of faults shared by every channel in
/// a test run.
///
/// Cheap to share (`Arc`); channels derived via [`FaultPlan::channel`]
/// consult it on every call. Disable/enable at runtime with
/// [`FaultPlan::set_enabled`] (used to run a workload's setup phase
/// cleanly and then turn the weather on).
pub struct FaultPlan {
    seed: u64,
    enabled: AtomicBool,
    trace: Mutex<Vec<FaultEvent>>,
    sink: Mutex<Option<Arc<TraceSink>>>,
}

impl FaultPlan {
    /// A plan injecting per the decisions derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FaultPlan {
            seed,
            enabled: AtomicBool::new(true),
            trace: Mutex::new(Vec::new()),
            sink: Mutex::new(None),
        })
    }

    /// Mirror every realized fault into `sink` as a structured
    /// [`TraceEvent`] (`op = "rpc"`, `phase = "fault"`, the channel id in
    /// `drive`, the per-channel sequence number in `request`). The plan
    /// itself is clockless, so events carry `SimTime::ZERO`.
    pub fn set_sink(&self, sink: Arc<TraceSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Turn injection on or off globally (trace keeps accumulating only
    /// while enabled).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether injection is currently active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Derive the injector for one named channel. `target` must be
    /// unique per channel (drive id, manager id...); the per-message
    /// sequence number lives in the returned injector, so clones of the
    /// same injector share one deterministic stream.
    #[must_use]
    pub fn channel(self: &Arc<Self>, target: u64, config: FaultConfig) -> Arc<ChannelFaults> {
        config.validate();
        Arc::new(ChannelFaults {
            plan: Arc::clone(self),
            target,
            config,
            seq: AtomicU64::new(0),
        })
    }

    /// A deterministic uniform draw in `[0, 1)` for out-of-band decisions
    /// (e.g. "crash the drive after the Nth write"), keyed by a caller
    /// label so different uses don't correlate.
    #[must_use]
    pub fn roll(&self, label: u64, step: u64) -> f64 {
        unit_f64(splitmix64(
            self.seed ^ splitmix64(label) ^ step.wrapping_mul(0xa076_1d64_78bd_642f),
        ))
    }

    /// The realized fault schedule so far, in decision order per target.
    ///
    /// Entries are recorded only for non-`Deliver` outcomes. For a
    /// fixed seed and workload the returned vector is bit-for-bit
    /// reproducible when the workload issues requests from one thread
    /// per channel (the chaos suite's configuration).
    #[must_use]
    pub fn trace(&self) -> Vec<FaultEvent> {
        self.trace.lock().clone()
    }

    fn record(&self, event: FaultEvent) {
        self.trace.lock().push(event);
        if let Some(sink) = self.sink.lock().as_ref() {
            sink.record(
                TraceEvent::new(SimTime::ZERO, "rpc", "fault")
                    .with_drive(event.target)
                    .with_request(event.seq)
                    .with_detail(format!("{:?}", event.action)),
            );
        }
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("enabled", &self.enabled())
            .field("trace_len", &self.trace.lock().len())
            .finish()
    }
}

/// Per-channel fault injector derived from a [`FaultPlan`].
pub struct ChannelFaults {
    plan: Arc<FaultPlan>,
    target: u64,
    config: FaultConfig,
    seq: AtomicU64,
}

impl ChannelFaults {
    /// Decide the fate of the next message on this channel. Advances the
    /// per-channel sequence number; the decision itself depends only on
    /// `(seed, target, seq)`.
    pub fn next_action(&self) -> FaultAction {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        if !self.plan.enabled() {
            return FaultAction::Deliver;
        }
        let base = splitmix64(
            self.plan.seed ^ splitmix64(self.target) ^ seq.wrapping_mul(0xa076_1d64_78bd_642f),
        );
        let roll = unit_f64(base);
        let c = &self.config;
        let action = if roll < c.drop {
            FaultAction::DropRequest
        } else if roll < c.drop + c.duplicate {
            FaultAction::Duplicate
        } else if roll < c.drop + c.duplicate + c.delay {
            let micros = c.max_delay.as_micros() as u64;
            if micros == 0 {
                FaultAction::Deliver
            } else {
                FaultAction::DelayMicros(splitmix64(base) % micros + 1)
            }
        } else if roll < c.drop + c.duplicate + c.delay + c.drop_reply {
            FaultAction::DropReply
        } else {
            FaultAction::Deliver
        };
        if action != FaultAction::Deliver {
            self.plan.record(FaultEvent {
                target: self.target,
                seq,
                action,
            });
        }
        action
    }

    /// The channel id this injector was derived for.
    #[must_use]
    pub fn target(&self) -> u64 {
        self.target
    }
}

impl std::fmt::Debug for ChannelFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelFaults")
            .field("target", &self.target)
            .field("config", &self.config)
            .finish()
    }
}

/// Capped exponential backoff for client-side retries.
///
/// Retrying a NASD request is safe on the drive path because every
/// attempt is independently signed with a fresh nonce: a duplicate of an
/// *old* attempt is rejected by the drive's replay window, while the
/// fresh attempt is accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Zero is treated as one.
    pub max_attempts: u32,
    /// Per-attempt reply timeout.
    pub timeout: Duration,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling for the backoff growth.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Defaults tuned for in-process chaos testing: short timeouts, a
    /// handful of attempts.
    #[must_use]
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 8,
            timeout: Duration::from_millis(200),
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(10),
        }
    }

    /// Defaults for manager/control channels: a long per-call timeout
    /// (one manager op may itself retry several drive calls) and few
    /// attempts. Control requests are not all idempotent, so chaos
    /// plans keep manager channels delay-only: a timeout then means
    /// "manager gone", not "message lost".
    #[must_use]
    pub fn control() -> Self {
        RetryPolicy {
            max_attempts: 3,
            timeout: Duration::from_secs(5),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
        }
    }

    /// A single attempt with the given timeout — retries disabled.
    #[must_use]
    pub fn once(timeout: Duration) -> Self {
        RetryPolicy {
            max_attempts: 1,
            timeout,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The pause before attempt `attempt` (0-based; attempt 0 has none).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_target_seq() {
        let config = FaultConfig::lossy(1.0);
        let run = |seed| {
            let plan = FaultPlan::new(seed);
            let a = plan.channel(1, config);
            let b = plan.channel(2, config);
            for _ in 0..200 {
                a.next_action();
                b.next_action();
            }
            plan.trace()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn interleaving_does_not_change_the_trace() {
        let config = FaultConfig::lossy(1.0);
        let sequential = {
            let plan = FaultPlan::new(3);
            let a = plan.channel(1, config);
            let b = plan.channel(2, config);
            for _ in 0..100 {
                a.next_action();
            }
            for _ in 0..100 {
                b.next_action();
            }
            let mut t = plan.trace();
            t.sort_by_key(|e| (e.target, e.seq));
            t
        };
        let interleaved = {
            let plan = FaultPlan::new(3);
            let a = plan.channel(1, config);
            let b = plan.channel(2, config);
            for _ in 0..100 {
                b.next_action();
                a.next_action();
            }
            let mut t = plan.trace();
            t.sort_by_key(|e| (e.target, e.seq));
            t
        };
        assert_eq!(sequential, interleaved);
    }

    #[test]
    fn disabled_plan_delivers_everything() {
        let plan = FaultPlan::new(1);
        plan.set_enabled(false);
        let ch = plan.channel(1, FaultConfig::lossy(1.0));
        for _ in 0..100 {
            assert_eq!(ch.next_action(), FaultAction::Deliver);
        }
        assert!(plan.trace().is_empty());
    }

    #[test]
    fn lossy_plan_actually_injects() {
        let plan = FaultPlan::new(11);
        let ch = plan.channel(9, FaultConfig::lossy(1.0));
        for _ in 0..500 {
            ch.next_action();
        }
        let trace = plan.trace();
        assert!(!trace.is_empty());
        let drops = trace
            .iter()
            .filter(|e| e.action == FaultAction::DropRequest)
            .count();
        // ~5% of 500; generous bounds against unlucky seeds.
        assert!(drops > 2 && drops < 100, "drops = {drops}");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            timeout: Duration::from_millis(1),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(4), Duration::from_millis(8));
        assert_eq!(p.backoff(9), Duration::from_millis(8), "capped");
    }

    #[test]
    fn realized_faults_mirror_into_trace_sink() {
        let plan = FaultPlan::new(11);
        let sink = TraceSink::new(1024);
        plan.set_sink(Arc::clone(&sink));
        let ch = plan.channel(9, FaultConfig::lossy(1.0));
        for _ in 0..200 {
            ch.next_action();
        }
        let trace = plan.trace();
        let events = sink.events();
        assert_eq!(events.len(), trace.len());
        for (fault, event) in trace.iter().zip(&events) {
            assert_eq!(event.drive, fault.target);
            assert_eq!(event.request, fault.seq);
            assert_eq!((event.op, event.phase), ("rpc", "fault"));
            assert_eq!(event.detail, format!("{:?}", fault.action));
        }
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn config_totals_validated() {
        let plan = FaultPlan::new(0);
        let _ = plan.channel(
            0,
            FaultConfig {
                drop: 0.9,
                duplicate: 0.9,
                ..FaultConfig::none()
            },
        );
    }
}
