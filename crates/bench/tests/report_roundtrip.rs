//! Golden-file test for the machine-readable bench output: the `fig6`
//! report must survive a full serialize → parse → re-serialize cycle
//! byte-for-byte, and every suite report must validate against the
//! schema it claims.

use nasd::obs::{BenchReport, Json, BENCH_REPORT_SCHEMA};
use nasd_bench::{fig6, report};

#[test]
fn fig6_json_round_trips_exactly() {
    let original = report::fig6_report(&fig6::run());
    let text = original.to_json_string();

    // Parse back through the schema-checked path.
    let parsed = BenchReport::from_json_str(&text).expect("schema-valid");
    assert_eq!(parsed.bench, "fig6");
    assert_eq!(parsed.rows.len(), original.rows.len());
    assert_eq!(parsed.config.len(), original.config.len());

    // Golden property: re-serialization is byte-identical, so float
    // precision and key order both survive the trip.
    assert_eq!(parsed.to_json_string(), text);
}

#[test]
fn fig6_report_claims_the_versioned_schema() {
    let json = report::fig6_report(&fig6::run()).to_json();
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some(BENCH_REPORT_SCHEMA)
    );
}

#[test]
fn fig6_rows_expose_every_curve_of_the_figure() {
    let parsed =
        BenchReport::from_json_str(&report::fig6_report(&fig6::run()).to_json_string()).unwrap();
    let needed = [
        "size",
        "ffs_hit",
        "nasd_hit",
        "raw_read",
        "nasd_miss",
        "ffs_miss",
        "ffs_write",
        "nasd_write",
        "raw_write",
    ];
    for row in &parsed.rows {
        for key in needed {
            assert!(
                row.iter().any(|(k, _)| k == key),
                "row missing column {key}"
            );
        }
    }
}
