//! §5.1: the Andrew-benchmark comparison of NASD-NFS against plain NFS.
//!
//! "Using the Andrew benchmark as a basis for comparison, we found that
//! NASD-NFS and NFS had benchmark times within 5% of each other for
//! configurations with 1 drive/1 client and 8 drives/8 clients."
//!
//! We run an Andrew-style workload (make directories, copy files, stat
//! everything, read everything, "compile" — read sources and write
//! outputs) against both *real, running* stacks, counting every operation
//! each stack performs and where it lands (file manager vs drive vs
//! store-and-forward server). Elapsed time is then modeled from the same
//! per-operation cost models used everywhere else (Table 1 drive costs,
//! the Figure 9 server costs), since 1998 wall-clock times cannot be
//! measured on a simulator host.

use bytes::Bytes;
use nasd::fm::{DriveFleet, FmConnect, NasdNfs, NfsServer, ServerRequest, ServerResponse};
use nasd::net::{CallOptions, Connector};
use nasd::object::{CostMeter, DriveConfig, OpKind};
use nasd::proto::PartitionId;
use nasd::sim::{CpuModel, SimTime};
use std::sync::Arc;

/// Operation counts accumulated by a benchmark run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCounts {
    /// Namespace/control operations (lookup, create, mkdir, readdir,
    /// remove).
    pub control_ops: u64,
    /// Attribute reads.
    pub attr_ops: u64,
    /// Data operations.
    pub data_ops: u64,
    /// Bytes moved by data operations.
    pub data_bytes: u64,
}

/// The workload: a scaled Andrew benchmark.
///
/// Returns the phase names and the per-phase file set so both stacks run
/// the identical script.
#[must_use]
pub fn script() -> Vec<(&'static str, Vec<(String, usize)>)> {
    let mut phases = Vec::new();
    // Phase 1: MakeDir — a small tree.
    phases.push((
        "mkdir",
        (0..5)
            .map(|i| (format!("/src/dir{i}"), 0))
            .collect::<Vec<_>>(),
    ));
    // Phase 2: Copy — populate with source files (4–16 KB).
    let files: Vec<(String, usize)> = (0..40)
        .map(|i| {
            (
                format!("/src/dir{}/file{i}.c", i % 5),
                4_096 + (i % 4) * 4_096,
            )
        })
        .collect();
    phases.push(("copy", files.clone()));
    // Phase 3: ScanDir — stat every file.
    phases.push(("stat", files.clone()));
    // Phase 4: ReadAll.
    phases.push(("read", files.clone()));
    // Phase 5: Make — read each source, write an object file.
    phases.push(("compile", files));
    phases
}

/// Run the script against the NASD-NFS stack, counting operations.
fn run_nasd(ndrives: usize) -> OpCounts {
    let fleet = Arc::new(
        DriveFleet::spawn_memory(ndrives, DriveConfig::small(), PartitionId(1), 64 << 20).unwrap(),
    );
    let fm = NasdNfs::new(Arc::clone(&fleet)).unwrap();
    let (rpc, _h) = fm.spawn();
    let client = Connector::new().nfs(rpc, Arc::clone(&fleet)).unwrap();
    let mut counts = OpCounts::default();

    client.mkdir("/src", 0o755, 0).unwrap();
    counts.control_ops += 1;

    for (phase, items) in script() {
        match phase {
            "mkdir" => {
                for (path, _) in &items {
                    client.mkdir(path, 0o755, 0).unwrap();
                    counts.control_ops += 1;
                }
            }
            "copy" => {
                for (path, size) in &items {
                    let mut f = client.create(path, 0o644, 0).unwrap();
                    counts.control_ops += 1;
                    client.write(&mut f, 0, &vec![0x42u8; *size]).unwrap();
                    counts.data_ops += 1;
                    counts.data_bytes += *size as u64;
                }
            }
            "stat" => {
                for (path, _) in &items {
                    // getattr goes drive-direct in NASD-NFS.
                    let mut f = client.open(path, false).unwrap();
                    counts.control_ops += 1; // the lookup
                    let _ = client.getattr(&mut f).unwrap();
                    counts.attr_ops += 1;
                }
            }
            "read" | "compile" => {
                for (path, size) in &items {
                    let mut f = client.open(path, false).unwrap();
                    counts.control_ops += 1;
                    let data = client.read(&mut f, 0, *size as u64).unwrap();
                    counts.data_ops += 1;
                    counts.data_bytes += data.len() as u64;
                    if phase == "compile" {
                        let out = format!("{path}.o");
                        let mut o = client.create(&out, 0o644, 0).unwrap();
                        counts.control_ops += 1;
                        client.write(&mut o, 0, &vec![0u8; size / 2]).unwrap();
                        counts.data_ops += 1;
                        counts.data_bytes += (*size as u64) / 2;
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    counts
}

/// Run the script against the traditional NFS server, counting
/// operations (every one a server RPC).
fn run_server(ndisks: usize) -> OpCounts {
    let (rpc, _h) = NfsServer::new(ndisks, 8_192).unwrap().spawn();
    let mut counts = OpCounts::default();

    let opts = CallOptions::blocking();
    let call = |req: ServerRequest| -> ServerResponse { rpc.call_with(req, &opts).unwrap() };
    call(ServerRequest::Mkdir("/src".into()));
    let mut counts_control = 1u64;

    for (phase, items) in script() {
        match phase {
            "mkdir" => {
                for (path, _) in &items {
                    call(ServerRequest::Mkdir(path.clone()));
                    counts_control += 1;
                }
            }
            "copy" => {
                for (path, size) in &items {
                    let ServerResponse::Ino(ino) = call(ServerRequest::Create(path.clone())) else {
                        panic!("create failed");
                    };
                    counts_control += 1;
                    call(ServerRequest::Write {
                        ino,
                        offset: 0,
                        data: Bytes::from(vec![0x42u8; *size]),
                    });
                    counts.data_ops += 1;
                    counts.data_bytes += *size as u64;
                }
            }
            "stat" => {
                for (path, _) in &items {
                    let ServerResponse::Ino(ino) = call(ServerRequest::Lookup(path.clone())) else {
                        panic!("lookup failed");
                    };
                    counts_control += 1;
                    call(ServerRequest::GetAttr(ino));
                    counts.attr_ops += 1;
                }
            }
            "read" | "compile" => {
                for (path, size) in &items {
                    let ServerResponse::Ino(ino) = call(ServerRequest::Lookup(path.clone())) else {
                        panic!("lookup failed");
                    };
                    counts_control += 1;
                    let ServerResponse::Data(d) = call(ServerRequest::Read {
                        ino,
                        offset: 0,
                        len: *size as u64,
                    }) else {
                        panic!("read failed");
                    };
                    counts.data_ops += 1;
                    counts.data_bytes += d.len() as u64;
                    if phase == "compile" {
                        let out = format!("{path}.o");
                        let ServerResponse::Ino(oino) = call(ServerRequest::Create(out)) else {
                            panic!("create failed");
                        };
                        counts_control += 1;
                        call(ServerRequest::Write {
                            ino: oino,
                            offset: 0,
                            data: Bytes::from(vec![0u8; size / 2]),
                        });
                        counts.data_ops += 1;
                        counts.data_bytes += (*size as u64) / 2;
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    counts.control_ops = counts_control;
    counts
}

/// Serving-machine class of the Andrew comparison: both the NASD file
/// manager + drives and the NFS server ran on Alpha 3000/400-class
/// hardware in §5.1 (unlike Figure 9's big server).
fn serving_cpu() -> CpuModel {
    CpuModel::new(133.0, 2.2)
}

/// Modeled elapsed time for the NASD-NFS run: control operations at the
/// file manager (whose directory cache is hot, but which re-reads a
/// directory object from a drive on ~10% of control operations),
/// attribute and data operations at the drives.
#[must_use]
pub fn model_nasd_time(c: &OpCounts) -> SimTime {
    let cpu = serving_cpu();
    let meter = CostMeter::new();
    let mut t = SimTime::ZERO;
    let control = cpu.time_for_instructions(70_000);
    let small_drive_op = meter.estimate(OpKind::GetAttr, 0, 0).time_on(&cpu);
    for i in 0..c.control_ops {
        t += control;
        if i % 10 == 0 {
            t += small_drive_op; // directory-object refresh at a drive
        }
    }
    for _ in 0..c.attr_ops {
        t += small_drive_op;
    }
    // Data: average-sized requests straight to the drive (Table 1 costs).
    let avg = c.data_bytes.checked_div(c.data_ops).unwrap_or(0);
    let data_op = meter.estimate(OpKind::Read, avg.max(1), 0).time_on(&cpu);
    for _ in 0..c.data_ops {
        t += data_op;
    }
    t
}

/// Modeled elapsed time for the traditional NFS run: every operation is
/// a server RPC on the same machine class. Data operations pay the same
/// protocol stack as a drive plus the local-filesystem read (~0.9
/// instructions/byte extra), which is what keeps the two systems at
/// parity for this small-file workload.
#[must_use]
pub fn model_server_time(c: &OpCounts) -> SimTime {
    let cpu = serving_cpu();
    let mut t = SimTime::ZERO;
    let control = cpu.time_for_instructions(70_000);
    for _ in 0..c.control_ops {
        t += control;
    }
    let attr = cpu.time_for_instructions(38_000);
    for _ in 0..c.attr_ops {
        t += attr;
    }
    let avg = c.data_bytes.checked_div(c.data_ops).unwrap_or(0);
    let data_op = cpu.time_for_instructions(35_000 + ((2.30 + 0.9) * avg as f64) as u64);
    for _ in 0..c.data_ops {
        t += data_op;
    }
    t
}

/// One configuration's result.
#[derive(Clone, Debug)]
pub struct AndrewRow {
    /// Drives (NASD) / disks (server).
    pub ndrives: usize,
    /// NASD-NFS operation counts.
    pub nasd: OpCounts,
    /// Server operation counts.
    pub server: OpCounts,
    /// Modeled NASD-NFS time, ms.
    pub nasd_ms: f64,
    /// Modeled NFS time, ms.
    pub nfs_ms: f64,
}

/// Run both stacks at 1 and 8 drives, as the paper did.
#[must_use]
pub fn run() -> Vec<AndrewRow> {
    [1usize, 8]
        .into_iter()
        .map(|n| {
            let nasd = run_nasd(n);
            let server = run_server(n);
            AndrewRow {
                ndrives: n,
                nasd,
                server,
                nasd_ms: model_nasd_time(&nasd).as_millis_f64(),
                nfs_ms: model_server_time(&server).as_millis_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_stacks_run_the_same_workload() {
        let rows = run();
        for r in &rows {
            assert_eq!(r.nasd.data_ops, r.server.data_ops);
            assert_eq!(r.nasd.data_bytes, r.server.data_bytes);
            assert_eq!(r.nasd.attr_ops, r.server.attr_ops);
        }
    }

    #[test]
    fn benchmark_times_are_comparable() {
        // The paper's claim is parity ("within 5%"); our per-op models
        // land within ~15% — NASD adds no systematic penalty.
        for r in run() {
            let ratio = r.nasd_ms / r.nfs_ms;
            assert!(
                (0.85..1.18).contains(&ratio),
                "{} drives: NASD {:.1} ms vs NFS {:.1} ms (ratio {ratio:.2})",
                r.ndrives,
                r.nasd_ms,
                r.nfs_ms
            );
        }
    }

    #[test]
    fn workload_is_nontrivial() {
        let rows = run();
        let r = &rows[0];
        assert!(r.nasd.control_ops > 100);
        assert!(r.nasd.data_ops >= 160);
        assert!(r.nasd.data_bytes > 1 << 20);
    }
}
