//! Scale-out saturation: Figure 7 extended 10–100× (ISSUE 10 tentpole).
//!
//! Figure 7 stops at 13 drives and 10 clients because that is all the
//! hardware the paper had. This experiment asks the question the paper
//! could only gesture at: *where does the architecture saturate when
//! the installation is production-sized?* The matrix runs 13/32/64/128
//! drives against 100/400/1000 clients — the scales §5.2 argues a
//! file-manager-per-server design cannot reach.
//!
//! The model keeps Figure 7's discrete-event skeleton (per-component
//! FIFO service centers on the calendar-queue kernel) and adds the two
//! pieces a scaled installation needs:
//!
//! * **File-manager shards.** Capability issue is a contended FM
//!   resource; shards scale with the fleet (one per 16 drives). A
//!   capability-cache *miss* costs a trip through the object's home
//!   shard before the drive transfer can start; a *hit* goes straight
//!   to the drive, exactly like the real `NfsClient` cache.
//! * **Generated traffic.** Each client is a closed-loop user from
//!   `nasd-workload`: zipf-popular objects (θ = 0.99), the paper's
//!   read/getattr-heavy op mix, exponential think times. Zipf skew is
//!   what makes the capability cache earn its keep — and what keeps
//!   the per-drive load uneven enough to matter.
//!
//! Per point the bench reports aggregate delivered bandwidth, the
//! kernel's wall-clock event rate, the capability-cache hit rate, and
//! the **saturating component** (the resource class with the highest
//! utilization): drives at small fleets, client links once the fleet
//! outgrows the population's demand.

use crate::fig7;
use nasd::object::{CostMeter, OpKind as DriveOp};
use nasd::sim::{BandwidthShare, CpuModel, FifoResource, SimTime, Simulator, Throughput};
use nasd::workload::{ClosedLoop, OpKind, RequestStream, WorkloadSpec};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Drive-count axis of the matrix (13 = the paper's testbed).
pub const DRIVE_MATRIX: [usize; 4] = [13, 32, 64, 128];
/// Client-count axis of the matrix (the paper stops at 10).
pub const CLIENT_MATRIX: [usize; 3] = [100, 400, 1000];
/// Bytes moved per data operation (the Cheops stripe-unit sweet spot).
pub const TRANSFER: u64 = 64 * 1024;
/// Attribute-operation message size on the links.
const ATTR_BYTES: u64 = 512;
/// Distinct objects per drive in the namespace.
const OBJECTS_PER_DRIVE: usize = 64;
/// Per-client capability-cache capacity (entries), matching the real
/// `NfsClient` cache the `Connector` enables.
const CAP_CACHE_CAP: usize = 4096;
/// Hot ranks each client already holds capabilities for at t = 0. The
/// measurement window is seconds, not the hours a real installation
/// runs; pre-warming the head of each client's working set measures
/// steady-state behaviour instead of cold-boot warmup.
const CAP_PREWARM: usize = 128;
/// FM instructions to validate a lookup and mint one capability
/// (directory parse + policy check + HMAC, per Table 1's comm costs).
const CAP_ISSUE_INSTR: u64 = 40_000;
/// Mean client think time between operations.
fn think_mean() -> SimTime {
    SimTime::from_millis(1)
}
/// Simulated measurement window.
fn window() -> SimTime {
    SimTime::from_secs(2)
}

/// FM shards for a fleet: one per 16 drives, at least one.
#[must_use]
pub fn shards_for(ndrives: usize) -> usize {
    (ndrives / 16).max(1)
}

/// One point of the scale matrix.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Drives in the fleet.
    pub drives: usize,
    /// Closed-loop clients offered.
    pub clients: usize,
    /// File-manager shards serving capability misses.
    pub shards: usize,
    /// Aggregate delivered data bandwidth, MB/s.
    pub aggregate_mb_s: f64,
    /// Completed operations per simulated second.
    pub ops_per_sec: f64,
    /// Kernel events dispatched per wall-clock second (host measure).
    pub events_per_wall_sec: f64,
    /// Capability-cache hit fraction across all clients.
    pub cap_hit_rate: f64,
    /// The resource class with the highest mean utilization.
    pub bottleneck: &'static str,
    /// That class's mean utilization, percent.
    pub bottleneck_util_pct: f64,
}

struct Client {
    stream: RequestStream,
    think: ClosedLoop,
    // Epoch-cleared capability set, mirroring `CapCache`'s eviction.
    caps: HashSet<usize>,
}

struct World {
    drive_cpu: Vec<FifoResource>,
    drive_link: Vec<BandwidthShare>,
    client_link: Vec<BandwidthShare>,
    client_cpu: Vec<FifoResource>,
    fm_shard: Vec<FifoResource>,
    clients: Vec<Client>,
    delivered: Throughput,
    ops: u64,
    cap_hits: u64,
    cap_misses: u64,
    drive_service_read: SimTime,
    drive_service_write: SimTime,
    drive_service_attr: SimTime,
    client_service_data: SimTime,
    cap_issue: SimTime,
    ndrives: usize,
    nshards: usize,
    nobjects: usize,
}

/// Spread object ranks over drives/shards without correlating the hot
/// ranks with low indices (Fibonacci-hash style multiplier).
fn place(object: usize, n: usize) -> usize {
    (object.wrapping_mul(0x9E37_79B9)) % n
}

/// Map a client's popularity rank to a concrete object.
///
/// Popularity is per *user*, not global: each client's zipf ranking is
/// over its own working set (an affine permutation of the namespace),
/// modeling many independent user populations. A single global hot
/// object would funnel the whole installation onto one drive link and
/// no fleet size could scale past it; per-user hot sets spread load
/// while keeping every client's own traffic just as skewed (which is
/// what the capability cache sees).
fn object_of(client: usize, rank: usize, nobjects: usize) -> usize {
    // 193 and 7919 are coprime to the namespace size (a multiple of 64).
    (rank * 193 + client * 7919) % nobjects
}

fn issue(sim: &mut Simulator, world: &Rc<RefCell<World>>, client: usize) {
    let (completion, bytes) = {
        let mut w = world.borrow_mut();
        let req = w.clients[client].stream.next_request();
        let think = w.clients[client].think.think();
        let now = sim.now() + think;
        let nobjects = w.nobjects;
        let object = object_of(client, req.object, nobjects);

        // Capability check: a miss detours through the object's home
        // FM shard before the drive will accept the request.
        let cached = w.clients[client].caps.contains(&object);
        let mut start = now;
        if cached {
            w.cap_hits += 1;
        } else {
            w.cap_misses += 1;
            let shard = place(object, w.nshards);
            let issue_cost = w.cap_issue;
            let (_, t) = w.fm_shard[shard].reserve(now, issue_cost);
            start = t;
            if w.clients[client].caps.len() >= CAP_CACHE_CAP {
                w.clients[client].caps.clear();
            }
            w.clients[client].caps.insert(object);
        }

        // Data path: drive CPU, drive link, client link, client CPU.
        // Links are full-duplex; writes charge the same serialization
        // in the opposite direction.
        let drive = place(object, w.ndrives);
        let (service, wire) = match req.op {
            OpKind::Read => (w.drive_service_read, req.bytes),
            OpKind::Write => (w.drive_service_write, req.bytes),
            OpKind::GetAttr => (w.drive_service_attr, ATTR_BYTES),
        };
        let (_, t1) = w.drive_cpu[drive].reserve(start, service);
        let (_, t2) = w.drive_link[drive].transfer(t1, wire);
        let (_, t3) = w.client_link[client].transfer(t2, wire);
        let client_service = match req.op {
            OpKind::GetAttr => SimTime::from_micros(10),
            _ => w.client_service_data,
        };
        let (_, t4) = w.client_cpu[client].reserve(t3, client_service);
        (t4, req.bytes)
    };
    let world2 = Rc::clone(world);
    sim.schedule_at(completion, move |sim| {
        if sim.now() <= window() {
            let now = sim.now();
            {
                let mut w = world2.borrow_mut();
                w.delivered.record(now, bytes);
                w.ops += 1;
            }
            issue(sim, &world2, client);
        }
    });
}

/// Simulate one matrix point.
#[must_use]
pub fn simulate(ndrives: usize, nclients: usize) -> ScaleRow {
    let started = std::time::Instant::now();
    let oc3 = 155.0e6 / 8.0;
    let nshards = shards_for(ndrives);
    let drive_cpu_model = CpuModel::new(133.0, 2.2);
    let client_cpu_model = CpuModel::new(233.0, 2.2);
    // Shards run on server-class silicon (§5.2's file-manager host).
    let fm_cpu_model = CpuModel::new(500.0, 2.2);
    let meter = CostMeter::new();

    let spec = WorkloadSpec::scale_default(ndrives * OBJECTS_PER_DRIVE);
    let world = Rc::new(RefCell::new(World {
        drive_cpu: (0..ndrives)
            .map(|i| FifoResource::new(format!("drive-cpu-{i}")))
            .collect(),
        drive_link: (0..ndrives)
            .map(|i| BandwidthShare::new(format!("drive-link-{i}"), oc3))
            .collect(),
        client_link: (0..nclients)
            .map(|i| BandwidthShare::new(format!("client-link-{i}"), oc3))
            .collect(),
        client_cpu: (0..nclients)
            .map(|i| FifoResource::new(format!("client-cpu-{i}")))
            .collect(),
        fm_shard: (0..nshards)
            .map(|i| FifoResource::new(format!("fm-shard-{i}")))
            .collect(),
        clients: (0..nclients)
            .map(|c| Client {
                stream: RequestStream::new(&spec, 0x5CA1_E000 + c as u64),
                think: ClosedLoop::new(think_mean(), 0x7417_0000 + c as u64),
                caps: (0..CAP_PREWARM.min(spec.objects))
                    .map(|rank| object_of(c, rank, spec.objects))
                    .collect(),
            })
            .collect(),
        delivered: Throughput::new(),
        ops: 0,
        cap_hits: 0,
        cap_misses: 0,
        drive_service_read: meter
            .estimate(DriveOp::Read, TRANSFER, 0)
            .time_on(&drive_cpu_model),
        drive_service_write: meter
            .estimate(DriveOp::Write, TRANSFER, 0)
            .time_on(&drive_cpu_model),
        drive_service_attr: meter
            .estimate(DriveOp::GetAttr, 0, 0)
            .time_on(&drive_cpu_model),
        client_service_data: client_cpu_model
            .time_for_instructions(fig7::client_rpc().instructions(TRANSFER)),
        cap_issue: fm_cpu_model.time_for_instructions(CAP_ISSUE_INSTR),
        ndrives,
        nshards,
        nobjects: spec.objects,
    }));

    let mut sim = Simulator::with_capacity(nclients + 16);
    for c in 0..nclients {
        let w = Rc::clone(&world);
        sim.schedule_at(SimTime::ZERO, move |sim| issue(sim, &w, c));
    }
    sim.run_until(window());

    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let w = world.borrow();
    let elapsed = window();
    let mean = |it: &mut dyn Iterator<Item = f64>| {
        let (sum, n) = it.fold((0.0, 0usize), |(s, n), u| (s + u, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    let classes: [(&'static str, f64); 5] = [
        (
            "drive-cpu",
            mean(&mut w.drive_cpu.iter().map(|r| r.utilization(elapsed))),
        ),
        (
            "drive-link",
            mean(&mut w.drive_link.iter().map(|r| r.fifo().utilization(elapsed))),
        ),
        (
            "client-link",
            mean(&mut w.client_link.iter().map(|r| r.fifo().utilization(elapsed))),
        ),
        (
            "client-cpu",
            mean(&mut w.client_cpu.iter().map(|r| r.utilization(elapsed))),
        ),
        (
            "fm-shard",
            mean(&mut w.fm_shard.iter().map(|r| r.utilization(elapsed))),
        ),
    ];
    let (bottleneck, util) = classes
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("five classes");

    ScaleRow {
        drives: ndrives,
        clients: nclients,
        shards: nshards,
        aggregate_mb_s: w.delivered.mbytes_per_sec(elapsed),
        ops_per_sec: w.ops as f64 / elapsed.as_secs_f64(),
        events_per_wall_sec: sim.events_run() as f64 / wall,
        cap_hit_rate: w.cap_hits as f64 / (w.cap_hits + w.cap_misses).max(1) as f64,
        bottleneck,
        bottleneck_util_pct: util * 100.0,
    }
}

/// Run an arbitrary drives × clients matrix (the CI smoke job uses a
/// truncated one).
#[must_use]
pub fn run_matrix(drives: &[usize], clients: &[usize]) -> Vec<ScaleRow> {
    let mut rows = Vec::with_capacity(drives.len() * clients.len());
    for &d in drives {
        for &c in clients {
            rows.push(simulate(d, c));
        }
    }
    rows
}

/// Run the full 13/32/64/128 × 100/400/1000 matrix.
#[must_use]
pub fn run() -> Vec<ScaleRow> {
    run_matrix(&DRIVE_MATRIX, &CLIENT_MATRIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adding_drives_relieves_a_saturated_fleet() {
        // At 1000 clients the 13-drive testbed is drive-bound; the
        // 128-drive fleet must deliver several times its bandwidth.
        let small = simulate(13, 1000);
        let large = simulate(128, 1000);
        assert!(
            small.bottleneck.starts_with("drive"),
            "13x1000 bottleneck {}",
            small.bottleneck
        );
        assert!(
            large.aggregate_mb_s > small.aggregate_mb_s * 3.0,
            "{:.0} -> {:.0} MB/s",
            small.aggregate_mb_s,
            large.aggregate_mb_s
        );
    }

    #[test]
    fn zipf_traffic_keeps_the_cap_cache_hot() {
        let row = simulate(13, 100);
        assert!(
            row.cap_hit_rate > 0.5,
            "hit rate {:.2} too low for zipf traffic",
            row.cap_hit_rate
        );
    }

    #[test]
    fn fm_shards_never_saturate_first() {
        // §5.2's claim, quantified: capability issue scales out with
        // the shard count and is never the binding resource.
        for row in run_matrix(&[13, 64], &[400]) {
            assert_ne!(row.bottleneck, "fm-shard", "{row:?}");
            assert!(row.bottleneck_util_pct > 0.0);
        }
    }

    #[test]
    fn matrix_point_reports_event_rate() {
        let row = simulate(13, 100);
        assert!(row.events_per_wall_sec > 0.0);
        assert!(row.ops_per_sec > 0.0);
        assert_eq!(row.shards, 1);
    }
}
