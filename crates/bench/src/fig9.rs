//! Figure 9: scaling of the parallel data-mining application.
//!
//! Three lines, as in the paper:
//!
//! * **NASD** — n clients mine a 300 MB file striped (512 KB units) over
//!   n NASD drives (each two striped Medallists): "a single NASD provides
//!   6.2 MB/s per drive and our array scales linearly up to 45 MB/s with
//!   8 NASD drives."
//! * **NFS** — 10 clients read a single file striped over n Cheetahs
//!   behind one AlphaStation 500/500 with two OC-3 links: "bottlenecks
//!   near 20 MB/s... its prefetching heuristics fail in the presence of
//!   multiple request streams to a single file."
//! * **NFS-parallel** — each client reads a replica on an independent
//!   disk: "performs better than the single file case, but only raises
//!   the maximum bandwidth from NFS to 22.5 MB/s."
//!
//! The discrete-event pipeline stages per 512 KB piece are: disk →
//! serving CPU (drive or server) → serving uplink → client downlink →
//! client CPU (DCE-RPC receive + itemset counting). Four outstanding
//! pieces per client reproduce the "four producer threads" structure.

use nasd::disk::{specs, DiskModel, StripedModel};
use nasd::object::{CostMeter, OpKind};
use nasd::sim::{BandwidthShare, CpuModel, FifoResource, SimTime, Simulator, Throughput};
use std::cell::RefCell;
use std::rc::Rc;

/// Stripe unit and request size (512 KB in the paper's configuration).
pub const PIECE: u64 = 512 * 1024;
/// Round-robin distribution chunk (2 MB).
pub const CHUNK: u64 = 2 << 20;
/// Producers (outstanding pieces) per client.
pub const WINDOW: usize = 4;
/// Dataset size: 300 MB of sales transactions.
pub const DATASET: u64 = 300 * 1_000_000;

fn measurement_window() -> SimTime {
    SimTime::from_secs(30)
}

/// Client CPU cost per piece: DCE-RPC receive (~10 instr/byte) plus the
/// frequent-sets counting consumer (~5 instr/byte), on the 233 MHz
/// AlphaStation.
fn client_service() -> SimTime {
    let instr = 35_000.0 + 15.0 * PIECE as f64;
    CpuModel::new(233.0, 2.2).time_for_instructions(instr as u64)
}

/// NASD drive CPU cost per piece (Table 1 warm 512 KB read) at 133 MHz.
fn drive_service() -> SimTime {
    let cost = CostMeter::new().estimate(OpKind::Read, PIECE, 0);
    cost.time_on(&CpuModel::new(133.0, 2.2))
}

/// NFS server CPU cost per piece: the store-and-forward path (disk DMA
/// in, protocol out ≈ 10.4 instr/byte) on the 500 MHz AlphaStation —
/// this is what caps the NFS lines near 20–22 MB/s. When ten streams
/// share one file the buffer cache churns (smaller, failed-readahead
/// disk transfers), costing roughly an extra instruction per byte.
fn server_service(single_file: bool) -> SimTime {
    let per_byte = if single_file { 11.3 } else { 10.4 };
    let instr = 35_000.0 + per_byte * PIECE as f64;
    CpuModel::new(500.0, 2.2).time_for_instructions(instr as u64)
}

/// One row of Figure 9.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Number of disks (and NASD clients).
    pub ndisks: usize,
    /// NASD PFS aggregate bandwidth, MB/s.
    pub nasd_mb_s: f64,
    /// NFS single-striped-file bandwidth, MB/s.
    pub nfs_mb_s: f64,
    /// NFS-parallel (file per disk) bandwidth, MB/s.
    pub nfs_parallel_mb_s: f64,
}

// ---------------------------------------------------------------- NASD

struct NasdWorld {
    drives: Vec<StripedModel>,
    drive_cpu: Vec<FifoResource>,
    drive_up: Vec<BandwidthShare>,
    client_down: Vec<BandwidthShare>,
    client_cpu: Vec<FifoResource>,
    delivered: Throughput,
}

/// Piece index → (drive, local offset) for a file striped over `n`
/// drives at `PIECE` granularity.
fn locate(unit: u64, n: usize) -> (usize, u64) {
    ((unit % n as u64) as usize, (unit / n as u64) * PIECE)
}

fn simulate_nasd(n: usize) -> f64 {
    let oc3 = 155.0e6 / 8.0;
    let world = Rc::new(RefCell::new(NasdWorld {
        drives: (0..n)
            .map(|_| {
                StripedModel::new(
                    vec![
                        DiskModel::new(specs::MEDALLIST.clone()),
                        DiskModel::new(specs::MEDALLIST.clone()),
                    ],
                    32 * 1024,
                )
            })
            .collect(),
        drive_cpu: (0..n)
            .map(|i| FifoResource::new(format!("dcpu{i}")))
            .collect(),
        drive_up: (0..n)
            .map(|i| BandwidthShare::new(format!("dup{i}"), oc3))
            .collect(),
        client_down: (0..n)
            .map(|i| BandwidthShare::new(format!("cdown{i}"), oc3))
            .collect(),
        client_cpu: (0..n)
            .map(|i| FifoResource::new(format!("ccpu{i}")))
            .collect(),
        delivered: Throughput::new(),
    }));

    let total_units = DATASET / PIECE;
    let units_per_chunk = CHUNK / PIECE;

    // Producer `p` of client `c` handles chunks c + (p + 4k)·n; its
    // pieces are the units of those chunks in order, wrapping around the
    // dataset for steady-state measurement.
    fn issue(
        sim: &mut Simulator,
        world: &Rc<RefCell<NasdWorld>>,
        n: usize,
        client: usize,
        producer: usize,
        seq: u64,
    ) {
        let total_units = DATASET / PIECE;
        let units_per_chunk = CHUNK / PIECE;
        let chunk_of_producer =
            client as u64 + (producer as u64 + 4 * (seq / units_per_chunk)) * n as u64;
        let unit = (chunk_of_producer * units_per_chunk + seq % units_per_chunk) % total_units;
        let (drive, local) = locate(unit, n);

        let completion = {
            let mut w = world.borrow_mut();
            let t0 = sim.now() + SimTime::from_micros(500);
            let t1 = w.drives[drive].read(t0, local, PIECE);
            let ds = drive_service();
            let (_, t2) = w.drive_cpu[drive].reserve(t1, ds);
            let (_, t3) = w.drive_up[drive].transfer(t2, PIECE);
            let (_, t4) = w.client_down[client].transfer(t3, PIECE);
            let cs = client_service();
            let (_, t5) = w.client_cpu[client].reserve(t4, cs);
            t5
        };
        let world2 = Rc::clone(world);
        sim.schedule_at(completion, move |sim| {
            if sim.now() <= measurement_window() {
                let now = sim.now();
                world2.borrow_mut().delivered.record(now, PIECE);
                issue(sim, &world2, n, client, producer, seq + 1);
            }
        });
    }
    let _ = (total_units, units_per_chunk);

    let mut sim = Simulator::new();
    for c in 0..n {
        for p in 0..WINDOW {
            let w = Rc::clone(&world);
            sim.schedule_at(SimTime::ZERO, move |sim| issue(sim, &w, n, c, p, 0));
        }
    }
    sim.run_until(measurement_window());
    let mb_s = world
        .borrow()
        .delivered
        .mbytes_per_sec(measurement_window());
    mb_s
}

// ----------------------------------------------------------------- NFS

struct NfsWorld {
    /// Per-disk service (FIFO); single-file mode models the failed
    /// prefetching with per-cluster positioning.
    disks: Vec<FifoResource>,
    server_cpu: FifoResource,
    server_links: Vec<BandwidthShare>,
    client_down: Vec<BandwidthShare>,
    client_cpu: Vec<FifoResource>,
    delivered: Throughput,
    disk_service: SimTime,
}

/// Disk service time per 512 KB piece when prefetching works: pure
/// Cheetah media streaming.
fn disk_service_sequential() -> SimTime {
    SimTime::from_secs_f64(PIECE as f64 / (specs::CHEETAH.media_mb_s * 1e6))
}

/// Disk service per piece when "prefetching heuristics fail in the
/// presence of multiple request streams to a single file": every 64 KB
/// filesystem cluster pays a positioning delay.
fn disk_service_thrashed() -> SimTime {
    let clusters = PIECE / (64 * 1024);
    let per_cluster = 64.0 * 1024.0 / (specs::CHEETAH.media_mb_s * 1e6)
        + (specs::CHEETAH.avg_rotational_latency_ms() + 2.0) / 1e3;
    SimTime::from_secs_f64(clusters as f64 * per_cluster)
}

fn simulate_nfs(ndisks: usize, single_file: bool) -> f64 {
    let oc3 = 155.0e6 / 8.0;
    // Single-file mode: the paper's 10 clients. Parallel mode: one client
    // per disk, each on its own replica.
    let nclients = if single_file { 10 } else { ndisks };
    let world = Rc::new(RefCell::new(NfsWorld {
        disks: (0..ndisks)
            .map(|i| FifoResource::new(format!("disk{i}")))
            .collect(),
        server_cpu: FifoResource::new("server-cpu"),
        server_links: (0..2)
            .map(|i| BandwidthShare::new(format!("slink{i}"), oc3))
            .collect(),
        client_down: (0..nclients)
            .map(|i| BandwidthShare::new(format!("cdown{i}"), oc3))
            .collect(),
        client_cpu: (0..nclients)
            .map(|i| FifoResource::new(format!("ccpu{i}")))
            .collect(),
        delivered: Throughput::new(),
        disk_service: if single_file {
            disk_service_thrashed()
        } else {
            disk_service_sequential()
        },
    }));

    fn issue(
        sim: &mut Simulator,
        world: &Rc<RefCell<NfsWorld>>,
        ndisks: usize,
        single_file: bool,
        client: usize,
        producer: usize,
        seq: u64,
    ) {
        let disk = if single_file {
            // Pieces of the striped file round-robin the disks. The
            // server's own stripe placement is not aligned to the 2 MB
            // distribution chunks (its RAID unit differs), so clients at
            // different file positions land on different disks — the
            // `client` term breaks the otherwise-degenerate alignment
            // when the disk count divides the chunk size.
            let nclients = 10u64;
            let units_per_chunk = CHUNK / PIECE;
            let chunk = client as u64 + (producer as u64 + 4 * (seq / units_per_chunk)) * nclients;
            let unit = (chunk * units_per_chunk + seq % units_per_chunk) % (DATASET / PIECE);
            // Ten drifting streams hit the disks effectively at random;
            // a deterministic hash models that without lockstep-convoy
            // artifacts whenever the disk count divides the chunk size.
            (unit.wrapping_mul(2_654_435_761) ^ (client as u64).wrapping_mul(0x9E37_79B9))
                % ndisks as u64
        } else {
            client as u64 % ndisks as u64
        } as usize;

        let completion = {
            let mut w = world.borrow_mut();
            let t0 = sim.now() + SimTime::from_micros(500);
            let ds = w.disk_service;
            let (_, t1) = w.disks[disk].reserve(t0, ds);
            let ss = server_service(single_file);
            let (_, t2) = w.server_cpu.reserve(t1, ss);
            let link = client % 2;
            let (_, t3) = w.server_links[link].transfer(t2, PIECE);
            let (_, t4) = w.client_down[client].transfer(t3, PIECE);
            let cs = client_service();
            let (_, t5) = w.client_cpu[client].reserve(t4, cs);
            t5
        };
        let world2 = Rc::clone(world);
        sim.schedule_at(completion, move |sim| {
            if sim.now() <= measurement_window() {
                let now = sim.now();
                world2.borrow_mut().delivered.record(now, PIECE);
                issue(sim, &world2, ndisks, single_file, client, producer, seq + 1);
            }
        });
    }

    let mut sim = Simulator::new();
    for c in 0..nclients {
        for p in 0..WINDOW {
            let w = Rc::clone(&world);
            sim.schedule_at(SimTime::ZERO, move |sim| {
                issue(sim, &w, ndisks, single_file, c, p, 0);
            });
        }
    }
    sim.run_until(measurement_window());
    let mb_s = world
        .borrow()
        .delivered
        .mbytes_per_sec(measurement_window());
    mb_s
}

/// Run the 1–8 disk sweep for all three lines.
#[must_use]
pub fn run() -> Vec<Fig9Row> {
    (1..=8)
        .map(|n| Fig9Row {
            ndisks: n,
            nasd_mb_s: simulate_nasd(n),
            nfs_mb_s: simulate_nfs(n, true),
            nfs_parallel_mb_s: simulate_nfs(n, false),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nasd_scales_linearly_at_about_6_mb_s_per_pair() {
        let rows = run();
        for r in &rows {
            let per_drive = r.nasd_mb_s / r.ndisks as f64;
            assert!(
                (5.0..7.0).contains(&per_drive),
                "{} drives: {per_drive:.2} MB/s per client-drive pair (paper 6.2)",
                r.ndisks
            );
        }
        // Linear: 8 drives within 10% of 8× one drive.
        let one = rows[0].nasd_mb_s;
        let eight = rows[7].nasd_mb_s;
        assert!(
            (eight / (8.0 * one) - 1.0).abs() < 0.10,
            "linearity: 1 drive {one:.1}, 8 drives {eight:.1}"
        );
        // "scales linearly up to 45 MB/s with 8 NASD drives"
        assert!((40.0..52.0).contains(&eight), "8-drive NASD {eight:.1}");
    }

    #[test]
    fn nfs_bottlenecks_near_20_mb_s() {
        let rows = run();
        let eight = &rows[7];
        assert!(
            (17.0..25.0).contains(&eight.nfs_mb_s),
            "NFS at 8 disks: {:.1} (paper 20.2)",
            eight.nfs_mb_s
        );
        assert!(
            (19.0..26.0).contains(&eight.nfs_parallel_mb_s),
            "NFS-parallel at 8 disks: {:.1} (paper 22.5)",
            eight.nfs_parallel_mb_s
        );
        assert!(
            eight.nfs_parallel_mb_s > eight.nfs_mb_s,
            "independent files beat the shared file"
        );
    }

    #[test]
    fn nasd_beats_nfs_by_2x_at_8_drives() {
        // "NASD PFS on Cheops delivers nearly all of the bandwidth of the
        // NASD drives, while the same application using a powerful NFS
        // server fails to deliver half the performance of the underlying
        // Cheetah drives."
        let rows = run();
        let eight = &rows[7];
        assert!(eight.nasd_mb_s > 2.0 * eight.nfs_mb_s);
        // NFS delivers less than half of 8 Cheetahs' 108 MB/s.
        assert!(eight.nfs_parallel_mb_s < 54.0);
    }

    #[test]
    fn crossover_in_the_middle_of_the_sweep() {
        // With few disks the big server wins; NASD passes it around 3–4
        // drives — the crossover visible in Figure 9.
        let rows = run();
        assert!(rows[0].nfs_parallel_mb_s > rows[0].nasd_mb_s);
        assert!(rows[7].nasd_mb_s > rows[7].nfs_parallel_mb_s);
    }
}
