//! The recovery figure: crash-recovery (log replay) time vs. log length.
//!
//! The on-disk layout acks every mutation once its intent record is in
//! the write-ahead log, and defers the expensive index/bitmap checkpoint.
//! The cost of that deferral is paid at `open`: the longer the log tail
//! since the last checkpoint, the more records recovery must verify and
//! replay. This experiment measures that curve — mount time against the
//! number of committed-but-uncheckpointed operations — which is the
//! number an operator uses to pick a checkpoint cadence (how much replay
//! work a crash is allowed to leave behind).
//!
//! Each row is one fresh durable store: format, run `records` small
//! writes (each logged and group-committed, none checkpointed), then
//! repeatedly reopen the media and time the full recovery path —
//! superblock load, bitmap cross-check, and log replay.

use nasd::disk::{MemDisk, SharedDisk};
use nasd::object::{IoTrace, ObjectStore};
use nasd::proto::PartitionId;
use std::time::Instant;

const BS: usize = 512;
/// 32 MB device: large enough that the layout grants the WAL its full
/// 1024-block (512 KB) region, so the longest sweep point still fits
/// without forcing an early checkpoint.
const BLOCKS: u64 = 65_536;
const P: PartitionId = PartitionId(1);
/// Payload bytes per logged write.
const WRITE_BYTES: usize = 64;
/// Objects the writes cycle over.
const NOBJECTS: u64 = 8;
/// Timed reopen iterations per sweep point.
const ITERS: u32 = 5;

/// Log lengths swept, in committed operations since the checkpoint.
pub const RECORD_COUNTS: &[u64] = &[0, 64, 256, 1024, 2048];

/// One sweep point's measurement.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Committed operations in the log at mount time.
    pub records: u64,
    /// Bytes of write-ahead log those operations occupy.
    pub wal_bytes: u64,
    /// Wall-clock milliseconds for one `open` (mean of [`ITERS`] runs).
    pub open_ms: f64,
    /// Replay cost per logged operation, in microseconds.
    pub us_per_record: f64,
    /// Objects visible after recovery (correctness anchor: the replayed
    /// state, not just the mount, is what's being timed).
    pub recovered_objects: u64,
}

/// Build a formatted durable store whose log holds exactly `records`
/// committed write operations, and return the media plus log bytes.
fn media_with_log(records: u64) -> (SharedDisk, u64) {
    let media = SharedDisk::new(MemDisk::new(BS, BLOCKS));
    let mut store = ObjectStore::new(media.clone(), 64);
    let mut t = IoTrace::default();
    store.create_partition(P, 16 << 20).unwrap();
    let mut objects = Vec::new();
    for _ in 0..NOBJECTS {
        objects.push(store.create_object(P, 0, None, 0, &mut t).unwrap());
    }
    // Everything up to here is checkpointed state: the swept log
    // contains only the `records` writes that follow.
    store.checkpoint(&mut t).unwrap();
    store.enable_wal(true);
    let payload = [0x5a; WRITE_BYTES];
    for i in 0..records {
        let o = objects[(i % NOBJECTS) as usize];
        let offset = (i / NOBJECTS) * WRITE_BYTES as u64;
        store.write(P, o, offset, &payload, 0, &mut t).unwrap();
        store.wal_commit(&mut t).unwrap();
    }
    let wal_bytes = store.wal_durable_bytes();
    (media, wal_bytes)
}

/// Run the sweep.
#[must_use]
pub fn run() -> Vec<RecoveryRow> {
    RECORD_COUNTS
        .iter()
        .map(|&records| {
            let (media, wal_bytes) = media_with_log(records);
            let mut recovered_objects = 0u64;
            let t0 = Instant::now();
            for _ in 0..ITERS {
                let store = ObjectStore::open(media.clone(), 64).unwrap();
                recovered_objects = store.list_objects(P).unwrap().len() as u64;
            }
            let open_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
            RecoveryRow {
                records,
                wal_bytes,
                open_ms,
                us_per_record: if records == 0 {
                    0.0
                } else {
                    open_ms * 1e3 / records as f64
                },
                recovered_objects,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shape claims: log bytes grow strictly with record count, the
    /// replayed state is intact at every sweep point, and recovery work
    /// actually scales with the log (the longest log costs more wall
    /// clock than the empty one — a weak bound, robust to noisy hosts).
    #[test]
    fn replay_cost_scales_with_log_length() {
        let rows = run();
        assert_eq!(rows.len(), RECORD_COUNTS.len());
        for pair in rows.windows(2) {
            assert!(pair[1].wal_bytes > pair[0].wal_bytes);
        }
        for row in &rows {
            assert_eq!(row.recovered_objects, NOBJECTS);
            assert!(row.open_ms > 0.0);
        }
        let empty = &rows[0];
        let longest = rows.last().unwrap();
        assert!(
            longest.open_ms > empty.open_ms,
            "replaying {} records ({} log bytes) should cost more than an empty log ({:.3} ms vs {:.3} ms)",
            longest.records,
            longest.wal_bytes,
            longest.open_ms,
            empty.open_ms,
        );
    }

    /// The committed log is consumed, not re-counted: after a reopen the
    /// replayed state must checkpoint and come back with an empty log.
    #[test]
    fn recovered_store_can_checkpoint_and_remount_clean() {
        let (media, wal_bytes) = media_with_log(64);
        assert!(wal_bytes > 0);
        let mut store = ObjectStore::open(media.clone(), 64).unwrap();
        store.checkpoint(&mut IoTrace::default()).unwrap();
        drop(store);
        let reopened = ObjectStore::open(media, 64).unwrap();
        assert_eq!(reopened.wal_durable_bytes(), 0);
        assert_eq!(reopened.list_objects(P).unwrap().len() as u64, NOBJECTS);
    }
}
